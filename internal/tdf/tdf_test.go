package tdf

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"hyperq/internal/types"
)

func sampleBatch() *Batch {
	return &Batch{
		Cols: []ColumnMeta{
			{Name: "id", Type: types.Int},
			{Name: "name", Type: types.VarChar(20)},
			{Name: "amount", Type: types.Decimal(12, 2)},
			{Name: "when", Type: types.Date},
			{Name: "ratio", Type: types.Float},
			{Name: "span", Type: types.Period(types.KindDate)},
		},
		Rows: [][]types.Datum{
			{
				types.NewInt(1), types.NewString("alice"), types.NewDecimal(12345, 2),
				types.NewDate(2014, 1, 1), types.NewFloat(0.85),
				types.NewPeriod(types.KindDate, types.EncodeDate(2020, 1, 1), types.EncodeDate(2020, 6, 30)),
			},
			{
				types.NewInt(2), types.NewNull(types.KindVarChar), types.NewNull(types.KindDecimal),
				types.NewNull(types.KindDate), types.NewFloat(math.Inf(1)),
				types.NewNull(types.KindPeriod),
			},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(b.Cols) || len(got.Rows) != len(b.Rows) {
		t.Fatalf("shape = %d cols %d rows", len(got.Cols), len(got.Rows))
	}
	for i, c := range got.Cols {
		if c.Name != b.Cols[i].Name || c.Type.Kind != b.Cols[i].Type.Kind {
			t.Errorf("col %d = %+v, want %+v", i, c, b.Cols[i])
		}
	}
	for ri, row := range got.Rows {
		for ci, d := range row {
			want := b.Rows[ri][ci]
			if d.Null != want.Null {
				t.Errorf("row %d col %d null mismatch", ri, ci)
				continue
			}
			if !d.Null && d.String() != want.String() {
				t.Errorf("row %d col %d = %s, want %s", ri, ci, d, want)
			}
		}
	}
	// Decimal scale must survive.
	if got.Rows[0][2].String() != "123.45" {
		t.Errorf("decimal = %s", got.Rows[0][2])
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a tdf batch......"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEncodeRejectsArityMismatch(t *testing.T) {
	b := &Batch{
		Cols: []ColumnMeta{{Name: "a", Type: types.Int}},
		Rows: [][]types.Datum{{types.NewInt(1), types.NewInt(2)}},
	}
	if err := b.Encode(&bytes.Buffer{}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// Property: integer batches always round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []int64, strs []string) bool {
		n := len(vals)
		if len(strs) < n {
			n = len(strs)
		}
		b := &Batch{Cols: []ColumnMeta{
			{Name: "v", Type: types.BigInt},
			{Name: "s", Type: types.VarChar(0)},
		}}
		for i := 0; i < n; i++ {
			b.Rows = append(b.Rows, []types.Datum{types.NewBigInt(vals[i]), types.NewString(strs[i])})
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || len(got.Rows) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Rows[i][0].I != vals[i] || got.Rows[i][1].S != strs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInMemory(t *testing.T) {
	s := NewStore(1 << 20)
	for i := 0; i < 3; i++ {
		if err := s.Append(sampleBatch()); err != nil {
			t.Fatal(err)
		}
	}
	if s.TotalRows() != 6 {
		t.Fatalf("rows = %d", s.TotalRows())
	}
	if s.Spilled() != 0 {
		t.Fatal("unexpected spill")
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := s.Drain(func(b *Batch) error { n += len(b.Rows); return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("drained %d rows", n)
	}
}

func TestStoreSpillsToDisk(t *testing.T) {
	s := NewStore(0) // spill everything
	defer s.Close()
	const batches = 10
	for i := 0; i < batches; i++ {
		if err := s.Append(sampleBatch()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() != batches {
		t.Fatalf("spilled = %d", s.Spilled())
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	var rows int
	var firstDecimal string
	if err := s.Drain(func(b *Batch) error {
		rows += len(b.Rows)
		if firstDecimal == "" {
			firstDecimal = b.Rows[0][2].String()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != batches*2 {
		t.Fatalf("drained %d rows", rows)
	}
	if firstDecimal != "123.45" {
		t.Fatalf("spilled decimal = %s", firstDecimal)
	}
}

func TestStoreMixedMemoryAndSpill(t *testing.T) {
	one := sampleBatch().EncodedSize()
	s := NewStore(one + one/2) // one batch fits, the rest spill
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(sampleBatch()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() != 4 {
		t.Fatalf("spilled = %d", s.Spilled())
	}
	_ = s.Seal()
	var rows int
	if err := s.Drain(func(b *Batch) error { rows += len(b.Rows); return nil }); err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestStoreLifecycleErrors(t *testing.T) {
	s := NewStore(1024)
	if err := s.Drain(func(*Batch) error { return nil }); err == nil {
		t.Error("drain before seal accepted")
	}
	_ = s.Seal()
	if err := s.Append(sampleBatch()); err == nil {
		t.Error("append after seal accepted")
	}
	if err := s.Seal(); err != nil {
		t.Error("double seal should be idempotent")
	}
}

func TestStoreSpillFileRemoved(t *testing.T) {
	s := NewStore(0)
	_ = s.Append(sampleBatch())
	name := s.spill.Name()
	_ = s.Seal()
	_ = s.Drain(func(*Batch) error { return nil })
	if _, err := osStat(name); err == nil {
		t.Error("spill file not removed after drain")
	}
}

// osStat indirection for the spill-file existence check.
var osStat = func(name string) (any, error) {
	fi, err := osStatReal(name)
	return fi, err
}

func TestBatchEncodedSizePositive(t *testing.T) {
	if sampleBatch().EncodedSize() <= 0 {
		t.Error("EncodedSize must be positive")
	}
	f := func(n uint8) bool {
		b := &Batch{Cols: []ColumnMeta{{Name: "x", Type: types.Int}}}
		for i := 0; i < int(n); i++ {
			b.Rows = append(b.Rows, []types.Datum{types.NewInt(int64(i))})
		}
		var buf bytes.Buffer
		if err := b.Encode(&buf); err != nil {
			return false
		}
		// The estimate must be an upper bound of the actual encoding.
		return b.EncodedSize() >= buf.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnMetaEquality(t *testing.T) {
	a := ColumnMeta{Name: "x", Type: types.Decimal(10, 2)}
	b := ColumnMeta{Name: "x", Type: types.Decimal(10, 2)}
	if !reflect.DeepEqual(a, b) {
		t.Error("meta not comparable")
	}
}

func osStatReal(name string) (os.FileInfo, error) { return os.Stat(name) }
