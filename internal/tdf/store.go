package tdf

import (
	"bufio"
	"fmt"
	"os"
	"sync"
)

// Store is the Result Store of §4.6: when the original database disallows
// streaming ("some databases require that the total number of results is
// sent to the application first"), all result batches are buffered until
// consumption; if the buffered size exceeds the memory budget, batches spill
// to disk and the set of spill files is maintained until the results are
// fully consumed.
type Store struct {
	mu sync.Mutex
	// budget is the in-memory byte budget before spilling.
	budget int
	// memBatches holds the in-memory prefix.
	memBatches []*Batch
	memBytes   int
	// spill is the overflow file; nil until first spill.
	spill     *os.File
	spillW    *bufio.Writer
	spilled   int // batches written to disk
	totalRows int
	sealed    bool
}

// NewStore creates a store with the given in-memory budget in bytes. A
// budget of 0 spills every batch.
func NewStore(budgetBytes int) *Store {
	return &Store{budget: budgetBytes}
}

// Append adds a batch. Batches appended after sealing are rejected.
func (s *Store) Append(b *Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return fmt.Errorf("tdf: append to sealed store")
	}
	s.totalRows += len(b.Rows)
	size := b.EncodedSize()
	if s.spill == nil && s.memBytes+size <= s.budget {
		s.memBatches = append(s.memBatches, b)
		s.memBytes += size
		return nil
	}
	if s.spill == nil {
		f, err := os.CreateTemp("", "hyperq-spill-*.tdf")
		if err != nil {
			return fmt.Errorf("tdf: spill: %w", err)
		}
		s.spill = f
		s.spillW = bufio.NewWriterSize(f, 1<<16)
	}
	if err := b.Encode(s.spillW); err != nil {
		return err
	}
	s.spilled++
	return nil
}

// TotalRows reports the number of buffered rows (the count some frontend
// protocols must announce before any data).
func (s *Store) TotalRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalRows
}

// Spilled reports how many batches went to disk (for tests and metrics).
func (s *Store) Spilled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// Seal marks the store complete and flushes spill buffers.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	s.sealed = true
	if s.spillW != nil {
		if err := s.spillW.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Drain invokes fn on every buffered batch in append order, then releases
// all resources (removing spill files). Drain may be called once.
func (s *Store) Drain(fn func(*Batch) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealed {
		return fmt.Errorf("tdf: drain before seal")
	}
	defer s.cleanupLocked()
	for _, b := range s.memBatches {
		if err := fn(b); err != nil {
			return err
		}
	}
	if s.spill != nil {
		if _, err := s.spill.Seek(0, 0); err != nil {
			return err
		}
		r := bufio.NewReaderSize(s.spill, 1<<16)
		for i := 0; i < s.spilled; i++ {
			b, err := Decode(r)
			if err != nil {
				return fmt.Errorf("tdf: reading spill batch %d: %w", i, err)
			}
			if err := fn(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases resources without draining.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cleanupLocked()
}

func (s *Store) cleanupLocked() {
	s.memBatches = nil
	if s.spill != nil {
		name := s.spill.Name()
		_ = s.spill.Close()
		_ = os.Remove(name)
		s.spill = nil
		s.spillW = nil
	}
}
