package binder

import (
	"fmt"
	"strings"

	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// bindPredicate binds a boolean expression with no aggregate/window context.
func (b *Binder) bindPredicate(e sqlast.Expr, sc *scope) (xtra.Scalar, error) {
	return b.bindPredicateCtx(e, sc, selCtx{})
}

func (b *Binder) bindPredicateCtx(e sqlast.Expr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	s, err := b.bindScalarCtx(e, sc, ctx)
	if err != nil {
		return nil, err
	}
	if s.Type().Kind != types.KindBool && s.Type().Kind != types.KindNull {
		return nil, fmt.Errorf("binder: predicate has type %s, want BOOLEAN", s.Type())
	}
	return s, nil
}

// bindScalar binds an expression with no aggregate/window context.
func (b *Binder) bindScalar(e sqlast.Expr, sc *scope) (xtra.Scalar, error) {
	return b.bindScalarCtx(e, sc, selCtx{})
}

// bindScalarCtx is the main expression binder.
func (b *Binder) bindScalarCtx(e sqlast.Expr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	// In an aggregate context, an expression structurally equal to a
	// grouping expression resolves to the group output column.
	if ctx.agg != nil && !ctx.agg.inAggArg {
		if col, ok := ctx.agg.findGroup(e); ok {
			return &xtra.ColRef{Col: col}, nil
		}
	}
	switch x := e.(type) {
	case *sqlast.Ident:
		return b.bindIdent(x, sc, ctx)
	case *sqlast.Const:
		c := xtra.NewConst(x.Val)
		c.Lit = x.Lit
		return c, nil
	case *sqlast.Param:
		return b.bindParam(x)
	case *sqlast.Star:
		return nil, fmt.Errorf("binder: '*' is not valid here")
	case *sqlast.BinExpr:
		return b.bindBinExpr(x, sc, ctx)
	case *sqlast.UnaryExpr:
		return b.bindUnary(x, sc, ctx)
	case *sqlast.FuncCall:
		return b.bindFuncCall(x, sc, ctx)
	case *sqlast.WindowFunc:
		return b.bindWindowFunc(x, sc, ctx)
	case *sqlast.CaseExpr:
		return b.bindCase(x, sc, ctx)
	case *sqlast.CastExpr:
		t, err := x.To.Resolve()
		if err != nil {
			return nil, fmt.Errorf("binder: %v", err)
		}
		inner, err := b.bindScalarCtx(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &xtra.CastExpr{X: inner, To: t}, nil
	case *sqlast.ExtractExpr:
		f, ok := types.ParseExtractField(x.Field)
		if !ok {
			return nil, fmt.Errorf("binder: invalid EXTRACT field %s", x.Field)
		}
		inner, err := b.bindScalarCtx(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsTemporal() && inner.Type().Kind != types.KindNull {
			return nil, fmt.Errorf("binder: EXTRACT requires a temporal argument, got %s", inner.Type())
		}
		return &xtra.ExtractExpr{Field: f, X: inner}, nil
	case *sqlast.Subquery:
		op, err := b.bindSubquery(x.Query, sc)
		if err != nil {
			return nil, err
		}
		cols := op.Columns()
		if len(cols) != 1 {
			return nil, fmt.Errorf("binder: scalar subquery must return one column, got %d", len(cols))
		}
		return &xtra.ScalarSubquery{Input: op, T: cols[0].Type}, nil
	case *sqlast.ExistsExpr:
		op, err := b.bindSubquery(x.Query, sc)
		if err != nil {
			return nil, err
		}
		return &xtra.ExistsExpr{Not: x.Not, Input: op}, nil
	case *sqlast.InExpr:
		return b.bindIn(x, sc, ctx)
	case *sqlast.QuantifiedCmp:
		return b.bindQuantified(x, sc, ctx)
	case *sqlast.Tuple:
		return nil, fmt.Errorf("binder: row expression is not valid here")
	case *sqlast.IntervalExpr:
		return b.bindInterval(x, sc, ctx)
	}
	return nil, fmt.Errorf("binder: unsupported expression %T", e)
}

func (b *Binder) bindParam(x *sqlast.Param) (xtra.Scalar, error) {
	if x.Name == "" {
		return nil, fmt.Errorf("binder: positional parameters are not supported")
	}
	if b.params != nil {
		if v, ok := b.params[strings.ToUpper(x.Name)]; ok {
			return xtra.NewConst(v), nil
		}
		return nil, fmt.Errorf("binder: no value for parameter :%s", x.Name)
	}
	return nil, fmt.Errorf("binder: unresolved parameter :%s", x.Name)
}

// bindIdent resolves a column reference, trying in order: scope columns
// (with outer-scope correlation), Teradata named-expression aliases, and
// Teradata implicit joins for qualified names.
func (b *Binder) bindIdent(x *sqlast.Ident, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	qual, name := x.Qualifier(), x.Name()
	col, ok, err := sc.resolve(qual, name)
	if err != nil {
		return nil, err
	}
	if ok {
		if ctx.agg != nil && !ctx.agg.inAggArg {
			// A bare column in an aggregate context must be (part of) a
			// grouping expression; structural group matching already ran.
			if !b.colInGroups(col.ID, ctx.agg) {
				return nil, fmt.Errorf("binder: column %s must appear in GROUP BY or an aggregate", name)
			}
		}
		return &xtra.ColRef{Col: col}, nil
	}
	// Teradata named expression reference (chained projection).
	if b.dialect == parser.Teradata && qual == "" {
		for s := sc; s != nil; s = s.parent {
			if s.aliasExprs == nil {
				continue
			}
			key := strings.ToUpper(name)
			if def, ok := s.aliasExprs[key]; ok {
				if s.aliasBinding[key] {
					return nil, fmt.Errorf("binder: circular reference to named expression %s", name)
				}
				s.aliasBinding[key] = true
				bound, err := b.bindScalarCtx(def, sc, ctx)
				s.aliasBinding[key] = false
				if err != nil {
					return nil, err
				}
				b.rec.Record(feature.NamedExprRef)
				return bound, nil
			}
			break // aliases resolve only in the defining block
		}
	}
	// Teradata implicit join: a qualified reference to a catalog table that
	// is missing from FROM pulls the table into the join tree (Table 2).
	if b.dialect == parser.Teradata && qual != "" {
		if tbl, ok := b.cat.Table(qual); ok {
			target := sc
			for target != nil && !target.fromActive {
				target = target.parent
			}
			if target != nil {
				g := &xtra.Get{Table: tbl.Name, Alias: qual}
				for _, c := range tbl.Columns {
					nc := b.newCol(c.Name, c.Type)
					g.Cols = append(g.Cols, nc)
					target.addCol(qual, c.Name, nc)
				}
				target.implicitGets = append(target.implicitGets, g)
				b.rec.Record(feature.ImplicitJoin)
				col, ok, err := sc.resolve(qual, name)
				if err != nil || !ok {
					return nil, fmt.Errorf("binder: column %s not in implicitly joined table %s", name, qual)
				}
				return &xtra.ColRef{Col: col}, nil
			}
		}
	}
	if qual != "" {
		return nil, fmt.Errorf("binder: column %s.%s does not exist", qual, name)
	}
	return nil, fmt.Errorf("binder: column %s does not exist", name)
}

// colInGroups reports whether the column id is one of the grouping output
// or grouping input columns.
func (b *Binder) colInGroups(id xtra.ColumnID, a *aggContext) bool {
	for _, g := range a.groups {
		if g.Out.ID == id {
			return true
		}
		if cr, ok := g.Expr.(*xtra.ColRef); ok && cr.Col.ID == id {
			return true
		}
	}
	return false
}

func (b *Binder) bindBinExpr(x *sqlast.BinExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	switch x.Op {
	case sqlast.BinAnd, sqlast.BinOr:
		l, err := b.bindPredicateCtx(x.L, sc, ctx)
		if err != nil {
			return nil, err
		}
		r, err := b.bindPredicateCtx(x.R, sc, ctx)
		if err != nil {
			return nil, err
		}
		if x.Op == sqlast.BinAnd {
			return xtra.MakeAnd(l, r), nil
		}
		return xtra.MakeOr(l, r), nil
	case sqlast.BinLike, sqlast.BinNotLike:
		l, err := b.bindScalarCtx(x.L, sc, ctx)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalarCtx(x.R, sc, ctx)
		if err != nil {
			return nil, err
		}
		if !l.Type().IsString() && l.Type().Kind != types.KindNull {
			return nil, fmt.Errorf("binder: LIKE requires string operands, got %s", l.Type())
		}
		return &xtra.LikeExpr{Not: x.Op == sqlast.BinNotLike, X: l, Pattern: r}, nil
	case sqlast.BinConcat:
		l, err := b.bindScalarCtx(x.L, sc, ctx)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalarCtx(x.R, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &xtra.ConcatExpr{L: stringify(l), R: stringify(r)}, nil
	}
	if x.Op.IsComparison() {
		return b.bindComparison(x, sc, ctx)
	}
	// Arithmetic.
	l, err := b.bindScalarCtx(x.L, sc, ctx)
	if err != nil {
		return nil, err
	}
	r, err := b.bindScalarCtx(x.R, sc, ctx)
	if err != nil {
		return nil, err
	}
	op := map[sqlast.BinOp]types.ArithOp{
		sqlast.BinAdd: types.OpAdd, sqlast.BinSub: types.OpSub,
		sqlast.BinMul: types.OpMul, sqlast.BinDiv: types.OpDiv, sqlast.BinMod: types.OpMod,
	}[x.Op]
	lt, rt := l.Type(), r.Type()
	if lt.Kind == types.KindNull {
		lt = rt
	}
	if rt.Kind == types.KindNull {
		rt = lt
	}
	result, err := types.ArithResultType(op, lt, rt)
	if err != nil {
		return nil, fmt.Errorf("binder: %v", err)
	}
	if result.Kind == types.KindDate && (lt.Kind == types.KindDate) != (rt.Kind == types.KindDate) {
		// Teradata date arithmetic: date +/- integer. Tracked so the
		// serializer can respell it for targets without native support.
		b.rec.Record(feature.DateArith)
	}
	return &xtra.ArithExpr{Op: op, L: l, R: r, T: result}, nil
}

var cmpMap = map[sqlast.BinOp]xtra.CmpOp{
	sqlast.BinEQ: xtra.CmpEQ, sqlast.BinNE: xtra.CmpNE,
	sqlast.BinLT: xtra.CmpLT, sqlast.BinLE: xtra.CmpLE,
	sqlast.BinGT: xtra.CmpGT, sqlast.BinGE: xtra.CmpGE,
}

func (b *Binder) bindComparison(x *sqlast.BinExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	l, err := b.bindScalarCtx(x.L, sc, ctx)
	if err != nil {
		return nil, err
	}
	r, err := b.bindScalarCtx(x.R, sc, ctx)
	if err != nil {
		return nil, err
	}
	op := cmpMap[x.Op]
	lt, rt := l.Type(), r.Type()
	if !types.CanCompare(lt, rt) {
		// Teradata's DATE/INT comparison via the internal integer encoding:
		// accepted here, normalized by the Transformer during the binding
		// stage (§5.2). Other systems reject it.
		dateInt := (lt.Kind == types.KindDate && rt.IsNumeric()) ||
			(rt.Kind == types.KindDate && lt.IsNumeric())
		if dateInt && b.dialect == parser.Teradata {
			b.rec.Record(feature.DateIntCompare)
			return &xtra.CompExpr{Op: op, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("binder: cannot compare %s with %s", lt, rt)
	}
	// NOT CASESPECIFIC columns (Table 2, unsupported column properties):
	// the property is kept in the gateway catalog and applied here by
	// folding both sides of a string comparison to a common case, since the
	// target system cannot store the property itself.
	if b.dialect == parser.Teradata && lt.IsString() && rt.IsString() && (b.isCaseInsensitive(l) || b.isCaseInsensitive(r)) {
		l = &xtra.FuncExpr{Name: "UPPER", Args: []xtra.Scalar{l}, T: types.VarChar(0)}
		r = &xtra.FuncExpr{Name: "UPPER", Args: []xtra.Scalar{r}, T: types.VarChar(0)}
	}
	// Insert implicit casts for comparable-but-different temporal kinds.
	if lt.Kind != rt.Kind && lt.IsTemporal() && rt.IsTemporal() {
		super, err := types.CommonSupertype(lt, rt)
		if err != nil {
			return nil, fmt.Errorf("binder: %v", err)
		}
		if lt.Kind != super.Kind {
			l = &xtra.CastExpr{X: l, To: super, Implicit: true}
		}
		if rt.Kind != super.Kind {
			r = &xtra.CastExpr{X: r, To: super, Implicit: true}
		}
	}
	return &xtra.CompExpr{Op: op, L: l, R: r}, nil
}

func (b *Binder) bindUnary(x *sqlast.UnaryExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	switch x.Op {
	case sqlast.UnaryNot:
		inner, err := b.bindPredicateCtx(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &xtra.NotExpr{X: inner}, nil
	case sqlast.UnaryNeg:
		inner, err := b.bindScalarCtx(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsNumeric() && inner.Type().Kind != types.KindNull && inner.Type().Kind != types.KindInterval {
			return nil, fmt.Errorf("binder: cannot negate %s", inner.Type())
		}
		return &xtra.NegExpr{X: inner}, nil
	case sqlast.UnaryIsNull, sqlast.UnaryIsNotNull:
		inner, err := b.bindScalarCtx(x.X, sc, ctx)
		if err != nil {
			return nil, err
		}
		return &xtra.IsNullExpr{Not: x.Op == sqlast.UnaryIsNotNull, X: inner}, nil
	}
	return nil, fmt.Errorf("binder: unknown unary operator")
}

func (b *Binder) bindCase(x *sqlast.CaseExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	out := &xtra.CaseExpr{}
	var operand xtra.Scalar
	if x.Operand != nil {
		op, err := b.bindScalarCtx(x.Operand, sc, ctx)
		if err != nil {
			return nil, err
		}
		operand = op
	}
	resultT := types.Null
	for _, w := range x.Whens {
		var cond xtra.Scalar
		var err error
		if operand != nil {
			// Simple CASE desugars to operand = when.
			rhs, err2 := b.bindScalarCtx(w.Cond, sc, ctx)
			if err2 != nil {
				return nil, err2
			}
			cond = &xtra.CompExpr{Op: xtra.CmpEQ, L: operand, R: rhs}
		} else {
			cond, err = b.bindPredicateCtx(w.Cond, sc, ctx)
			if err != nil {
				return nil, err
			}
		}
		then, err := b.bindScalarCtx(w.Then, sc, ctx)
		if err != nil {
			return nil, err
		}
		resultT, err = mergeCaseType(resultT, then.Type())
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, xtra.CaseWhen{Cond: cond, Then: then})
	}
	if x.Else != nil {
		els, err := b.bindScalarCtx(x.Else, sc, ctx)
		if err != nil {
			return nil, err
		}
		resultT, err = mergeCaseType(resultT, els.Type())
		if err != nil {
			return nil, err
		}
		out.Else = els
	}
	out.T = resultT
	return out, nil
}

func mergeCaseType(acc, t types.T) (types.T, error) {
	super, err := types.CommonSupertype(acc, t)
	if err != nil {
		return types.Null, fmt.Errorf("binder: incompatible CASE branch types %s and %s", acc, t)
	}
	return super, nil
}

func (b *Binder) bindIn(x *sqlast.InExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	var left []xtra.Scalar
	for _, l := range x.Left {
		e, err := b.bindScalarCtx(l, sc, ctx)
		if err != nil {
			return nil, err
		}
		left = append(left, e)
	}
	if x.Query != nil {
		op, err := b.bindSubquery(x.Query, sc)
		if err != nil {
			return nil, err
		}
		if len(op.Columns()) != len(left) {
			return nil, fmt.Errorf("binder: IN subquery yields %d columns, want %d", len(op.Columns()), len(left))
		}
		var cmp xtra.Scalar = &xtra.SubqueryCmp{Cmp: xtra.CmpEQ, Quant: xtra.QuantAny, Left: left, Input: op}
		if x.Not {
			cmp = &xtra.NotExpr{X: cmp}
		}
		return cmp, nil
	}
	if len(left) != 1 {
		return nil, fmt.Errorf("binder: row IN value-list is not supported")
	}
	var vals []xtra.Scalar
	for _, v := range x.List {
		e, err := b.bindScalarCtx(v, sc, ctx)
		if err != nil {
			return nil, err
		}
		if !types.CanCompare(left[0].Type(), e.Type()) {
			return nil, fmt.Errorf("binder: IN list value type %s incompatible with %s", e.Type(), left[0].Type())
		}
		vals = append(vals, e)
	}
	return &xtra.InValues{Not: x.Not, X: left[0], Vals: vals}, nil
}

func (b *Binder) bindQuantified(x *sqlast.QuantifiedCmp, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	var left []xtra.Scalar
	for _, l := range x.Left {
		e, err := b.bindScalarCtx(l, sc, ctx)
		if err != nil {
			return nil, err
		}
		left = append(left, e)
	}
	op, err := b.bindSubquery(x.Query, sc)
	if err != nil {
		return nil, err
	}
	if len(op.Columns()) != len(left) {
		return nil, fmt.Errorf("binder: quantified subquery yields %d columns, want %d", len(op.Columns()), len(left))
	}
	quant := xtra.QuantAny
	if x.Quant == sqlast.QuantAll {
		quant = xtra.QuantAll
	}
	return &xtra.SubqueryCmp{Cmp: cmpMap[x.Op], Quant: quant, Left: left, Input: op}, nil
}

// bindSubquery binds a nested query with the current scope as correlation
// parent.
func (b *Binder) bindSubquery(q *sqlast.QueryExpr, sc *scope) (xtra.Op, error) {
	return b.bindQueryExpr(q, sc)
}

func (b *Binder) bindInterval(x *sqlast.IntervalExpr, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	v, err := b.bindScalarCtx(x.Value, sc, ctx)
	if err != nil {
		return nil, err
	}
	c, ok := v.(*xtra.ConstExpr)
	if !ok {
		return nil, fmt.Errorf("binder: INTERVAL requires a literal value")
	}
	var n int64
	switch {
	case c.Val.Type().IsNumeric():
		n = c.Val.AsInt()
	case c.Val.Type().IsString():
		d, err := types.Cast(c.Val, types.BigInt)
		if err != nil {
			return nil, fmt.Errorf("binder: invalid INTERVAL value %q", c.Val.S)
		}
		n = d.I
	default:
		return nil, fmt.Errorf("binder: invalid INTERVAL value")
	}
	// Day intervals become day counts usable in date arithmetic; month/year
	// intervals have no uniform arithmetic across targets — the portable
	// canonical form is ADD_MONTHS, so direct INTERVAL MONTH arithmetic is
	// rejected with a hint.
	switch strings.ToUpper(x.Unit) {
	case "DAY":
		return xtra.NewConst(types.NewInt(n)), nil
	case "MONTH", "YEAR":
		return nil, fmt.Errorf("binder: INTERVAL %s arithmetic is not portable; use ADD_MONTHS", strings.ToUpper(x.Unit))
	case "HOUR", "MINUTE", "SECOND":
		mult := map[string]int64{"HOUR": 3600, "MINUTE": 60, "SECOND": 1}[strings.ToUpper(x.Unit)]
		return xtra.NewConst(types.NewInterval(n * mult * 1_000_000)), nil
	}
	return nil, fmt.Errorf("binder: unsupported INTERVAL unit %s", x.Unit)
}

// isCaseInsensitive reports whether the scalar is a direct reference to a
// NOT CASESPECIFIC column.
func (b *Binder) isCaseInsensitive(s xtra.Scalar) bool {
	cr, ok := s.(*xtra.ColRef)
	return ok && b.ciCols[cr.Col.ID]
}

func stringify(s xtra.Scalar) xtra.Scalar {
	if s.Type().IsString() || s.Type().Kind == types.KindNull {
		return s
	}
	return &xtra.CastExpr{X: s, To: types.VarChar(0), Implicit: true}
}
