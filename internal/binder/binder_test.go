package binder

import (
	"strings"
	"testing"

	"hyperq/internal/catalog"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// testCatalog builds the schema used across binder tests, matching the
// paper's examples (SALES, SALES_HISTORY, PRODUCT, EMP).
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	mustCreate := func(tbl *catalog.Table) {
		if err := c.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&catalog.Table{Name: "SALES", Columns: []catalog.Column{
		{Name: "AMOUNT", Type: types.Decimal(12, 2)},
		{Name: "SALES_DATE", Type: types.Date},
		{Name: "STORE", Type: types.Int},
	}})
	mustCreate(&catalog.Table{Name: "SALES_HISTORY", Columns: []catalog.Column{
		{Name: "GROSS", Type: types.Decimal(12, 2)},
		{Name: "NET", Type: types.Decimal(12, 2)},
	}})
	mustCreate(&catalog.Table{Name: "PRODUCT", Columns: []catalog.Column{
		{Name: "PRODUCT_NAME", Type: types.VarChar(40)},
		{Name: "SALES", Type: types.Decimal(12, 2)},
		{Name: "STORE", Type: types.Int},
	}})
	mustCreate(&catalog.Table{Name: "EMP", Columns: []catalog.Column{
		{Name: "EMPNO", Type: types.Int},
		{Name: "MGRNO", Type: types.Int},
	}})
	mustCreate(&catalog.Table{Name: "T1", Columns: []catalog.Column{
		{Name: "A", Type: types.Int},
		{Name: "B", Type: types.VarChar(10)},
	}})
	mustCreate(&catalog.Table{Name: "T2", Columns: []catalog.Column{
		{Name: "A", Type: types.Int},
		{Name: "C", Type: types.Float},
	}})
	return c
}

func bindTD(t *testing.T, sql string) (xtra.Statement, feature.Set) {
	t.Helper()
	rec := &feature.Recorder{}
	stmt, err := parser.ParseOne(sql, parser.Teradata, rec)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := New(testCatalog(t), parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return bound, rec.Set()
}

func bindErrTD(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := parser.ParseOne(sql, parser.Teradata, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := New(testCatalog(t), parser.Teradata, nil)
	_, err = b.Bind(stmt)
	if err == nil {
		t.Fatalf("bind %q should fail", sql)
	}
	return err
}

func queryRoot(t *testing.T, s xtra.Statement) xtra.Op {
	t.Helper()
	q, ok := s.(*xtra.Query)
	if !ok {
		t.Fatalf("not a query: %T", s)
	}
	return q.Root
}

func TestBindSimpleProject(t *testing.T) {
	s, _ := bindTD(t, "SELECT a, b FROM t1")
	root := queryRoot(t, s)
	p, ok := root.(*xtra.Project)
	if !ok {
		t.Fatalf("root = %T", root)
	}
	cols := p.Columns()
	if len(cols) != 2 || !strings.EqualFold(cols[0].Name, "a") {
		t.Fatalf("cols = %v", cols)
	}
	if cols[0].Type.Kind != types.KindInt || !cols[1].Type.IsString() {
		t.Errorf("types = %v %v", cols[0].Type, cols[1].Type)
	}
}

func TestBindStarExpansion(t *testing.T) {
	s, _ := bindTD(t, "SELECT * FROM sales")
	cols := queryRoot(t, s).Columns()
	if len(cols) != 3 {
		t.Fatalf("star expanded to %d cols", len(cols))
	}
	s, _ = bindTD(t, "SELECT t1.*, t2.c FROM t1, t2")
	cols = queryRoot(t, s).Columns()
	if len(cols) != 3 {
		t.Fatalf("qualified star: %d cols", len(cols))
	}
}

func TestBindUnknownColumn(t *testing.T) {
	err := bindErrTD(t, "SELECT missing FROM t1")
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error = %v", err)
	}
	bindErrTD(t, "SELECT a FROM nope")
}

func TestBindAmbiguousColumn(t *testing.T) {
	err := bindErrTD(t, "SELECT a FROM t1, t2")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error = %v", err)
	}
	// Qualification disambiguates.
	bindTD(t, "SELECT t1.a, t2.a FROM t1, t2")
}

// Example 1: named expressions, QUALIFY lowering, ORDER BY on hidden key.
func TestBindExample1(t *testing.T) {
	s, fs := bindTD(t, `
	  SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET
	  FROM PRODUCT
	  QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE)
	  ORDER BY STORE, PRODUCT_NAME
	  WHERE CHARS(PRODUCT_NAME) > 4`)
	if !fs.Has(feature.NamedExprRef) {
		t.Error("NamedExprRef not recorded")
	}
	out := xtra.Format(queryRoot(t, s))
	// Expect: project over sort over project over select(qualify) over
	// window over select(where) over get.
	for _, want := range []string{"window(SUM)", "get(PRODUCT)", "func(CHAR_LENGTH)", "sort["} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	cols := queryRoot(t, s).Columns()
	if len(cols) != 3 {
		t.Fatalf("visible cols = %d (hidden order keys must be dropped)", len(cols))
	}
	// SALES_OFFSET = decimal + int = decimal.
	if cols[2].Type.Kind != types.KindDecimal {
		t.Errorf("SALES_OFFSET type = %v", cols[2].Type)
	}
}

// Example 2: vector subquery and DATE/INT comparison survive binding; the
// transformer rewrites them later.
func TestBindExample2(t *testing.T) {
	s, fs := bindTD(t, `
	  SEL * FROM SALES
	  WHERE SALES_DATE > 1140101
	    AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
	  QUALIFY RANK(AMOUNT DESC) <= 10`)
	for _, want := range []feature.ID{feature.DateIntCompare, feature.VectorSubquery, feature.Qualify, feature.TdRank} {
		if !fs.Has(want) {
			t.Errorf("feature %s not recorded", feature.Lookup(want).Name)
		}
	}
	out := xtra.Format(queryRoot(t, s))
	for _, want := range []string{
		"window(RANK, DESC, AMOUNT)",
		"subq(ANY, GT, [GROSS, NET])",
		"get(SALES)",
		"get(SALES_HISTORY)",
		"comp(LE)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
}

func TestBindVectorArityMismatch(t *testing.T) {
	bindErrTD(t, "SELECT * FROM sales WHERE (amount, amount) > ANY (SELECT gross FROM sales_history)")
}

func TestBindImplicitJoin(t *testing.T) {
	s, fs := bindTD(t, "SELECT t1.a FROM t1 WHERE t2.c > 0.5")
	if !fs.Has(feature.ImplicitJoin) {
		t.Error("ImplicitJoin not recorded")
	}
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "get(T2)") || !strings.Contains(out, "join(CROSS)") {
		t.Errorf("implicit join missing:\n%s", out)
	}
}

func TestImplicitJoinRejectedInANSI(t *testing.T) {
	stmt, err := parser.ParseOne("SELECT t1.a FROM t1 WHERE t2.c > 0.5", parser.ANSI, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := New(testCatalog(t), parser.ANSI, nil)
	if _, err := b.Bind(stmt); err == nil {
		t.Fatal("ANSI binder accepted implicit join")
	}
}

func TestDateIntCompareRejectedInANSI(t *testing.T) {
	stmt, err := parser.ParseOne("SELECT * FROM sales WHERE sales_date > 1140101", parser.ANSI, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := New(testCatalog(t), parser.ANSI, nil)
	if _, err := b.Bind(stmt); err == nil {
		t.Fatal("ANSI binder accepted DATE/INT comparison")
	}
}

func TestBindAggregation(t *testing.T) {
	s, _ := bindTD(t, "SELECT store, SUM(amount) AS total, COUNT(*) FROM sales GROUP BY store HAVING SUM(amount) > 100")
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "agg[STORE][SUM(AMOUNT), COUNT(*)]") {
		t.Errorf("agg missing:\n%s", out)
	}
	cols := queryRoot(t, s).Columns()
	if cols[1].Type.Kind != types.KindDecimal || cols[2].Type.Kind != types.KindBigInt {
		t.Errorf("agg types = %v %v", cols[1].Type, cols[2].Type)
	}
}

func TestBindAggregateReuse(t *testing.T) {
	s, _ := bindTD(t, "SELECT SUM(amount), SUM(amount) + 1 FROM sales")
	var agg *xtra.Agg
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if a, ok := op.(*xtra.Agg); ok {
			agg = a
		}
		return true
	})
	if agg == nil || len(agg.Aggs) != 1 {
		t.Fatalf("aggregate not reused: %+v", agg)
	}
}

func TestBindBareColumnInAggQuery(t *testing.T) {
	err := bindErrTD(t, "SELECT store, amount FROM sales GROUP BY store")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("error = %v", err)
	}
}

func TestBindOrdinalGroupBy(t *testing.T) {
	s, fs := bindTD(t, "SELECT store, SUM(amount) FROM sales GROUP BY 1")
	if !fs.Has(feature.OrdinalGroupBy) {
		t.Error("OrdinalGroupBy not recorded")
	}
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "agg[STORE]") {
		t.Errorf("ordinal not replaced:\n%s", out)
	}
	bindErrTD(t, "SELECT store FROM sales GROUP BY 5")
}

func TestBindGroupByExpression(t *testing.T) {
	s, _ := bindTD(t, "SELECT EXTRACT(YEAR FROM sales_date), SUM(amount) FROM sales GROUP BY EXTRACT(YEAR FROM sales_date)")
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "agg[EXTRACT(YEAR)]") {
		t.Errorf("group expr:\n%s", out)
	}
}

func TestBindScalarAggregate(t *testing.T) {
	s, _ := bindTD(t, "SELECT COUNT(*) FROM sales")
	var agg *xtra.Agg
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if a, ok := op.(*xtra.Agg); ok {
			agg = a
		}
		return true
	})
	if agg == nil || len(agg.Groups) != 0 {
		t.Fatal("scalar aggregate mis-bound")
	}
}

func TestBindDistinct(t *testing.T) {
	s, _ := bindTD(t, "SELECT DISTINCT store FROM sales ORDER BY store")
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(strings.ToUpper(out), "AGG[STORE][]") {
		t.Errorf("distinct not lowered to agg:\n%s", out)
	}
	bindErrTD(t, "SELECT DISTINCT store FROM sales ORDER BY amount")
}

func TestBindOrderByAliasAndOrdinal(t *testing.T) {
	s, fs := bindTD(t, "SELECT amount AS amt FROM sales ORDER BY amt DESC, 1")
	if !fs.Has(feature.OrdinalGroupBy) {
		t.Error("ordinal ORDER BY not recorded")
	}
	var sort *xtra.Sort
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if so, ok := op.(*xtra.Sort); ok {
			sort = so
		}
		return true
	})
	if sort == nil || len(sort.Keys) != 2 || !sort.Keys[0].Desc {
		t.Fatalf("sort = %+v", sort)
	}
	// Teradata default: NULLs low — first on ASC, last on DESC.
	if sort.Keys[0].NullsFirst || !sort.Keys[1].NullsFirst {
		t.Errorf("null ordering defaults wrong: %+v", sort.Keys)
	}
}

func TestBindTopWithTies(t *testing.T) {
	s, _ := bindTD(t, "SEL TOP 10 WITH TIES amount FROM sales ORDER BY amount DESC")
	var lim *xtra.Limit
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if l, ok := op.(*xtra.Limit); ok {
			lim = l
		}
		return true
	})
	if lim == nil || lim.N != 10 || !lim.WithTies || len(lim.Keys) != 1 {
		t.Fatalf("limit = %+v", lim)
	}
	bindErrTD(t, "SEL TOP 10 WITH TIES amount FROM sales")
}

func TestBindSetOpAlignment(t *testing.T) {
	s, _ := bindTD(t, "SELECT a FROM t1 UNION ALL SELECT c FROM t2")
	so, ok := queryRoot(t, s).(*xtra.SetOp)
	if !ok {
		t.Fatalf("root = %T", queryRoot(t, s))
	}
	if so.Cols[0].Type.Kind != types.KindFloat {
		t.Errorf("aligned type = %v", so.Cols[0].Type)
	}
	bindErrTD(t, "SELECT a, b FROM t1 UNION SELECT a FROM t2")
	bindErrTD(t, "SELECT b FROM t1 UNION SELECT c FROM t2") // varchar vs float
}

func TestBindCTE(t *testing.T) {
	s, _ := bindTD(t, "WITH big AS (SELECT amount FROM sales WHERE amount > 100) SELECT * FROM big")
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "get(SALES)") {
		t.Errorf("CTE not inlined:\n%s", out)
	}
}

func TestBindRecursiveCTE(t *testing.T) {
	s, _ := bindTD(t, `
	  WITH RECURSIVE reports (empno, mgrno) AS (
	    SELECT empno, mgrno FROM emp WHERE mgrno = 10
	    UNION ALL
	    SELECT emp.empno, emp.mgrno FROM emp, reports WHERE reports.empno = emp.mgrno
	  )
	  SELECT empno FROM reports ORDER BY empno`)
	out := xtra.Format(queryRoot(t, s))
	for _, want := range []string{"recursive_union", "workscan(reports)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestBindRecursiveCTESeedSelfReference(t *testing.T) {
	bindErrTD(t, `
	  WITH RECURSIVE r (x) AS (
	    SELECT empno FROM r
	    UNION ALL
	    SELECT empno FROM emp
	  ) SELECT x FROM r`)
}

func TestBindCorrelatedSubquery(t *testing.T) {
	s, _ := bindTD(t, `
	  SELECT * FROM sales s1
	  WHERE EXISTS (SELECT 1 FROM sales_history WHERE gross = s1.amount)`)
	out := xtra.Format(queryRoot(t, s))
	if !strings.Contains(out, "subq(EXISTS)") {
		t.Errorf("exists missing:\n%s", out)
	}
}

func TestBindScalarSubqueryArity(t *testing.T) {
	bindErrTD(t, "SELECT (SELECT gross, net FROM sales_history) FROM sales")
}

func TestBindInsert(t *testing.T) {
	s, _ := bindTD(t, "INSERT INTO t1 (a, b) VALUES (1, 'x')")
	ins := s.(*xtra.Insert)
	if ins.Table != "T1" || len(ins.Ordinals) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	// Type mismatch inserts a cast.
	s, _ = bindTD(t, "INSERT INTO t1 (a) SELECT c FROM t2")
	ins = s.(*xtra.Insert)
	if _, ok := ins.Input.(*xtra.Project); !ok {
		t.Error("cast projection missing for float->int insert")
	}
	bindErrTD(t, "INSERT INTO t1 (a) VALUES (1, 2)")
	bindErrTD(t, "INSERT INTO t1 (nope) VALUES (1)")
	bindErrTD(t, "INSERT INTO t1 VALUES (1)")
}

func TestBindUpdate(t *testing.T) {
	s, _ := bindTD(t, "UPDATE t1 SET a = a + 1 WHERE b = 'x'")
	upd := s.(*xtra.Update)
	if upd.Table != "T1" || len(upd.Assigns) != 1 || upd.Pred == nil {
		t.Fatalf("update = %+v", upd)
	}
	bindErrTD(t, "UPDATE t1 SET nope = 1")
	bindErrTD(t, "UPDATE t1 SET a = 'text'")
}

func TestBindUpdateFrom(t *testing.T) {
	s, _ := bindTD(t, "UPDATE t1 FROM t2 SET a = t2.a WHERE t1.a = t2.a")
	upd := s.(*xtra.Update)
	if _, ok := upd.Pred.(*xtra.ExistsExpr); !ok {
		t.Fatalf("update-from pred = %T", upd.Pred)
	}
	if _, ok := upd.Assigns[0].Expr.(*xtra.ScalarSubquery); !ok {
		t.Fatalf("update-from assign = %T", upd.Assigns[0].Expr)
	}
}

func TestBindDelete(t *testing.T) {
	s, _ := bindTD(t, "DEL FROM t1 WHERE a > 5")
	del := s.(*xtra.Delete)
	if del.Table != "T1" || del.Pred == nil {
		t.Fatalf("delete = %+v", del)
	}
	s, _ = bindTD(t, "DEL t1 ALL")
	if s.(*xtra.Delete).Pred != nil {
		t.Error("DELETE ALL must have nil predicate")
	}
}

func TestBindDMLOnView(t *testing.T) {
	c := testCatalog(t)
	if err := c.CreateView(&catalog.View{
		Name: "V1", SQL: "SELECT a, b FROM t1", Updatable: true, BaseTable: "T1",
	}); err != nil {
		t.Fatal(err)
	}
	rec := &feature.Recorder{}
	stmt, _ := parser.ParseOne("UPDATE v1 SET a = 2 WHERE b = 'x'", parser.Teradata, rec)
	b := New(c, parser.Teradata, rec)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if bound.(*xtra.Update).Table != "T1" {
		t.Error("DML not redirected to base table")
	}
	if !rec.Set().Has(feature.DmlOnView) {
		t.Error("DmlOnView not recorded")
	}
}

func TestBindViewReference(t *testing.T) {
	c := testCatalog(t)
	if err := c.CreateView(&catalog.View{Name: "BIGSALES", SQL: "SELECT amount FROM sales WHERE amount > 100"}); err != nil {
		t.Fatal(err)
	}
	stmt, _ := parser.ParseOne("SELECT * FROM bigsales", parser.Teradata, nil)
	b := New(c, parser.Teradata, nil)
	bound, err := b.Bind(stmt)
	if err != nil {
		t.Fatal(err)
	}
	out := xtra.Format(bound.(*xtra.Query).Root)
	if !strings.Contains(out, "get(SALES)") {
		t.Errorf("view not expanded:\n%s", out)
	}
}

func TestBindCreateTable(t *testing.T) {
	s, _ := bindTD(t, "CREATE TABLE nt (x INT NOT NULL, y DECIMAL(8,2) DEFAULT 0)")
	ct := s.(*xtra.CreateTable)
	if len(ct.Def.Columns) != 2 || !ct.Def.Columns[0].NotNull {
		t.Fatalf("create = %+v", ct.Def)
	}
	s, _ = bindTD(t, "CREATE TABLE snap AS (SELECT store, SUM(amount) AS total FROM sales GROUP BY store) WITH DATA")
	ct = s.(*xtra.CreateTable)
	if ct.Input == nil || len(ct.Def.Columns) != 2 || !strings.EqualFold(ct.Def.Columns[1].Name, "total") {
		t.Fatalf("ctas = %+v", ct.Def)
	}
}

func TestBindCreateViewUpdatability(t *testing.T) {
	s, _ := bindTD(t, "CREATE VIEW uv AS SELECT a, b FROM t1")
	cv := s.(*xtra.CreateView)
	if !cv.Def.Updatable || cv.Def.BaseTable != "t1" {
		t.Fatalf("view = %+v", cv.Def)
	}
	s, _ = bindTD(t, "CREATE VIEW av AS SELECT store, SUM(amount) AS s FROM sales GROUP BY store")
	if s.(*xtra.CreateView).Def.Updatable {
		t.Error("aggregate view marked updatable")
	}
}

func TestBindWindowSpecsGrouped(t *testing.T) {
	s, _ := bindTD(t, `
	  SELECT RANK() OVER (PARTITION BY store ORDER BY amount DESC),
	         SUM(amount) OVER (PARTITION BY store ORDER BY amount DESC),
	         ROW_NUMBER() OVER (ORDER BY amount)
	  FROM sales`)
	var windows []*xtra.Window
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if w, ok := op.(*xtra.Window); ok {
			windows = append(windows, w)
		}
		return true
	})
	if len(windows) != 2 {
		t.Fatalf("window ops = %d, want 2 (shared spec + distinct spec)", len(windows))
	}
	total := 0
	for _, w := range windows {
		total += len(w.Funcs)
	}
	if total != 3 {
		t.Errorf("window funcs = %d", total)
	}
}

func TestBindQualifyWithoutWindowErrors(t *testing.T) {
	// QUALIFY referencing no window function still binds (it is just a
	// filter over window output columns); but a window in WHERE must fail.
	bindErrTD(t, "SELECT amount FROM sales WHERE RANK() OVER (ORDER BY amount) < 10")
}

func TestBindAggInWhereErrors(t *testing.T) {
	bindErrTD(t, "SELECT store FROM sales WHERE SUM(amount) > 10 GROUP BY store")
}

func TestBindNestedAggErrors(t *testing.T) {
	bindErrTD(t, "SELECT SUM(COUNT(*)) FROM sales")
}

func TestBindCircularNamedExpr(t *testing.T) {
	err := bindErrTD(t, "SEL a + b AS x, x + 1 AS y FROM t1 WHERE y > 0 AND x < 5 AND a = a")
	_ = err // x/y are fine; make an actual cycle:
	err = bindErrTD(t, "SEL y + 1 AS x, x + 1 AS y FROM t1")
	if !strings.Contains(err.Error(), "circular") {
		t.Errorf("error = %v", err)
	}
}

func TestBindNamedExprInWhere(t *testing.T) {
	// Teradata allows WHERE to reference select aliases.
	s, fs := bindTD(t, "SEL amount * 2 AS dbl FROM sales WHERE dbl > 10")
	_ = s
	if !fs.Has(feature.NamedExprRef) {
		t.Error("NamedExprRef not recorded for WHERE use")
	}
}

func TestBindGroupingSetsPreserved(t *testing.T) {
	s, _ := bindTD(t, "SELECT store, SUM(amount) FROM sales GROUP BY ROLLUP(store)")
	var agg *xtra.Agg
	xtra.WalkOps(queryRoot(t, s), func(op xtra.Op) bool {
		if a, ok := op.(*xtra.Agg); ok {
			agg = a
		}
		return true
	})
	if agg == nil || agg.GroupingSets == nil || len(agg.GroupingSets) != 2 {
		t.Fatalf("grouping sets = %+v", agg)
	}
}

func TestBindCaseTypeDerivation(t *testing.T) {
	s, _ := bindTD(t, "SELECT CASE WHEN a > 0 THEN 1 ELSE 2.5 END FROM t1")
	cols := queryRoot(t, s).Columns()
	if cols[0].Type.Kind != types.KindDecimal {
		t.Errorf("case type = %v", cols[0].Type)
	}
	bindErrTD(t, "SELECT CASE WHEN a > 0 THEN 1 ELSE 'x' END FROM t1")
}

func TestBindSimpleCaseDesugar(t *testing.T) {
	s, _ := bindTD(t, "SELECT CASE a WHEN 1 THEN 'one' ELSE 'other' END FROM t1")
	_ = s // binding without error is the assertion; operand desugared to a = 1
}

func TestBindCollectStatsEliminated(t *testing.T) {
	s, _ := bindTD(t, "COLLECT STATISTICS ON sales")
	if _, ok := s.(*xtra.NoOp); !ok {
		t.Fatalf("COLLECT STATISTICS bound as %T, want NoOp", s)
	}
}

func TestBindSelectWithoutFrom(t *testing.T) {
	s, _ := bindTD(t, "SELECT 1 + 1 AS two, 'x' AS s")
	cols := queryRoot(t, s).Columns()
	if len(cols) != 2 || cols[0].Name != "two" {
		t.Fatalf("cols = %v", cols)
	}
}
