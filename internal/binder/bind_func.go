package binder

import (
	"fmt"
	"strings"

	"hyperq/internal/sqlast"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// implicitCast coerces e to want, inserting an implicit cast when needed.
func (b *Binder) implicitCast(e xtra.Scalar, want types.T) (xtra.Scalar, error) {
	t := e.Type()
	if t.Equal(want) || t.Kind == types.KindNull {
		return e, nil
	}
	if !coercible(t, want) {
		return nil, fmt.Errorf("cannot coerce %s to %s", t, want)
	}
	return &xtra.CastExpr{X: e, To: want, Implicit: true}, nil
}

// aggResultType derives the aggregate output type.
func aggResultType(fn string, arg types.T) (types.T, error) {
	switch fn {
	case "COUNT":
		return types.BigInt, nil
	case "SUM":
		switch arg.Kind {
		case types.KindInt, types.KindBigInt:
			return types.BigInt, nil
		case types.KindDecimal:
			return types.Decimal(18, arg.Scale), nil
		case types.KindFloat:
			return types.Float, nil
		case types.KindNull:
			return types.BigInt, nil
		}
		return types.Null, fmt.Errorf("SUM over %s", arg)
	case "AVG":
		switch arg.Kind {
		case types.KindInt, types.KindBigInt, types.KindFloat, types.KindNull:
			return types.Float, nil
		case types.KindDecimal:
			s := arg.Scale
			if s < 4 {
				s = 4
			}
			return types.Decimal(18, s), nil
		}
		return types.Null, fmt.Errorf("AVG over %s", arg)
	case "MIN", "MAX":
		return arg, nil
	}
	return types.Null, fmt.Errorf("unknown aggregate %s", fn)
}

// bindFuncCall binds aggregates and scalar builtins.
func (b *Binder) bindFuncCall(x *sqlast.FuncCall, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	name := strings.ToUpper(x.Name)
	if aggFuncs[name] {
		return b.bindAggregate(x, sc, ctx)
	}
	if x.Distinct {
		return nil, fmt.Errorf("binder: DISTINCT is only valid in aggregates")
	}
	if x.Star {
		return nil, fmt.Errorf("binder: %s(*) is not valid", name)
	}
	// Target-dialect spellings normalize to the canonical builtin so the
	// engine substrate accepts the SQL each serializer emits.
	switch name {
	case "LEN":
		name = "CHAR_LENGTH"
	case "CHARINDEX":
		name = "POSITION"
	}
	var args []xtra.Scalar
	for _, a := range x.Args {
		e, err := b.bindScalarCtx(a, sc, ctx)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if name == "STRPOS" {
		// STRPOS(haystack, needle) -> POSITION(needle, haystack).
		if len(args) != 2 {
			return nil, fmt.Errorf("binder: STRPOS takes two arguments")
		}
		name = "POSITION"
		args[0], args[1] = args[1], args[0]
	}
	return b.resolveBuiltin(name, args)
}

// resolveBuiltin type-checks a canonical scalar builtin.
func (b *Binder) resolveBuiltin(name string, args []xtra.Scalar) (xtra.Scalar, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("binder: %s takes %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	wantString := func(i int) (xtra.Scalar, error) {
		if args[i].Type().IsString() || args[i].Type().Kind == types.KindNull {
			return args[i], nil
		}
		return nil, fmt.Errorf("binder: argument %d of %s must be a string, got %s", i+1, name, args[i].Type())
	}
	switch name {
	case "CHAR_LENGTH", "LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		if _, err := wantString(0); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: "CHAR_LENGTH", Args: args, T: types.Int}, nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("binder: SUBSTR takes 2 or 3 arguments")
		}
		if _, err := wantString(0); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: "SUBSTR", Args: args, T: types.VarChar(0)}, nil
	case "POSITION":
		if err := arity(2); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: "POSITION", Args: args, T: types.Int}, nil
	case "UPPER", "LOWER", "TRIM", "LTRIM", "RTRIM":
		if err := arity(1); err != nil {
			return nil, err
		}
		if _, err := wantString(0); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: name, Args: args, T: types.VarChar(0)}, nil
	case "COALESCE":
		if len(args) < 2 {
			return nil, fmt.Errorf("binder: COALESCE takes at least 2 arguments")
		}
		t := types.Null
		var err error
		for _, a := range args {
			t, err = types.CommonSupertype(t, a.Type())
			if err != nil {
				return nil, fmt.Errorf("binder: COALESCE: %v", err)
			}
		}
		return &xtra.FuncExpr{Name: "COALESCE", Args: args, T: t}, nil
	case "NULLIF":
		if err := arity(2); err != nil {
			return nil, err
		}
		if !types.CanCompare(args[0].Type(), args[1].Type()) {
			return nil, fmt.Errorf("binder: NULLIF arguments are not comparable")
		}
		return &xtra.FuncExpr{Name: "NULLIF", Args: args, T: args[0].Type()}, nil
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		if !args[0].Type().IsNumeric() && args[0].Type().Kind != types.KindNull {
			return nil, fmt.Errorf("binder: ABS requires a numeric argument")
		}
		return &xtra.FuncExpr{Name: "ABS", Args: args, T: args[0].Type()}, nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("binder: ROUND takes 1 or 2 arguments")
		}
		return &xtra.FuncExpr{Name: "ROUND", Args: args, T: args[0].Type()}, nil
	case "FLOOR", "CEIL", "CEILING":
		if err := arity(1); err != nil {
			return nil, err
		}
		n := name
		if n == "CEILING" {
			n = "CEIL"
		}
		return &xtra.FuncExpr{Name: n, Args: args, T: types.BigInt}, nil
	case "MOD":
		if err := arity(2); err != nil {
			return nil, err
		}
		t, err := types.ArithResultType(types.OpMod, args[0].Type(), args[1].Type())
		if err != nil {
			return nil, fmt.Errorf("binder: %v", err)
		}
		return &xtra.ArithExpr{Op: types.OpMod, L: args[0], R: args[1], T: t}, nil
	case "ADD_MONTHS":
		if err := arity(2); err != nil {
			return nil, err
		}
		t := args[0].Type()
		if t.Kind != types.KindDate && t.Kind != types.KindTimestamp && t.Kind != types.KindNull {
			return nil, fmt.Errorf("binder: ADD_MONTHS requires a date argument")
		}
		if !args[1].Type().IsNumeric() && args[1].Type().Kind != types.KindNull {
			return nil, fmt.Errorf("binder: ADD_MONTHS requires a numeric month count")
		}
		return &xtra.FuncExpr{Name: "ADD_MONTHS", Args: args, T: types.Date}, nil
	case "DATEADD":
		if err := arity(3); err != nil {
			return nil, err
		}
		if !args[1].Type().IsNumeric() && args[1].Type().Kind != types.KindNull {
			return nil, fmt.Errorf("binder: DATEADD requires a numeric count")
		}
		t := args[2].Type()
		if t.Kind != types.KindDate && t.Kind != types.KindTimestamp && t.Kind != types.KindNull {
			return nil, fmt.Errorf("binder: DATEADD requires a date argument")
		}
		return &xtra.FuncExpr{Name: "DATEADD", Args: args, T: types.Date}, nil
	case "CURRENT_DATE":
		if err := arity(0); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: "CURRENT_DATE", T: types.Date}, nil
	case "CURRENT_TIMESTAMP", "CURRENT_TIME":
		if err := arity(0); err != nil {
			return nil, err
		}
		t := types.Timestamp
		if name == "CURRENT_TIME" {
			t = types.Time
		}
		return &xtra.FuncExpr{Name: name, T: t}, nil
	case "USER", "SESSION_USER":
		if err := arity(0); err != nil {
			return nil, err
		}
		return &xtra.FuncExpr{Name: "USER", T: types.VarChar(0)}, nil
	}
	return nil, fmt.Errorf("binder: unknown function %s", name)
}

// bindAggregate registers an aggregate computation in the current context.
func (b *Binder) bindAggregate(x *sqlast.FuncCall, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	name := strings.ToUpper(x.Name)
	if ctx.agg == nil {
		return nil, fmt.Errorf("binder: aggregate %s is not allowed here", name)
	}
	if ctx.agg.inAggArg {
		return nil, fmt.Errorf("binder: aggregates cannot be nested")
	}
	def := xtra.AggDef{Func: name, Distinct: x.Distinct, Star: x.Star}
	if x.Star {
		if name != "COUNT" {
			return nil, fmt.Errorf("binder: %s(*) is not valid", name)
		}
	} else {
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("binder: %s takes one argument", name)
		}
		inner := ctx
		inner.agg = &aggContext{
			groupASTs: ctx.agg.groupASTs,
			groups:    ctx.agg.groups,
			inAggArg:  true,
		}
		arg, err := b.bindScalarCtx(x.Args[0], sc, inner)
		if err != nil {
			return nil, err
		}
		def.Arg = arg
	}
	argT := types.BigInt
	if def.Arg != nil {
		argT = def.Arg.Type()
	}
	outT, err := aggResultType(name, argT)
	if err != nil {
		return nil, fmt.Errorf("binder: %v", err)
	}
	// Reuse an identical aggregate definition.
	for _, existing := range ctx.agg.aggs {
		if existing.Func == def.Func && existing.Distinct == def.Distinct && existing.Star == def.Star {
			if (existing.Arg == nil && def.Arg == nil) ||
				(existing.Arg != nil && def.Arg != nil && scalarEqual(existing.Arg, def.Arg)) {
				return &xtra.ColRef{Col: existing.Out}, nil
			}
		}
	}
	def.Out = b.newCol(strings.ToLower(name), outT)
	ctx.agg.aggs = append(ctx.agg.aggs, def)
	return &xtra.ColRef{Col: def.Out}, nil
}

// windowFuncs maps supported window function names to rank-like (true) or
// aggregate-window (false).
var windowFuncs = map[string]bool{
	"RANK": true, "DENSE_RANK": true, "ROW_NUMBER": true,
	"SUM": false, "COUNT": false, "AVG": false, "MIN": false, "MAX": false,
}

// bindWindowFunc binds a window invocation, registering it in the block's
// window collector grouped by specification.
func (b *Binder) bindWindowFunc(x *sqlast.WindowFunc, sc *scope, ctx selCtx) (xtra.Scalar, error) {
	if ctx.windows == nil {
		return nil, fmt.Errorf("binder: window functions are not allowed here")
	}
	name := strings.ToUpper(x.Func.Name)
	rankLike, ok := windowFuncs[name]
	if !ok {
		return nil, fmt.Errorf("binder: unknown window function %s", name)
	}
	// Window operands bind without window context (no nesting), but with the
	// aggregate context: windows evaluate after grouping.
	inner := ctx
	inner.windows = nil

	var partitionBy []xtra.Scalar
	for _, p := range x.Over.PartitionBy {
		e, err := b.bindScalarCtx(p, sc, inner)
		if err != nil {
			return nil, err
		}
		partitionBy = append(partitionBy, e)
	}
	var orderBy []xtra.SortKey
	for _, o := range x.Over.OrderBy {
		e, err := b.bindScalarCtx(o.Expr, sc, inner)
		if err != nil {
			return nil, err
		}
		orderBy = append(orderBy, b.makeSortKey(e, o))
	}
	def := xtra.WindowDef{Name: name, TdForm: x.TdForm}
	var outT types.T
	if rankLike {
		if len(x.Func.Args) != 0 {
			return nil, fmt.Errorf("binder: %s takes no arguments", name)
		}
		if len(orderBy) == 0 {
			return nil, fmt.Errorf("binder: %s requires ORDER BY", name)
		}
		outT = types.BigInt
	} else {
		if x.Func.Star {
			if name != "COUNT" {
				return nil, fmt.Errorf("binder: %s(*) is not valid", name)
			}
			def.Star = true
			outT = types.BigInt
		} else {
			if len(x.Func.Args) != 1 {
				return nil, fmt.Errorf("binder: %s takes one argument", name)
			}
			arg, err := b.bindScalarCtx(x.Func.Args[0], sc, inner)
			if err != nil {
				return nil, err
			}
			def.Args = []xtra.Scalar{arg}
			t, err := aggResultType(name, arg.Type())
			if err != nil {
				return nil, fmt.Errorf("binder: %v", err)
			}
			outT = t
		}
	}
	def.Out = b.newCol(strings.ToLower(name), outT)

	// Attach to an existing group with the same specification.
	for _, g := range ctx.windows.groups {
		if scalarsEqual(g.partitionBy, partitionBy) && sortKeysEqual(g.orderBy, orderBy) {
			g.funcs = append(g.funcs, def)
			return &xtra.ColRef{Col: def.Out}, nil
		}
	}
	ctx.windows.groups = append(ctx.windows.groups, &windowGroup{
		partitionBy: partitionBy, orderBy: orderBy, funcs: []xtra.WindowDef{def},
	})
	return &xtra.ColRef{Col: def.Out}, nil
}
