// Package binder implements the second phase of the paper's Algebrizer
// (§4.2): binding the parser's AST into an XTRA expression. Binding performs
// metadata lookup, name resolution and type derivation, and applies the
// binder-stage Transformation-class rewrites from Table 2: implicit-join
// expansion, chained-projection (named expression) inlining, ordinal GROUP
// BY replacement, DML-on-view redirection, and macro parameter typing.
package binder

import (
	"fmt"
	"strings"

	"hyperq/internal/catalog"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

// Resolver supplies table and view metadata during binding. *catalog.Catalog
// implements it; the engine layers session temporary tables over the shared
// catalog through a chained implementation.
type Resolver interface {
	Table(name string) (*catalog.Table, bool)
	View(name string) (*catalog.View, bool)
}

// Binder binds statements against a catalog. A Binder is single-use per
// statement batch but cheap to construct.
type Binder struct {
	cat     Resolver
	dialect parser.Dialect
	rec     *feature.Recorder
	nextCol xtra.ColumnID
	nextWrk int
	// viewDepth limits view/CTE expansion recursion.
	viewDepth int
	// params supplies values for :name parameters (macro execution).
	params map[string]types.Datum
	// ciCols marks columns declared NOT CASESPECIFIC: the "unsupported
	// column properties" emulation of Table 2 — the property lives in the
	// gateway catalog and is applied when the column is referenced in a
	// comparison, since the target cannot represent it.
	ciCols map[xtra.ColumnID]bool
}

// New returns a binder over the catalog. The dialect selects source-system
// semantics: the Teradata dialect enables the vendor behaviours (implicit
// joins, named expression references, DATE/INT comparison); the ANSI dialect
// rejects them, as the cloud targets would.
func New(cat Resolver, d parser.Dialect, rec *feature.Recorder) *Binder {
	return &Binder{cat: cat, dialect: d, rec: rec, ciCols: map[xtra.ColumnID]bool{}}
}

// SetParams supplies values for named parameters (:name), used when binding
// macro bodies during EXEC emulation.
func (b *Binder) SetParams(p map[string]types.Datum) { b.params = p }

// MaxColumnID reports the highest ColumnID allocated so far, so downstream
// transformations can mint fresh columns.
func (b *Binder) MaxColumnID() xtra.ColumnID { return b.nextCol }

func (b *Binder) newCol(name string, t types.T) xtra.Col {
	b.nextCol++
	return xtra.Col{ID: b.nextCol, Name: name, Type: t}
}

// Bind binds one parsed statement.
func (b *Binder) Bind(stmt sqlast.Statement) (xtra.Statement, error) {
	switch s := stmt.(type) {
	case *sqlast.SelectStmt:
		op, err := b.bindQueryExpr(s.Query, b.globalScope())
		if err != nil {
			return nil, err
		}
		return &xtra.Query{Root: op}, nil
	case *sqlast.InsertStmt:
		return b.bindInsert(s)
	case *sqlast.UpdateStmt:
		return b.bindUpdate(s)
	case *sqlast.DeleteStmt:
		return b.bindDelete(s)
	case *sqlast.CreateTableStmt:
		return b.bindCreateTable(s)
	case *sqlast.DropTableStmt:
		return &xtra.DropTable{Name: s.Name, IfExists: s.IfExists}, nil
	case *sqlast.CreateViewStmt:
		return b.bindCreateView(s)
	case *sqlast.DropViewStmt:
		if _, ok := b.cat.View(s.Name); !ok {
			return nil, fmt.Errorf("binder: view %s does not exist", s.Name)
		}
		return &xtra.DropView{Name: s.Name}, nil
	case *sqlast.CollectStatsStmt:
		// Translation class: eliminated on self-tuning targets (§3.1).
		return &xtra.NoOp{Comment: "COLLECT STATISTICS eliminated"}, nil
	case *sqlast.TxnStmt:
		return &xtra.Txn{Kind: s.Kind}, nil
	case *sqlast.MergeStmt:
		return nil, fmt.Errorf("binder: MERGE requires gateway emulation")
	case *sqlast.CreateMacroStmt, *sqlast.DropMacroStmt, *sqlast.ExecStmt:
		return nil, fmt.Errorf("binder: macros are handled by the gateway")
	case *sqlast.HelpStmt:
		return nil, fmt.Errorf("binder: HELP is handled by the gateway")
	case *sqlast.SetSessionStmt:
		return nil, fmt.Errorf("binder: SET SESSION is handled by the gateway")
	}
	return nil, fmt.Errorf("binder: unsupported statement %T", stmt)
}

// --- scopes ----------------------------------------------------------------

// scopeCol is one name-addressable column.
type scopeCol struct {
	tbl  string // upper-cased correlation name
	name string // upper-cased column name
	col  xtra.Col
}

// cteDef is a bound-on-demand common table expression.
type cteDef struct {
	name      string
	columns   []string
	query     *sqlast.QueryExpr
	recursive bool
	defScope  *scope
	// work is non-nil while binding the recursive branch that may reference
	// this CTE as a work table.
	work *workTable
}

type workTable struct {
	id   int
	cols []xtra.Col
	used bool
}

// scope resolves identifiers during binding.
type scope struct {
	parent *scope
	cols   []scopeCol
	ctes   map[string]*cteDef
	// aliasExprs maps select-list aliases to their AST definitions, enabling
	// Teradata named-expression references (Example 1's SALES_BASE).
	aliasExprs map[string]sqlast.Expr
	// aliasBinding guards against circular alias references.
	aliasBinding map[string]bool
	// binder backlink for implicit-join expansion.
	b *Binder
	// fromActive marks scopes owning a FROM clause; implicit joins attach
	// to the innermost such scope.
	fromActive bool
	// implicitGets accumulates tables pulled in by implicit joins; the
	// select-core binder cross-joins them onto the FROM tree.
	implicitGets []*xtra.Get
	// correlated, when non-nil, is set if resolution crossed this scope into
	// an outer one.
	correlated *bool
}

func (b *Binder) globalScope() *scope {
	return &scope{ctes: map[string]*cteDef{}, b: b}
}

func (s *scope) child() *scope {
	return &scope{parent: s, ctes: map[string]*cteDef{}, b: s.b}
}

func (s *scope) addCol(tbl, name string, col xtra.Col) {
	s.cols = append(s.cols, scopeCol{tbl: strings.ToUpper(tbl), name: strings.ToUpper(name), col: col})
}

func (s *scope) findCTE(name string) *cteDef {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.ctes[strings.ToUpper(name)]; ok {
			return d
		}
	}
	return nil
}

// resolve looks up a column by optional qualifier, walking outer scopes for
// correlation. It reports ambiguity errors within one scope level.
func (s *scope) resolve(qual, name string) (xtra.Col, bool, error) {
	qual = strings.ToUpper(qual)
	name = strings.ToUpper(name)
	outer := false
	for sc := s; sc != nil; sc = sc.parent {
		var found []xtra.Col
		for _, c := range sc.cols {
			if c.name == name && (qual == "" || c.tbl == qual) {
				found = append(found, c.col)
			}
		}
		if len(found) == 1 {
			if outer && sc.correlated != nil {
				*sc.correlated = true
			}
			if outer && s.correlatedFlagUpTo(sc) != nil {
				*s.correlatedFlagUpTo(sc) = true
			}
			return found[0], true, nil
		}
		if len(found) > 1 {
			return xtra.Col{}, false, fmt.Errorf("binder: ambiguous column %s", name)
		}
		outer = true
	}
	return xtra.Col{}, false, nil
}

// correlatedFlagUpTo marks correlation flags on every scope between s
// (exclusive rule: each child scope that crossed an outer boundary).
func (s *scope) correlatedFlagUpTo(target *scope) *bool {
	for sc := s; sc != nil && sc != target; sc = sc.parent {
		if sc.correlated != nil {
			return sc.correlated
		}
	}
	return nil
}

// allCols returns the visible columns of this scope level (not parents),
// optionally filtered by qualifier — used for star expansion.
func (s *scope) allCols(qual string) []scopeCol {
	qual = strings.ToUpper(qual)
	var out []scopeCol
	for _, c := range s.cols {
		if qual == "" || c.tbl == qual {
			out = append(out, c)
		}
	}
	return out
}

// --- DML -------------------------------------------------------------------

func (b *Binder) bindInsert(s *sqlast.InsertStmt) (xtra.Statement, error) {
	tbl, viaView, err := b.resolveDMLTarget(s.Table)
	if err != nil {
		return nil, err
	}
	_ = viaView
	// Determine target ordinals.
	var ordinals []int
	if len(s.Columns) == 0 {
		ordinals = make([]int, len(tbl.Columns))
		for i := range tbl.Columns {
			ordinals[i] = i
		}
	} else {
		for _, c := range s.Columns {
			idx := tbl.ColumnIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("binder: column %s not in table %s", c, tbl.Name)
			}
			ordinals = append(ordinals, idx)
		}
	}
	var input xtra.Op
	if s.Query != nil {
		op, err := b.bindQueryExpr(s.Query, b.globalScope())
		if err != nil {
			return nil, err
		}
		input = op
	} else {
		// VALUES rows.
		var rows [][]xtra.Scalar
		sc := b.globalScope()
		for _, row := range s.Rows {
			if len(row) != len(ordinals) {
				return nil, fmt.Errorf("binder: INSERT row has %d values, want %d", len(row), len(ordinals))
			}
			var exprs []xtra.Scalar
			for _, e := range row {
				se, err := b.bindScalar(e, sc)
				if err != nil {
					return nil, err
				}
				exprs = append(exprs, se)
			}
			rows = append(rows, exprs)
		}
		cols := make([]xtra.Col, len(ordinals))
		for i, o := range ordinals {
			cols[i] = b.newCol(tbl.Columns[o].Name, tbl.Columns[o].Type)
		}
		input = &xtra.Values{Rows: rows, Cols: cols}
	}
	inCols := input.Columns()
	if len(inCols) != len(ordinals) {
		return nil, fmt.Errorf("binder: INSERT source has %d columns, want %d", len(inCols), len(ordinals))
	}
	// Insert implicit casts where the source type differs from the target.
	input, err = b.castColumns(input, ordinals, tbl)
	if err != nil {
		return nil, err
	}
	return &xtra.Insert{Table: tbl.Name, Ordinals: ordinals, Input: input}, nil
}

// castColumns wraps input in a Project adding casts to the target column
// types where needed.
func (b *Binder) castColumns(input xtra.Op, ordinals []int, tbl *catalog.Table) (xtra.Op, error) {
	inCols := input.Columns()
	need := false
	for i, o := range ordinals {
		if !inCols[i].Type.Equal(tbl.Columns[o].Type) && inCols[i].Type.Kind != types.KindNull {
			need = true
		}
		if !strings.EqualFold(inCols[i].Name, tbl.Columns[o].Name) {
			// The serializer emits the INSERT column list from the input
			// column names; align them with the target columns.
			need = true
		}
	}
	if !need {
		return input, nil
	}
	proj := &xtra.Project{Input: input}
	for i, o := range ordinals {
		want := tbl.Columns[o].Type
		var e xtra.Scalar = &xtra.ColRef{Col: inCols[i]}
		if !inCols[i].Type.Equal(want) && inCols[i].Type.Kind != types.KindNull {
			if !coercible(inCols[i].Type, want) {
				return nil, fmt.Errorf("binder: cannot assign %s to column %s %s", inCols[i].Type, tbl.Columns[o].Name, want)
			}
			e = &xtra.CastExpr{X: e, To: want, Implicit: true}
		}
		proj.Exprs = append(proj.Exprs, xtra.NamedScalar{Col: b.newCol(tbl.Columns[o].Name, want), Expr: e})
	}
	return proj, nil
}

func coercible(from, to types.T) bool {
	if from.Kind == types.KindNull {
		return true
	}
	if from.IsNumeric() && to.IsNumeric() {
		return true
	}
	if from.IsString() && (to.IsString() || to.IsTemporal()) {
		return true
	}
	if from.IsTemporal() && to.IsTemporal() {
		return true
	}
	if from.IsString() && to.Kind == types.KindBytes {
		return true
	}
	return from.Kind == to.Kind
}

// resolveDMLTarget resolves a DML target table, applying the DML-on-view
// emulation rewrite (Table 2) when the name is an updatable view.
func (b *Binder) resolveDMLTarget(name string) (*catalog.Table, bool, error) {
	if t, ok := b.cat.Table(name); ok {
		return t, false, nil
	}
	if v, ok := b.cat.View(name); ok {
		if !v.Updatable || v.BaseTable == "" {
			return nil, false, fmt.Errorf("binder: view %s is not updatable", name)
		}
		b.rec.Record(feature.DmlOnView)
		base, ok := b.cat.Table(v.BaseTable)
		if !ok {
			return nil, false, fmt.Errorf("binder: view %s references missing table %s", name, v.BaseTable)
		}
		return base, true, nil
	}
	return nil, false, fmt.Errorf("binder: table %s does not exist", name)
}

func (b *Binder) bindUpdate(s *sqlast.UpdateStmt) (xtra.Statement, error) {
	tbl, _, err := b.resolveDMLTarget(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	sc := b.globalScope()
	cols := make([]xtra.Col, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = b.newCol(c.Name, c.Type)
		sc.addCol(alias, c.Name, cols[i])
	}
	// Teradata UPDATE ... FROM: bind the FROM relations in a child scope and
	// rewrite predicate/assignments into correlated subqueries over them, so
	// the execution model stays per-target-row.
	if len(s.From) > 0 {
		return b.bindUpdateFrom(s, tbl, cols, sc)
	}
	upd := &xtra.Update{Table: tbl.Name, Cols: cols}
	for _, a := range s.Set {
		idx := tbl.ColumnIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("binder: column %s not in table %s", a.Column, tbl.Name)
		}
		e, err := b.bindScalar(a.Value, sc)
		if err != nil {
			return nil, err
		}
		e, err = b.implicitCast(e, tbl.Columns[idx].Type)
		if err != nil {
			return nil, fmt.Errorf("binder: SET %s: %v", a.Column, err)
		}
		upd.Assigns = append(upd.Assigns, xtra.ColAssign{Ordinal: idx, Expr: e})
	}
	if s.Where != nil {
		p, err := b.bindPredicate(s.Where, sc)
		if err != nil {
			return nil, err
		}
		upd.Pred = p
	}
	return upd, nil
}

// bindUpdateFrom handles the vendor UPDATE t FROM s ... form by building,
// for each assignment, a scalar subquery over the FROM relations, and an
// EXISTS predicate for the row filter.
func (b *Binder) bindUpdateFrom(s *sqlast.UpdateStmt, tbl *catalog.Table, cols []xtra.Col, outer *scope) (xtra.Statement, error) {
	buildFrom := func() (xtra.Op, *scope, error) {
		sc := outer.child()
		op, err := b.bindFromList(s.From, sc)
		if err != nil {
			return nil, nil, err
		}
		return op, sc, nil
	}
	upd := &xtra.Update{Table: tbl.Name, Cols: cols}
	for _, a := range s.Set {
		idx := tbl.ColumnIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("binder: column %s not in table %s", a.Column, tbl.Name)
		}
		from, sc, err := buildFrom()
		if err != nil {
			return nil, err
		}
		val, err := b.bindScalar(a.Value, sc)
		if err != nil {
			return nil, err
		}
		val, err = b.implicitCast(val, tbl.Columns[idx].Type)
		if err != nil {
			return nil, fmt.Errorf("binder: SET %s: %v", a.Column, err)
		}
		var inner xtra.Op = from
		if s.Where != nil {
			pred, err := b.bindPredicate(s.Where, sc)
			if err != nil {
				return nil, err
			}
			inner = &xtra.Select{Input: inner, Pred: pred}
		}
		proj := &xtra.Project{Input: inner, Exprs: []xtra.NamedScalar{
			{Col: b.newCol(a.Column, tbl.Columns[idx].Type), Expr: val},
		}}
		upd.Assigns = append(upd.Assigns, xtra.ColAssign{
			Ordinal: idx,
			Expr:    &xtra.ScalarSubquery{Input: proj, T: tbl.Columns[idx].Type},
		})
	}
	from, sc, err := buildFrom()
	if err != nil {
		return nil, err
	}
	var inner xtra.Op = from
	if s.Where != nil {
		pred, err := b.bindPredicate(s.Where, sc)
		if err != nil {
			return nil, err
		}
		inner = &xtra.Select{Input: inner, Pred: pred}
	}
	upd.Pred = &xtra.ExistsExpr{Input: inner}
	return upd, nil
}

func (b *Binder) bindDelete(s *sqlast.DeleteStmt) (xtra.Statement, error) {
	tbl, _, err := b.resolveDMLTarget(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	sc := b.globalScope()
	cols := make([]xtra.Col, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = b.newCol(c.Name, c.Type)
		sc.addCol(alias, c.Name, cols[i])
	}
	del := &xtra.Delete{Table: tbl.Name, Cols: cols}
	if s.Where != nil {
		p, err := b.bindPredicate(s.Where, sc)
		if err != nil {
			return nil, err
		}
		del.Pred = p
	}
	return del, nil
}

// --- DDL -------------------------------------------------------------------

func (b *Binder) bindCreateTable(s *sqlast.CreateTableStmt) (xtra.Statement, error) {
	def := &catalog.Table{Name: s.Name, Set: s.Set, PrimaryIndex: s.PrimaryIndex}
	switch {
	case s.Volatile:
		def.Kind = catalog.KindVolatile
	case s.GlobalTemporary:
		def.Kind = catalog.KindGlobalTemporary
	}
	var input xtra.Op
	if s.AsQuery != nil {
		op, err := b.bindQueryExpr(s.AsQuery, b.globalScope())
		if err != nil {
			return nil, err
		}
		for _, c := range op.Columns() {
			if c.Name == "" {
				return nil, fmt.Errorf("binder: CREATE TABLE AS requires named output columns")
			}
			def.Columns = append(def.Columns, catalog.Column{Name: c.Name, Type: c.Type})
		}
		if s.WithData {
			input = op
		}
	} else {
		for _, cd := range s.Columns {
			t, err := cd.Type.Resolve()
			if err != nil {
				return nil, fmt.Errorf("binder: column %s: %v", cd.Name, err)
			}
			col := catalog.Column{Name: cd.Name, Type: t, NotNull: cd.NotNull, CaseInsensitive: cd.CaseInsensitive}
			if cd.Default != nil {
				col.Default = defaultText(cd.Default)
			}
			def.Columns = append(def.Columns, col)
		}
	}
	return &xtra.CreateTable{Def: def, Input: input, IfNotExists: s.IfNotExists}, nil
}

// defaultText renders a simple default expression back to text for catalog
// storage.
func defaultText(e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.Const:
		return x.Val.SQLLiteral()
	case *sqlast.FuncCall:
		return x.Name
	case *sqlast.UnaryExpr:
		if x.Op == sqlast.UnaryNeg {
			return "-" + defaultText(x.X)
		}
	}
	return "DEFAULT"
}

func (b *Binder) bindCreateView(s *sqlast.CreateViewStmt) (xtra.Statement, error) {
	// Bind the definition to validate it and derive updatability.
	op, err := b.bindQueryExpr(s.Query, b.globalScope())
	if err != nil {
		return nil, fmt.Errorf("binder: view %s: %v", s.Name, err)
	}
	if len(s.Columns) > 0 && len(s.Columns) != len(op.Columns()) {
		return nil, fmt.Errorf("binder: view %s column list has %d names, query yields %d", s.Name, len(s.Columns), len(op.Columns()))
	}
	v := &catalog.View{Name: s.Name, Columns: s.Columns, SQL: s.SQL}
	v.Updatable, v.BaseTable = analyzeUpdatable(s.Query)
	return &xtra.CreateView{Def: v, Replace: s.Replace}, nil
}

// analyzeUpdatable reports whether the view is a simple projection of one
// base table (eligible for the DML-on-view emulation).
func analyzeUpdatable(q *sqlast.QueryExpr) (bool, string) {
	if q.With != nil || len(q.OrderBy) > 0 {
		return false, ""
	}
	core, ok := q.Body.(*sqlast.SelectCore)
	if !ok || core.Distinct || core.GroupBy != nil || core.Having != nil ||
		core.Qualify != nil || core.Top != nil || len(core.From) != 1 {
		return false, ""
	}
	tr, ok := core.From[0].(*sqlast.TableRef)
	if !ok {
		return false, ""
	}
	for _, item := range core.Items {
		switch item.Expr.(type) {
		case *sqlast.Ident, *sqlast.Star:
		default:
			return false, ""
		}
	}
	return true, tr.Name
}
