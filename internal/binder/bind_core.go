package binder

import (
	"fmt"
	"strings"

	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/xtra"
)

// aggContext carries the grouping state of an aggregate query block.
type aggContext struct {
	groupASTs []sqlast.Expr
	groups    []xtra.GroupCol
	aggs      []xtra.AggDef
	// inAggArg guards against nested aggregates.
	inAggArg bool
}

// findGroup returns the output column of a grouping expression structurally
// equal to e.
func (a *aggContext) findGroup(e sqlast.Expr) (xtra.Col, bool) {
	for i, g := range a.groupASTs {
		if astEqual(g, e) {
			return a.groups[i].Out, true
		}
	}
	return xtra.Col{}, false
}

// windowGroup accumulates window functions sharing one specification.
type windowGroup struct {
	partitionBy []xtra.Scalar
	orderBy     []xtra.SortKey
	funcs       []xtra.WindowDef
}

// windowCollector gathers the window computations of a block.
type windowCollector struct {
	groups []*windowGroup
}

// selCtx is the binding context for select-list/HAVING/QUALIFY/ORDER BY
// expressions of one block.
type selCtx struct {
	agg     *aggContext
	windows *windowCollector
}

// bindSelectCore binds one SELECT block into an operator tree.
func (b *Binder) bindSelectCore(core *sqlast.SelectCore, outer *scope, orderBy []sqlast.OrderItem, limit *sqlast.TopClause) (xtra.Op, error) {
	top := core.Top
	if limit != nil {
		if top != nil {
			return nil, fmt.Errorf("binder: both TOP and LIMIT specified")
		}
		top = limit
	}
	sc := outer.child()
	sc.fromActive = true
	var op xtra.Op
	var err error
	if len(core.From) > 0 {
		op, err = b.bindFromList(core.From, sc)
		if err != nil {
			return nil, err
		}
	} else {
		// SELECT without FROM: one empty row.
		op = &xtra.Values{Rows: [][]xtra.Scalar{{}}}
	}

	// Register select-list aliases for named-expression references before
	// binding any clause (Teradata allows WHERE to use them too).
	if b.dialect == parser.Teradata {
		sc.aliasExprs = map[string]sqlast.Expr{}
		sc.aliasBinding = map[string]bool{}
		for _, item := range core.Items {
			if item.Alias != "" {
				sc.aliasExprs[strings.ToUpper(item.Alias)] = item.Expr
			}
		}
	}

	// WHERE binds pre-aggregation, windows not allowed.
	var wherePred xtra.Scalar
	if core.Where != nil {
		wherePred, err = b.bindPredicateCtx(core.Where, sc, selCtx{})
		if err != nil {
			return nil, err
		}
	}

	// Expand stars in the select list.
	items, err := b.expandStars(core.Items, sc)
	if err != nil {
		return nil, err
	}

	// Decide whether this is an aggregate query.
	isAgg := len(core.GroupBy) > 0 || core.GroupingSets != nil || core.Having != nil
	if !isAgg {
		for _, it := range items {
			if astHasAggregate(it.Expr) {
				isAgg = true
				break
			}
		}
	}
	if !isAgg && core.Qualify != nil && astHasAggregate(core.Qualify) {
		isAgg = true
	}
	if !isAgg {
		for _, o := range orderBy {
			if astHasAggregate(o.Expr) {
				isAgg = true
				break
			}
		}
	}

	ctx := selCtx{windows: &windowCollector{}}
	if isAgg {
		actx := &aggContext{}
		for _, g := range core.GroupBy {
			gast := g
			// Ordinal GROUP BY: replace column positions by the
			// corresponding select-list expression (Table 2).
			if c, ok := g.(*sqlast.Const); ok && c.Val.Type().IsNumeric() {
				n := int(c.Val.AsInt())
				if n < 1 || n > len(items) {
					return nil, fmt.Errorf("binder: GROUP BY position %d out of range", n)
				}
				if b.dialect != parser.Teradata {
					return nil, fmt.Errorf("binder: ordinal GROUP BY is not portable SQL")
				}
				b.rec.Record(feature.OrdinalGroupBy)
				gast = items[n-1].Expr
			}
			ge, err := b.bindScalarCtx(gast, sc, selCtx{})
			if err != nil {
				return nil, err
			}
			name := exprName(gast)
			actx.groupASTs = append(actx.groupASTs, gast)
			actx.groups = append(actx.groups, xtra.GroupCol{Out: b.newCol(name, ge.Type()), Expr: ge})
		}
		ctx.agg = actx
	}

	// Bind select items (registers aggregates and windows).
	type boundItem struct {
		name string
		expr xtra.Scalar
	}
	var bound []boundItem
	for _, it := range items {
		e, err := b.bindScalarCtx(it.Expr, sc, ctx)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		bound = append(bound, boundItem{name: name, expr: e})
	}

	// HAVING binds in the aggregate context (no window functions).
	var havingPred xtra.Scalar
	if core.Having != nil {
		havingPred, err = b.bindPredicateCtx(core.Having, sc, selCtx{agg: ctx.agg})
		if err != nil {
			return nil, err
		}
	}

	// QUALIFY binds with windows enabled.
	var qualifyPred xtra.Scalar
	if core.Qualify != nil {
		qualifyPred, err = b.bindPredicateCtx(core.Qualify, sc, ctx)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY keys: output alias > ordinal > source expression.
	type orderKey struct {
		expr   xtra.Scalar
		item   sqlast.OrderItem
		outIdx int // index into bound items, or -1
	}
	var oKeys []orderKey
	for _, item := range orderBy {
		k := orderKey{item: item, outIdx: -1}
		if id, ok := item.Expr.(*sqlast.Ident); ok && id.Qualifier() == "" {
			for i, bi := range bound {
				if strings.EqualFold(bi.name, id.Name()) {
					k.outIdx = i
					break
				}
			}
		}
		if k.outIdx < 0 {
			if c, ok := item.Expr.(*sqlast.Const); ok && c.Val.Type().IsNumeric() {
				n := int(c.Val.AsInt())
				if n >= 1 && n <= len(bound) {
					k.outIdx = n - 1
					b.rec.Record(feature.OrdinalGroupBy)
				}
			}
		}
		if k.outIdx < 0 {
			e, err := b.bindScalarCtx(item.Expr, sc, ctx)
			if err != nil {
				return nil, err
			}
			k.expr = e
		}
		oKeys = append(oKeys, k)
	}

	// Implicit joins discovered while binding expressions extend the FROM
	// tree ("Expand FROM clause with referenced tables", Table 2).
	for _, g := range sc.implicitGets {
		if op == nil {
			op = g
			continue
		}
		op = &xtra.Join{Kind: xtra.JoinCross, L: op, R: g}
	}

	// Assemble the tree: from -> where -> agg -> having -> windows ->
	// qualify -> project -> distinct -> sort -> limit -> final project.
	if wherePred != nil {
		op = &xtra.Select{Input: op, Pred: wherePred}
	}
	if ctx.agg != nil {
		op = &xtra.Agg{Input: op, Groups: ctx.agg.groups, Aggs: ctx.agg.aggs, GroupingSets: core.GroupingSets}
	}
	if havingPred != nil {
		op = &xtra.Select{Input: op, Pred: havingPred}
	}
	for _, wg := range ctx.windows.groups {
		op = &xtra.Window{Input: op, PartitionBy: wg.partitionBy, OrderBy: wg.orderBy, Funcs: wg.funcs}
	}
	if qualifyPred != nil {
		op = &xtra.Select{Input: op, Pred: qualifyPred}
	}

	// Wide projection: visible items plus hidden ORDER BY keys.
	proj := &xtra.Project{Input: op}
	visible := make([]xtra.Col, len(bound))
	for i, bi := range bound {
		col := b.newCol(bi.name, bi.expr.Type())
		visible[i] = col
		proj.Exprs = append(proj.Exprs, xtra.NamedScalar{Col: col, Expr: bi.expr})
	}
	var sortKeys []xtra.SortKey
	hidden := 0
	for _, k := range oKeys {
		var ref xtra.Scalar
		if k.outIdx >= 0 {
			ref = &xtra.ColRef{Col: visible[k.outIdx]}
		} else {
			if core.Distinct {
				return nil, fmt.Errorf("binder: ORDER BY expression must appear in the select list with DISTINCT")
			}
			col := b.newCol(fmt.Sprintf("$orderkey%d", hidden+1), k.expr.Type())
			hidden++
			proj.Exprs = append(proj.Exprs, xtra.NamedScalar{Col: col, Expr: k.expr})
			ref = &xtra.ColRef{Col: col}
		}
		sortKeys = append(sortKeys, b.makeSortKey(ref, k.item))
	}
	op = proj

	if core.Distinct {
		groups := make([]xtra.GroupCol, len(visible))
		for i, c := range visible {
			groups[i] = xtra.GroupCol{Out: c, Expr: &xtra.ColRef{Col: c}}
		}
		op = &xtra.Agg{Input: op, Groups: groups}
	}
	if len(sortKeys) > 0 {
		op = &xtra.Sort{Input: op, Keys: sortKeys}
	}
	if top != nil {
		if top.Percent {
			return nil, fmt.Errorf("binder: TOP n PERCENT is not supported")
		}
		if top.WithTies && len(sortKeys) == 0 {
			return nil, fmt.Errorf("binder: TOP WITH TIES requires ORDER BY")
		}
		op = &xtra.Limit{Input: op, N: top.N, WithTies: top.WithTies, Keys: sortKeys}
	}
	if hidden > 0 {
		final := &xtra.Project{Input: op}
		for _, c := range visible {
			final.Exprs = append(final.Exprs, xtra.NamedScalar{Col: c, Expr: &xtra.ColRef{Col: c}})
		}
		op = final
	}
	return op, nil
}

// expandStars replaces * and t.* select items with explicit columns.
func (b *Binder) expandStars(items []sqlast.SelectItem, sc *scope) ([]sqlast.SelectItem, error) {
	var out []sqlast.SelectItem
	for _, it := range items {
		star, ok := it.Expr.(*sqlast.Star)
		if !ok {
			out = append(out, it)
			continue
		}
		cols := sc.allCols(star.Table)
		if len(cols) == 0 {
			if star.Table != "" {
				return nil, fmt.Errorf("binder: unknown table %s in %s.*", star.Table, star.Table)
			}
			return nil, fmt.Errorf("binder: SELECT * with empty FROM")
		}
		for _, c := range cols {
			out = append(out, sqlast.SelectItem{
				Expr:  &sqlast.Ident{Parts: []string{c.tbl, c.name}},
				Alias: c.col.Name,
			})
		}
	}
	return out, nil
}

// exprName derives an output column name from an expression AST.
func exprName(e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.Ident:
		return x.Name()
	case *sqlast.FuncCall:
		return x.Name
	case *sqlast.WindowFunc:
		return x.Func.Name
	case *sqlast.CastExpr:
		return exprName(x.X)
	case *sqlast.ExtractExpr:
		return x.Field
	}
	return ""
}

// aggregate function names usable in non-window position.
var aggFuncs = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

// astHasAggregate reports whether the expression contains a non-window
// aggregate invocation.
func astHasAggregate(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch f := x.(type) {
		case *sqlast.WindowFunc:
			// Window arguments may contain aggregates; descend selectively.
			for _, a := range f.Func.Args {
				if astHasAggregate(a) {
					found = true
				}
			}
			for _, p := range f.Over.PartitionBy {
				if astHasAggregate(p) {
					found = true
				}
			}
			for _, o := range f.Over.OrderBy {
				if astHasAggregate(o.Expr) {
					found = true
				}
			}
			return false
		case *sqlast.FuncCall:
			if aggFuncs[f.Name] {
				found = true
				return false
			}
		case *sqlast.Subquery, *sqlast.ExistsExpr, *sqlast.InExpr, *sqlast.QuantifiedCmp:
			return false
		}
		return true
	})
	return found
}

// astEqual reports structural equality of two expression ASTs (used for
// GROUP BY matching).
func astEqual(a, b sqlast.Expr) bool {
	switch x := a.(type) {
	case *sqlast.Ident:
		y, ok := b.(*sqlast.Ident)
		if !ok {
			return false
		}
		// Compare by trailing name and, when both qualified, qualifier.
		if !strings.EqualFold(x.Name(), y.Name()) {
			return false
		}
		if x.Qualifier() != "" && y.Qualifier() != "" {
			return strings.EqualFold(x.Qualifier(), y.Qualifier())
		}
		return true
	case *sqlast.Const:
		y, ok := b.(*sqlast.Const)
		return ok && x.Val.Equal(y.Val)
	case *sqlast.BinExpr:
		y, ok := b.(*sqlast.BinExpr)
		return ok && x.Op == y.Op && astEqual(x.L, y.L) && astEqual(x.R, y.R)
	case *sqlast.UnaryExpr:
		y, ok := b.(*sqlast.UnaryExpr)
		return ok && x.Op == y.Op && astEqual(x.X, y.X)
	case *sqlast.FuncCall:
		y, ok := b.(*sqlast.FuncCall)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) || x.Distinct != y.Distinct || x.Star != y.Star {
			return false
		}
		for i := range x.Args {
			if !astEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *sqlast.CastExpr:
		y, ok := b.(*sqlast.CastExpr)
		return ok && x.To.Name == y.To.Name && astEqual(x.X, y.X)
	case *sqlast.ExtractExpr:
		y, ok := b.(*sqlast.ExtractExpr)
		return ok && strings.EqualFold(x.Field, y.Field) && astEqual(x.X, y.X)
	}
	return false
}

// scalarEqual reports structural equality of bound scalars (used to share
// window specifications).
func scalarEqual(a, b xtra.Scalar) bool { return xtra.ScalarEqual(a, b) }

func sortKeysEqual(a, b []xtra.SortKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Desc != b[i].Desc || a[i].NullsFirst != b[i].NullsFirst || !scalarEqual(a[i].Expr, b[i].Expr) {
			return false
		}
	}
	return true
}

func scalarsEqual(a, b []xtra.Scalar) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !scalarEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
