package binder

import (
	"fmt"
	"strings"

	"hyperq/internal/catalog"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
	"hyperq/internal/xtra"
)

const maxViewDepth = 16

// bindQueryExpr binds a full query expression within the given outer scope
// (used for correlation).
func (b *Binder) bindQueryExpr(q *sqlast.QueryExpr, outer *scope) (xtra.Op, error) {
	sc := outer.child()
	if q.With != nil {
		for i := range q.With.CTEs {
			cte := q.With.CTEs[i]
			def := &cteDef{name: cte.Name, columns: cte.Columns, query: cte.Query}
			if q.With.Recursive {
				def.recursive = true
			}
			sc.ctes[strings.ToUpper(cte.Name)] = def
			def.defScope = sc
		}
	}
	return b.bindQueryBody(q.Body, sc, q.OrderBy, q.Limit)
}

func (b *Binder) bindQueryBody(body sqlast.QueryBody, sc *scope, orderBy []sqlast.OrderItem, limit *sqlast.TopClause) (xtra.Op, error) {
	switch t := body.(type) {
	case *sqlast.SelectCore:
		return b.bindSelectCore(t, sc, orderBy, limit)
	case *sqlast.SetOpBody:
		op, err := b.bindSetOp(t, sc)
		if err != nil {
			return nil, err
		}
		return b.applyOutputOrderBy(op, orderBy, limit)
	case *sqlast.QueryExpr:
		op, err := b.bindQueryExpr(t, sc)
		if err != nil {
			return nil, err
		}
		return b.applyOutputOrderBy(op, orderBy, limit)
	}
	return nil, fmt.Errorf("binder: unknown query body %T", body)
}

// applyOutputOrderBy sorts a set-operation result; keys may reference output
// column names or ordinals only.
func (b *Binder) applyOutputOrderBy(op xtra.Op, orderBy []sqlast.OrderItem, limit *sqlast.TopClause) (xtra.Op, error) {
	if len(orderBy) == 0 && limit == nil {
		return op, nil
	}
	cols := op.Columns()
	var keys []xtra.SortKey
	for _, item := range orderBy {
		var col *xtra.Col
		switch e := item.Expr.(type) {
		case *sqlast.Ident:
			for i := range cols {
				if strings.EqualFold(cols[i].Name, e.Name()) {
					col = &cols[i]
					break
				}
			}
		case *sqlast.Const:
			if e.Val.Type().IsNumeric() {
				n := int(e.Val.AsInt())
				if n >= 1 && n <= len(cols) {
					col = &cols[n-1]
					b.rec.Record(feature.OrdinalGroupBy)
				}
			}
		}
		if col == nil {
			return nil, fmt.Errorf("binder: ORDER BY after set operation must name an output column")
		}
		keys = append(keys, b.makeSortKey(&xtra.ColRef{Col: *col}, item))
	}
	if len(keys) > 0 {
		op = &xtra.Sort{Input: op, Keys: keys}
	}
	if limit != nil {
		if limit.WithTies && len(keys) == 0 {
			return nil, fmt.Errorf("binder: FETCH FIRST WITH TIES requires ORDER BY")
		}
		op = &xtra.Limit{Input: op, N: limit.N, WithTies: limit.WithTies, Keys: keys}
	}
	return op, nil
}

// makeSortKey resolves null placement: explicit NULLS FIRST/LAST wins;
// otherwise the source-system default applies (Teradata sorts NULLs low:
// first ascending, last descending — one of the silent semantic differences
// §2.1 warns about).
func (b *Binder) makeSortKey(e xtra.Scalar, item sqlast.OrderItem) xtra.SortKey {
	k := xtra.SortKey{Expr: e, Desc: item.Desc}
	if item.NullsFirst != nil {
		k.NullsFirst = *item.NullsFirst
	} else {
		k.NullsFirst = !item.Desc
	}
	return k
}

func (b *Binder) bindSetOp(s *sqlast.SetOpBody, sc *scope) (xtra.Op, error) {
	l, err := b.bindQueryBody(s.L, sc, nil, nil)
	if err != nil {
		return nil, err
	}
	r, err := b.bindQueryBody(s.R, sc, nil, nil)
	if err != nil {
		return nil, err
	}
	lc, rc := l.Columns(), r.Columns()
	if len(lc) != len(rc) {
		return nil, fmt.Errorf("binder: set operands have %d vs %d columns", len(lc), len(rc))
	}
	outCols := make([]xtra.Col, len(lc))
	var lCasts, rCasts []types.T
	needL, needR := false, false
	for i := range lc {
		super, err := types.CommonSupertype(lc[i].Type, rc[i].Type)
		if err != nil {
			return nil, fmt.Errorf("binder: set operation column %d: %v", i+1, err)
		}
		outCols[i] = b.newCol(lc[i].Name, super)
		lCasts = append(lCasts, super)
		rCasts = append(rCasts, super)
		if !lc[i].Type.Equal(super) && lc[i].Type.Kind != types.KindNull {
			needL = true
		}
		if !rc[i].Type.Equal(super) && rc[i].Type.Kind != types.KindNull {
			needR = true
		}
	}
	if needL {
		l = b.castProject(l, lCasts)
	}
	if needR {
		r = b.castProject(r, rCasts)
	}
	kind := map[sqlast.SetOp]xtra.SetOpKind{
		sqlast.SetUnion:     xtra.SetUnion,
		sqlast.SetIntersect: xtra.SetIntersect,
		sqlast.SetExcept:    xtra.SetExcept,
	}[s.Op]
	return &xtra.SetOp{Kind: kind, All: s.All, L: l, R: r, Cols: outCols}, nil
}

func (b *Binder) castProject(op xtra.Op, to []types.T) xtra.Op {
	cols := op.Columns()
	p := &xtra.Project{Input: op}
	for i, c := range cols {
		var e xtra.Scalar = &xtra.ColRef{Col: c}
		if !c.Type.Equal(to[i]) && c.Type.Kind != types.KindNull {
			e = &xtra.CastExpr{X: e, To: to[i], Implicit: true}
		}
		p.Exprs = append(p.Exprs, xtra.NamedScalar{Col: b.newCol(c.Name, to[i]), Expr: e})
	}
	return p
}

// --- FROM clause -----------------------------------------------------------

// bindFromList binds a comma list of table expressions as cross joins,
// registering columns into sc.
func (b *Binder) bindFromList(list []sqlast.TableExpr, sc *scope) (xtra.Op, error) {
	var op xtra.Op
	for _, te := range list {
		o, err := b.bindTableExpr(te, sc)
		if err != nil {
			return nil, err
		}
		if op == nil {
			op = o
		} else {
			op = &xtra.Join{Kind: xtra.JoinCross, L: op, R: o}
		}
	}
	return op, nil
}

func (b *Binder) bindTableExpr(te sqlast.TableExpr, sc *scope) (xtra.Op, error) {
	switch t := te.(type) {
	case *sqlast.TableRef:
		return b.bindTableRef(t, sc)
	case *sqlast.DerivedTable:
		defScope := sc.parent
		if defScope == nil {
			defScope = b.globalScope()
		}
		op, err := b.bindQueryExpr(t.Query, defScope)
		if err != nil {
			return nil, err
		}
		cols := op.Columns()
		names := make([]string, len(cols))
		for i, c := range cols {
			names[i] = c.Name
		}
		if len(t.ColAliases) > 0 {
			if len(t.ColAliases) != len(cols) {
				return nil, fmt.Errorf("binder: derived table %s alias list has %d names, query yields %d", t.Alias, len(t.ColAliases), len(cols))
			}
			names = t.ColAliases
		}
		for i, c := range cols {
			sc.addCol(t.Alias, names[i], xtra.Col{ID: c.ID, Name: names[i], Type: c.Type})
		}
		return op, nil
	case *sqlast.JoinExpr:
		l, err := b.bindTableExpr(t.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindTableExpr(t.R, sc)
		if err != nil {
			return nil, err
		}
		kind := map[sqlast.JoinKind]xtra.JoinKind{
			sqlast.JoinInner: xtra.JoinInner,
			sqlast.JoinLeft:  xtra.JoinLeft,
			sqlast.JoinRight: xtra.JoinRight,
			sqlast.JoinFull:  xtra.JoinFull,
			sqlast.JoinCross: xtra.JoinCross,
		}[t.Kind]
		j := &xtra.Join{Kind: kind, L: l, R: r}
		if t.On != nil {
			pred, err := b.bindPredicate(t.On, sc)
			if err != nil {
				return nil, err
			}
			j.Pred = pred
		}
		return j, nil
	}
	return nil, fmt.Errorf("binder: unknown table expression %T", te)
}

func (b *Binder) bindTableRef(t *sqlast.TableRef, sc *scope) (xtra.Op, error) {
	alias := t.Alias
	if alias == "" {
		alias = t.Name
	}
	// CTE?
	if def := sc.findCTE(t.Name); def != nil {
		op, cols, err := b.bindCTERef(def)
		if err != nil {
			return nil, err
		}
		names := colNames(cols)
		if len(t.ColAliases) > 0 {
			if len(t.ColAliases) != len(cols) {
				return nil, fmt.Errorf("binder: alias list length mismatch for %s", t.Name)
			}
			names = t.ColAliases
		}
		for i, c := range cols {
			sc.addCol(alias, names[i], xtra.Col{ID: c.ID, Name: names[i], Type: c.Type})
		}
		return op, nil
	}
	// Base table?
	if tbl, ok := b.cat.Table(t.Name); ok {
		return b.makeGet(tbl, alias, t.ColAliases, sc)
	}
	// View?
	if v, ok := b.cat.View(t.Name); ok {
		return b.bindViewRef(v, alias, t.ColAliases, sc)
	}
	return nil, fmt.Errorf("binder: table %s does not exist", t.Name)
}

func (b *Binder) makeGet(tbl *catalog.Table, alias string, colAliases []string, sc *scope) (xtra.Op, error) {
	g := &xtra.Get{Table: tbl.Name, Alias: alias}
	names := make([]string, len(tbl.Columns))
	for i, c := range tbl.Columns {
		names[i] = c.Name
	}
	if len(colAliases) > 0 {
		if len(colAliases) != len(tbl.Columns) {
			return nil, fmt.Errorf("binder: alias list for %s has %d names, table has %d columns", tbl.Name, len(colAliases), len(tbl.Columns))
		}
		names = colAliases
	}
	for i, c := range tbl.Columns {
		col := b.newCol(names[i], c.Type)
		if c.CaseInsensitive {
			b.ciCols[col.ID] = true
		}
		g.Cols = append(g.Cols, col)
		sc.addCol(alias, names[i], col)
	}
	return g, nil
}

func (b *Binder) bindViewRef(v *catalog.View, alias string, colAliases []string, sc *scope) (xtra.Op, error) {
	if b.viewDepth >= maxViewDepth {
		return nil, fmt.Errorf("binder: view nesting exceeds %d (circular definition?)", maxViewDepth)
	}
	b.viewDepth++
	defer func() { b.viewDepth-- }()
	stmts, err := parser.Parse(v.SQL, b.dialect, nil)
	if err != nil {
		return nil, fmt.Errorf("binder: view %s definition: %v", v.Name, err)
	}
	sel, ok := stmts[0].(*sqlast.SelectStmt)
	if !ok || len(stmts) != 1 {
		return nil, fmt.Errorf("binder: view %s definition is not a query", v.Name)
	}
	op, err := b.bindQueryExpr(sel.Query, b.globalScope())
	if err != nil {
		return nil, fmt.Errorf("binder: view %s: %v", v.Name, err)
	}
	cols := op.Columns()
	names := colNames(cols)
	if len(v.Columns) > 0 {
		if len(v.Columns) != len(cols) {
			return nil, fmt.Errorf("binder: view %s column list mismatch", v.Name)
		}
		names = v.Columns
	}
	if len(colAliases) > 0 {
		if len(colAliases) != len(cols) {
			return nil, fmt.Errorf("binder: alias list length mismatch for view %s", v.Name)
		}
		names = colAliases
	}
	for i, c := range cols {
		sc.addCol(alias, names[i], xtra.Col{ID: c.ID, Name: names[i], Type: c.Type})
	}
	return op, nil
}

func colNames(cols []xtra.Col) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// bindCTERef binds a (possibly recursive) CTE reference, producing a fresh
// operator tree per reference.
func (b *Binder) bindCTERef(def *cteDef) (xtra.Op, []xtra.Col, error) {
	// Inside the recursive branch, references to the CTE read the work table.
	if def.work != nil {
		ws := &xtra.WorkScan{Name: def.name, WorkID: def.work.id}
		for _, c := range def.work.cols {
			ws.Cols = append(ws.Cols, b.newCol(c.Name, c.Type))
		}
		def.work.used = true
		return ws, ws.Cols, nil
	}
	if b.viewDepth >= maxViewDepth {
		return nil, nil, fmt.Errorf("binder: CTE nesting exceeds %d", maxViewDepth)
	}
	b.viewDepth++
	defer func() { b.viewDepth-- }()

	defScope := def.defScope
	if defScope == nil {
		defScope = b.globalScope()
	}
	if def.recursive {
		if op, cols, err, handled := b.bindRecursiveCTE(def, defScope); handled {
			return op, cols, err
		}
	}
	op, err := b.bindQueryExpr(def.query, defScope)
	if err != nil {
		return nil, nil, fmt.Errorf("binder: CTE %s: %v", def.name, err)
	}
	cols := op.Columns()
	if len(def.columns) > 0 {
		if len(def.columns) != len(cols) {
			return nil, nil, fmt.Errorf("binder: CTE %s column list mismatch", def.name)
		}
		renamed := make([]xtra.Col, len(cols))
		for i, c := range cols {
			renamed[i] = xtra.Col{ID: c.ID, Name: def.columns[i], Type: c.Type}
		}
		return op, renamed, nil
	}
	return op, cols, nil
}

// bindRecursiveCTE binds WITH RECURSIVE name AS (seed UNION ALL recursive).
// handled is false when the definition contains no self-reference (then it
// binds as an ordinary CTE).
func (b *Binder) bindRecursiveCTE(def *cteDef, defScope *scope) (xtra.Op, []xtra.Col, error, bool) {
	body, ok := def.query.Body.(*sqlast.SetOpBody)
	if !ok || body.Op != sqlast.SetUnion || !body.All {
		// Not the seed UNION ALL recursive shape; check for self reference.
		if !queryReferencesTable(def.query, def.name) {
			return nil, nil, nil, false
		}
		return nil, nil, fmt.Errorf("binder: recursive CTE %s must be 'seed UNION ALL recursive'", def.name), true
	}
	if !bodyReferencesTable(body.R, def.name) && !bodyReferencesTable(body.L, def.name) {
		return nil, nil, nil, false // plain UNION ALL CTE
	}
	if bodyReferencesTable(body.L, def.name) {
		return nil, nil, fmt.Errorf("binder: recursive CTE %s references itself in the seed branch", def.name), true
	}
	seed, err := b.bindQueryBody(body.L, defScope.child(), nil, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("binder: recursive CTE %s seed: %v", def.name, err), true
	}
	seedCols := seed.Columns()
	names := colNames(seedCols)
	if len(def.columns) > 0 {
		if len(def.columns) != len(seedCols) {
			return nil, nil, fmt.Errorf("binder: CTE %s column list mismatch", def.name), true
		}
		names = def.columns
	}
	b.nextWrk++
	work := &workTable{id: b.nextWrk}
	for i, c := range seedCols {
		work.cols = append(work.cols, xtra.Col{ID: 0, Name: names[i], Type: c.Type})
	}
	def.work = work
	rec, err := b.bindQueryBody(body.R, defScope.child(), nil, nil)
	def.work = nil
	if err != nil {
		return nil, nil, fmt.Errorf("binder: recursive CTE %s: %v", def.name, err), true
	}
	recCols := rec.Columns()
	if len(recCols) != len(seedCols) {
		return nil, nil, fmt.Errorf("binder: recursive CTE %s branch arity mismatch", def.name), true
	}
	outCols := make([]xtra.Col, len(seedCols))
	for i := range seedCols {
		outCols[i] = b.newCol(names[i], seedCols[i].Type)
	}
	ru := &xtra.RecursiveUnion{Seed: seed, Recursive: rec, Cols: outCols, WorkID: work.id}
	return ru, outCols, nil, true
}

func queryReferencesTable(q *sqlast.QueryExpr, name string) bool {
	return bodyReferencesTable(q.Body, name)
}

func bodyReferencesTable(body sqlast.QueryBody, name string) bool {
	switch t := body.(type) {
	case *sqlast.SelectCore:
		for _, te := range t.From {
			if tableExprReferences(te, name) {
				return true
			}
		}
		return false
	case *sqlast.SetOpBody:
		return bodyReferencesTable(t.L, name) || bodyReferencesTable(t.R, name)
	case *sqlast.QueryExpr:
		return bodyReferencesTable(t.Body, name)
	}
	return false
}

func tableExprReferences(te sqlast.TableExpr, name string) bool {
	switch t := te.(type) {
	case *sqlast.TableRef:
		return strings.EqualFold(t.Name, name)
	case *sqlast.DerivedTable:
		return bodyReferencesTable(t.Query.Body, name)
	case *sqlast.JoinExpr:
		return tableExprReferences(t.L, name) || tableExprReferences(t.R, name)
	}
	return false
}
