package tdp

import (
	"fmt"
	"net"
	"testing"

	"hyperq/internal/types"
)

func TestRowEncodingRoundTrip(t *testing.T) {
	cols := []ColumnDef{
		{Name: "i", Type: types.Int},
		{Name: "b", Type: types.BigInt},
		{Name: "d", Type: types.Decimal(12, 2)},
		{Name: "f", Type: types.Float},
		{Name: "s", Type: types.VarChar(20)},
		{Name: "dt", Type: types.Date},
		{Name: "ts", Type: types.Timestamp},
		{Name: "p", Type: types.Period(types.KindDate)},
	}
	row := []types.Datum{
		types.NewInt(-7),
		types.NewBigInt(1 << 40),
		types.NewDecimal(12345, 2),
		types.NewFloat(0.85),
		types.NewString("hello"),
		types.NewDate(2014, 1, 1),
		types.NewTimestamp(1234567890123456),
		types.NewPeriod(types.KindDate, types.EncodeDate(2020, 1, 1), types.EncodeDate(2021, 1, 1)),
	}
	payload, err := encodeRow(cols, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(cols, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i].String() != row[i].String() {
			t.Errorf("col %d: %s != %s", i, got[i], row[i])
		}
	}
}

func TestRowNullBitmap(t *testing.T) {
	cols := []ColumnDef{
		{Name: "a", Type: types.Int},
		{Name: "b", Type: types.VarChar(5)},
		{Name: "c", Type: types.Date},
	}
	row := []types.Datum{
		types.NewNull(types.KindInt),
		types.NewString("x"),
		types.NewNull(types.KindDate),
	}
	payload, err := encodeRow(cols, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(cols, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Null || got[1].S != "x" || !got[2].Null {
		t.Fatalf("row = %v", got)
	}
}

// The bit-identical claim of §4.1: DATE values travel in the vendor's
// internal integer form.
func TestDateTravelsInTeradataEncoding(t *testing.T) {
	cols := []ColumnDef{{Name: "d", Type: types.Date}}
	payload, err := encodeRow(cols, []types.Datum{types.NewDate(2014, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// payload: u32 bitmap length + bitmap (1 byte) + u32 date.
	dateBits := uint32(payload[5])<<24 | uint32(payload[6])<<16 | uint32(payload[7])<<8 | uint32(payload[8])
	if int32(dateBits) != 1140101 {
		t.Fatalf("wire date = %d, want Teradata internal 1140101", int32(dateBits))
	}
}

func TestStmtInfoRoundTrip(t *testing.T) {
	cols := []ColumnDef{
		{Name: "amount", Type: types.Decimal(12, 4)},
		{Name: "note", Type: types.VarChar(50)},
		{Name: "span", Type: types.Period(types.KindTimestamp)},
	}
	got, err := decodeStmtInfo(encodeStmtInfo(cols))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Type.Scale != 4 || got[1].Type.Length != 50 || got[2].Type.Elem != types.KindTimestamp {
		t.Fatalf("meta = %+v", got)
	}
}

// echoHandler implements Handler/SessionHandler for protocol tests.
type echoHandler struct{ failLogon bool }

type echoSession struct{}

func (h *echoHandler) Logon(user, pass string) (SessionHandler, error) {
	if h.failLogon || user == "bad" {
		return nil, fmt.Errorf("invalid credentials")
	}
	return &echoSession{}, nil
}

func (s *echoSession) Close() {}

func (s *echoSession) Request(sql string, w ResponseWriter) error {
	switch sql {
	case "ROWS":
		cols := []ColumnDef{{Name: "v", Type: types.Int}}
		if err := w.BeginResultSet(cols); err != nil {
			return err
		}
		for i := 1; i <= 3; i++ {
			if err := w.Row([]types.Datum{types.NewInt(int64(i))}); err != nil {
				return err
			}
		}
		return w.EndStatement(3, "SELECT")
	case "FAIL":
		return w.Failure(3807, "object does not exist")
	case "MULTI":
		if err := w.EndStatement(1, "INSERT"); err != nil {
			return err
		}
		return w.EndStatement(2, "UPDATE")
	}
	return w.EndStatement(0, "OK")
}

func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = Serve(ln, &echoHandler{}) }()
	return ln.Addr().String()
}

func TestServerClientRequest(t *testing.T) {
	addr := startEcho(t)
	c, err := Dial(addr, "app", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stmts, err := c.Request("ROWS")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 || len(stmts[0].Rows) != 3 || stmts[0].Activity != 3 {
		t.Fatalf("stmts = %+v", stmts)
	}
	if stmts[0].Rows[2][0].I != 3 {
		t.Fatalf("row = %v", stmts[0].Rows[2])
	}
}

func TestServerFailureParcel(t *testing.T) {
	addr := startEcho(t)
	c, err := Dial(addr, "app", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Request("FAIL")
	re, ok := err.(*RequestError)
	if !ok || re.Code != 3807 {
		t.Fatalf("err = %v", err)
	}
	// Connection stays usable.
	if _, err := c.Request("OK"); err != nil {
		t.Fatalf("connection dead after failure: %v", err)
	}
}

func TestServerMultiStatementResponses(t *testing.T) {
	addr := startEcho(t)
	c, err := Dial(addr, "app", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stmts, err := c.Request("MULTI")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[0].Command != "INSERT" || stmts[1].Activity != 2 {
		t.Fatalf("stmts = %+v", stmts)
	}
}

func TestLogonFailure(t *testing.T) {
	addr := startEcho(t)
	if _, err := Dial(addr, "bad", "pw"); err == nil {
		t.Error("bad logon accepted")
	}
}
