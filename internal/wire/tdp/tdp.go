// Package tdp implements the frontend wire protocol (WP-A): a binary,
// parcel-oriented protocol in the style of the original warehouse's client
// interface, spoken by unmodified client applications (the paper's bteq-like
// clients). The Hyper-Q Protocol Handler terminates this protocol and must
// reproduce it bit-identically — including the vendor's internal DATE
// integer encoding in row data — because "database clients become
// non-functional with the slightest difference in behavior of the database
// server" (§4.1).
package tdp

import (
	"bufio"
	"fmt"
	"log"
	"math"
	"net"
	"time"

	"hyperq/internal/types"
	"hyperq/internal/wire"
)

// Parcel kinds.
const (
	MsgLogon      byte = 0x11 // c->s: user, password, charset
	MsgLogonOK    byte = 0x12 // s->c: session number
	MsgLogonFail  byte = 0x13 // s->c: message
	MsgRunRequest byte = 0x14 // c->s: request text
	MsgStmtInfo   byte = 0x15 // s->c: result column metadata
	MsgRecord     byte = 0x16 // s->c: one data row (IndicData layout)
	MsgSuccess    byte = 0x17 // s->c: activity count + activity name
	MsgFailure    byte = 0x18 // s->c: error code + message
	MsgEndRequest byte = 0x19 // s->c: request complete
	MsgLogoff     byte = 0x1A // c->s
)

// ColumnDef describes one result column as presented to the client.
type ColumnDef struct {
	Name string
	Type types.T
}

// --- row encoding -----------------------------------------------------------

// encodeRow lays a row out in IndicData style: a null-indicator bitmap
// (one bit per column, set = NULL) followed by the field values of the
// non-null columns. DATE values travel in the vendor's internal integer
// encoding — bit-identical to the original system.
func encodeRow(cols []ColumnDef, row []types.Datum) ([]byte, error) {
	if len(row) != len(cols) {
		return nil, fmt.Errorf("tdp: row arity %d != %d", len(row), len(cols))
	}
	bitmap := make([]byte, (len(cols)+7)/8)
	var b wire.Buffer
	for i, d := range row {
		if d.Null {
			bitmap[i/8] |= 1 << (7 - i%8)
		}
	}
	b.PutBytes(bitmap)
	for i, d := range row {
		if d.Null {
			continue
		}
		switch cols[i].Type.Kind {
		case types.KindBool:
			b.PutU8(uint8(d.I))
		case types.KindInt:
			b.PutU32(uint32(int32(d.I)))
		case types.KindBigInt, types.KindTimestamp, types.KindInterval:
			b.PutI64(d.I)
		case types.KindDecimal:
			b.PutI64(d.DecimalScaled(cols[i].Type.Scale))
		case types.KindFloat:
			b.PutU64(math.Float64bits(d.F))
		case types.KindDate:
			// Teradata internal DATE integer: (y-1900)*10000 + m*100 + d.
			b.PutU32(uint32(int32(types.TeradataDateInt(d))))
		case types.KindTime:
			b.PutU32(uint32(int32(d.I)))
		case types.KindChar, types.KindVarChar, types.KindBytes:
			b.PutString(d.S)
		case types.KindPeriod:
			b.PutI64(d.PStart)
			b.PutI64(d.PEnd)
		default:
			return nil, fmt.Errorf("tdp: cannot encode kind %v", cols[i].Type.Kind)
		}
	}
	return b.Bytes(), nil
}

// DecodeRow parses an IndicData row under the given column metadata.
func DecodeRow(cols []ColumnDef, payload []byte) ([]types.Datum, error) {
	r := wire.NewReader(payload)
	bitmap := r.Bytes()
	if r.Err() != nil || len(bitmap) < (len(cols)+7)/8 {
		return nil, fmt.Errorf("tdp: bad row bitmap")
	}
	row := make([]types.Datum, len(cols))
	for i, c := range cols {
		if bitmap[i/8]&(1<<(7-i%8)) != 0 {
			row[i] = types.NewNull(c.Type.Kind)
			continue
		}
		switch c.Type.Kind {
		case types.KindBool:
			row[i] = types.NewBool(r.U8() != 0)
		case types.KindInt:
			row[i] = types.NewInt(int64(int32(r.U32())))
		case types.KindBigInt:
			row[i] = types.NewBigInt(r.I64())
		case types.KindTimestamp:
			row[i] = types.NewTimestamp(r.I64())
		case types.KindInterval:
			row[i] = types.NewInterval(r.I64())
		case types.KindDecimal:
			row[i] = types.NewDecimal(r.I64(), c.Type.Scale)
		case types.KindFloat:
			row[i] = types.NewFloat(math.Float64frombits(r.U64()))
		case types.KindDate:
			row[i] = types.DateFromTeradataInt(int64(int32(r.U32())))
		case types.KindTime:
			row[i] = types.NewTime(int64(int32(r.U32())))
		case types.KindChar, types.KindVarChar, types.KindBytes:
			row[i] = types.Datum{K: c.Type.Kind, S: r.String()}
		case types.KindPeriod:
			row[i] = types.NewPeriod(c.Type.Elem, r.I64(), r.I64())
		default:
			return nil, fmt.Errorf("tdp: cannot decode kind %v", c.Type.Kind)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return row, nil
}

func encodeStmtInfo(cols []ColumnDef) []byte {
	var b wire.Buffer
	b.PutU32(uint32(len(cols)))
	for _, c := range cols {
		b.PutString(c.Name)
		b.PutU8(uint8(c.Type.Kind))
		b.PutU32(uint32(c.Type.Scale))
		b.PutU32(uint32(c.Type.Length))
		b.PutU8(uint8(c.Type.Elem))
	}
	return b.Bytes()
}

func decodeStmtInfo(payload []byte) ([]ColumnDef, error) {
	r := wire.NewReader(payload)
	n := int(r.U32())
	if n > 1<<16 {
		return nil, fmt.Errorf("tdp: implausible column count %d", n)
	}
	cols := make([]ColumnDef, n)
	for i := 0; i < n; i++ {
		name := r.String()
		kind := types.Kind(r.U8())
		scale := int(r.U32())
		length := int(r.U32())
		elem := types.Kind(r.U8())
		t := types.T{Kind: kind, Scale: scale, Length: length, Elem: elem}
		if kind == types.KindDecimal {
			t.Precision = 18
		}
		cols[i] = ColumnDef{Name: name, Type: t}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cols, nil
}

// --- server ----------------------------------------------------------------

// ResponseWriter streams one request's response parcels back to the client.
type ResponseWriter interface {
	// BeginResultSet announces result columns for the current statement.
	BeginResultSet(cols []ColumnDef) error
	// Row sends one data row; only valid after BeginResultSet.
	Row(row []types.Datum) error
	// EndStatement completes the current statement with its activity count.
	EndStatement(activity int64, activityName string) error
	// Failure reports a request failure (code + message) and ends the request.
	Failure(code int, msg string) error
}

// SessionHandler processes requests for one logged-on session.
type SessionHandler interface {
	// Request handles one (possibly multi-statement) request, writing its
	// response parcels. A returned error tears the connection down.
	Request(sql string, w ResponseWriter) error
	// Close releases session state.
	Close()
}

// Handler authenticates sessions.
type Handler interface {
	Logon(user, password string) (SessionHandler, error)
}

// Options tunes the server's per-connection behaviour.
type Options struct {
	// WriteTimeout bounds every response write to the client socket. A
	// client that stops reading its result stalls the gateway's write once
	// the socket buffer fills; past this deadline the write fails with a
	// timeout error, letting the session evict the slow client instead of
	// pinning result memory indefinitely. 0 leaves writes unbounded.
	WriteTimeout time.Duration
}

// Serve accepts and serves connections until the listener closes.
// Transient Accept failures (aborted handshakes, fd exhaustion) back off
// briefly and keep the loop alive; only a closed listener or another
// permanent error exits.
func Serve(ln net.Listener, h Handler) error {
	return ServeOptions(ln, h, Options{})
}

// ServeOptions is Serve with per-connection options.
func ServeOptions(ln net.Listener, h Handler, opts Options) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if wire.TransientAcceptError(err) {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return err
		}
		go serveConn(conn, h, opts)
	}
}

func serveConn(conn net.Conn, h Handler, opts Options) {
	defer conn.Close()
	// One client session's panic must not take down the other sessions.
	defer func() {
		if r := recover(); r != nil {
			log.Printf("tdp: session handler panic: %v", r)
		}
	}()
	// All response parcels go through one buffered writer: row parcels are
	// small, and writing each one straight to the socket costs a syscall per
	// row. The buffer is flushed at statement boundaries and before reading
	// the next request.
	out := bufio.NewWriterSize(conn, 32<<10)
	// arm pushes the write deadline forward before a response write. The
	// deadline is per-write, not per-request: a client draining a long
	// result slowly but steadily is fine; only a reader that stalls
	// completely for WriteTimeout fails the write (with a net timeout
	// error) and gets evicted.
	arm := func() error {
		if opts.WriteTimeout <= 0 {
			return nil
		}
		return conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	}
	kind, payload, err := wire.ReadMessage(conn)
	if err != nil || kind != MsgLogon {
		return
	}
	r := wire.NewReader(payload)
	user := r.String()
	pass := r.String()
	if r.Err() != nil {
		return
	}
	sess, err := h.Logon(user, pass)
	if err != nil {
		var b wire.Buffer
		b.PutString(err.Error())
		_ = wire.WriteMessage(out, MsgLogonFail, b.Bytes())
		_ = out.Flush()
		return
	}
	defer sess.Close()
	var b wire.Buffer
	b.PutU32(1) // session number
	if err := wire.WriteMessage(out, MsgLogonOK, b.Bytes()); err != nil {
		return
	}
	if err := out.Flush(); err != nil {
		return
	}
	for {
		kind, payload, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		switch kind {
		case MsgRunRequest:
			r := wire.NewReader(payload)
			sql := r.String()
			w := &respWriter{out: out, arm: arm}
			if err := sess.Request(sql, w); err != nil {
				return
			}
			if !w.failed {
				if err := arm(); err != nil {
					return
				}
				if err := wire.WriteMessage(out, MsgEndRequest, nil); err != nil {
					return
				}
			}
			if err := arm(); err != nil {
				return
			}
			if err := out.Flush(); err != nil {
				return
			}
		case MsgLogoff:
			return
		default:
			return
		}
	}
}

type respWriter struct {
	out    *bufio.Writer
	arm    func() error // refresh the socket write deadline (nil-safe)
	cols   []ColumnDef
	failed bool
}

func (w *respWriter) armWrite() error {
	if w.arm == nil {
		return nil
	}
	return w.arm()
}

func (w *respWriter) BeginResultSet(cols []ColumnDef) error {
	w.cols = cols
	if err := w.armWrite(); err != nil {
		return err
	}
	return wire.WriteMessage(w.out, MsgStmtInfo, encodeStmtInfo(cols))
}

func (w *respWriter) Row(row []types.Datum) error {
	p, err := encodeRow(w.cols, row)
	if err != nil {
		return err
	}
	if err := w.armWrite(); err != nil {
		return err
	}
	return wire.WriteMessage(w.out, MsgRecord, p)
}

func (w *respWriter) EndStatement(activity int64, name string) error {
	w.cols = nil
	var b wire.Buffer
	b.PutI64(activity)
	b.PutString(name)
	if err := w.armWrite(); err != nil {
		return err
	}
	if err := wire.WriteMessage(w.out, MsgSuccess, b.Bytes()); err != nil {
		return err
	}
	return w.out.Flush()
}

func (w *respWriter) Failure(code int, msg string) error {
	w.failed = true
	var b wire.Buffer
	b.PutU32(uint32(code))
	b.PutString(msg)
	if err := w.armWrite(); err != nil {
		return err
	}
	if err := wire.WriteMessage(w.out, MsgFailure, b.Bytes()); err != nil {
		return err
	}
	if err := wire.WriteMessage(w.out, MsgEndRequest, nil); err != nil {
		return err
	}
	return w.out.Flush()
}

// --- client ----------------------------------------------------------------

// Client is a TDP connection, standing in for the vendor's CLI/bteq client
// library.
type Client struct {
	conn net.Conn
}

// Dial connects and logs on.
func Dial(addr, user, password string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var b wire.Buffer
	b.PutString(user)
	b.PutString(password)
	if err := wire.WriteMessage(conn, MsgLogon, b.Bytes()); err != nil {
		conn.Close()
		return nil, err
	}
	kind, payload, err := wire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if kind != MsgLogonOK {
		conn.Close()
		r := wire.NewReader(payload)
		return nil, fmt.Errorf("tdp: logon failed: %s", r.String())
	}
	return &Client{conn: conn}, nil
}

// Statement is one statement's response within a request.
type Statement struct {
	Cols     []ColumnDef
	Rows     [][]types.Datum
	Activity int64
	Command  string
}

// RequestError is a failure parcel surfaced as an error.
type RequestError struct {
	Code    int
	Message string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("request failed [%d]: %s", e.Code, e.Message)
}

// Request submits one request and collects per-statement responses.
func (c *Client) Request(sql string) ([]*Statement, error) {
	var b wire.Buffer
	b.PutString(sql)
	if err := wire.WriteMessage(c.conn, MsgRunRequest, b.Bytes()); err != nil {
		return nil, err
	}
	var out []*Statement
	cur := &Statement{}
	var reqErr *RequestError
	for {
		kind, payload, err := wire.ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		switch kind {
		case MsgStmtInfo:
			cols, err := decodeStmtInfo(payload)
			if err != nil {
				return nil, err
			}
			cur.Cols = cols
		case MsgRecord:
			row, err := DecodeRow(cur.Cols, payload)
			if err != nil {
				return nil, err
			}
			cur.Rows = append(cur.Rows, row)
		case MsgSuccess:
			r := wire.NewReader(payload)
			cur.Activity = r.I64()
			cur.Command = r.String()
			out = append(out, cur)
			cur = &Statement{}
		case MsgFailure:
			r := wire.NewReader(payload)
			reqErr = &RequestError{Code: int(r.U32()), Message: r.String()}
		case MsgEndRequest:
			if reqErr != nil {
				return nil, reqErr
			}
			return out, nil
		default:
			return nil, fmt.Errorf("tdp: unexpected parcel 0x%02x", kind)
		}
	}
}

// Close logs off.
func (c *Client) Close() error {
	_ = wire.WriteMessage(c.conn, MsgLogoff, nil)
	return c.conn.Close()
}
