package tdp

// Frontend failure and logon codes.
//
// This file is the single registry for every Teradata-compatible code the
// gateway emits toward clients. Unmodified client tools pattern-match on
// these numbers — BTEQ decides between "resubmit" and "give up", drivers
// decide whether a transaction's outcome is knowable — so each value is a
// wire-compatibility contract, not an implementation detail. The frontcode
// analyzer (internal/lint) forbids these values as bare literals anywhere
// else in the tree: new emit sites and new tests must name the constant,
// and a code can never silently drift at one call site.
const (
	// CodeWriteStateUnknown (2828) aborts a request whose write may or may
	// not have been applied: the connection died after the statement was
	// sent and before the response arrived. Never auto-retried — the
	// client must determine the outcome itself.
	CodeWriteStateUnknown = 2828

	// CodeLogonDenied (3002) rejects a logon because the backend is
	// unreachable: "logons are disabled, retry later".
	CodeLogonDenied = 3002

	// CodeLogonInvalid (3004) rejects a malformed logon (missing user).
	CodeLogonInvalid = 3004

	// CodeBackendUnavailable (3120) fails fast while the circuit breaker
	// holds the backend open: "backend temporarily unavailable, resubmit".
	CodeBackendUnavailable = 3120

	// CodeGatewaySaturated (3134) aborts a request that could not obtain a
	// pooled backend connection in time (admission control or acquire
	// timeout), or whose result would push the gateway's in-flight result
	// memory past its hard cap.
	CodeGatewaySaturated = 3134

	// CodeClientTooSlow (3136) evicts a session whose client stopped reading
	// its result: a frontend write stalled past the configured write
	// deadline, so the gateway aborts the request and drops the connection
	// rather than let one reader pin result memory indefinitely.
	CodeClientTooSlow = 3136

	// CodeResultInterrupted (3610) aborts a request whose result delivery
	// failed after rows already reached the client: the backend died
	// mid-result. The partial result must be discarded and the request
	// resubmitted — the gateway never re-executes it transparently because
	// delivered rows cannot be retracted.
	CodeResultInterrupted = 3610

	// Statement-level failure codes (Teradata DBC numbering).

	// CodeSyntaxError (3706) is a statement the parser rejects.
	CodeSyntaxError = 3706

	// CodeSemanticError (3707) is a well-formed statement that fails
	// binding or transformation.
	CodeSemanticError = 3707

	// CodeObjectExists (3803) reports CREATE of an already-existing table.
	CodeObjectExists = 3803

	// CodeObjectNotFound (3807) reports a missing object or a failed
	// request against one (also the generic request-failure fallback).
	CodeObjectNotFound = 3807

	// CodeBadMacroArgument (3811) reports a macro invoked with the wrong
	// number or type of arguments.
	CodeBadMacroArgument = 3811

	// CodeMacroNotFound (3824) reports EXEC of a macro that does not exist.
	CodeMacroNotFound = 3824
)
