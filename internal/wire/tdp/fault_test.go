package tdp

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"hyperq/internal/wire"
)

// panicHandler serves sessions whose Request panics on the "BOOM" request.
type panicHandler struct{}

func (panicHandler) Logon(user, password string) (SessionHandler, error) {
	return &panicSession{}, nil
}

type panicSession struct{}

func (s *panicSession) Request(sql string, w ResponseWriter) error {
	if sql == "BOOM" {
		panic("handler bug")
	}
	return w.EndStatement(1, "OK")
}

func (s *panicSession) Close() {}

// A panicking session handler must tear down only its own connection; the
// server keeps accepting and serving other sessions.
func TestServeRecoversSessionPanic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = Serve(ln, panicHandler{}) }()

	victim, err := Dial(ln.Addr().String(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	if _, err := victim.Request("BOOM"); err == nil {
		t.Fatal("panicking request reported success")
	}

	// The server survived: a fresh session still works end to end.
	survivor, err := Dial(ln.Addr().String(), "u", "p")
	if err != nil {
		t.Fatalf("logon after handler panic: %v", err)
	}
	defer survivor.Close()
	stmts, err := survivor.Request("SELECT 1")
	if err != nil {
		t.Fatalf("request after handler panic: %v", err)
	}
	if len(stmts) != 1 || stmts[0].Command != "OK" {
		t.Fatalf("stmts = %+v", stmts)
	}
}

// scriptListener replays a fixed sequence of Accept outcomes, then reports
// closed.
type scriptListener struct {
	mu     sync.Mutex
	script []any // net.Conn or error
}

func (l *scriptListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.script) == 0 {
		return nil, net.ErrClosed
	}
	v := l.script[0]
	l.script = l.script[1:]
	switch v := v.(type) {
	case net.Conn:
		return v, nil
	case error:
		return nil, v
	}
	panic("bad script entry")
}

func (l *scriptListener) Close() error   { return nil }
func (l *scriptListener) Addr() net.Addr { return &net.TCPAddr{} }

// Serve must survive transient Accept failures and still serve the
// connection that follows them.
func TestServeSurvivesTransientAccept(t *testing.T) {
	server, client := net.Pipe()
	ln := &scriptListener{script: []any{
		&net.OpError{Op: "accept", Err: syscall.ECONNABORTED},
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
		server,
	}}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, panicHandler{}) }()

	var b wire.Buffer
	b.PutString("u")
	b.PutString("p")
	if err := wire.WriteMessage(client, MsgLogon, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	kind, _, err := wire.ReadMessage(client)
	if err != nil || kind != MsgLogonOK {
		t.Fatalf("logon after transient accepts: kind=0x%02x err=%v", kind, err)
	}
	client.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve exited with %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit on closed listener")
	}
}
