package wire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, 0x42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadMessage(&buf)
	if err != nil || kind != 0x42 || string(payload) != "hello" {
		t.Fatalf("round trip: %x %q %v", kind, payload, err)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, 0x01, nil); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadMessage(&buf)
	if err != nil || kind != 0x01 || len(payload) != 0 {
		t.Fatalf("empty round trip: %x %q %v", kind, payload, err)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	big := make([]byte, MaxMessageSize+1)
	if err := WriteMessage(&bytes.Buffer{}, 0x01, big); err == nil {
		t.Error("oversized write accepted")
	}
	// A forged oversized header must be rejected on read.
	var buf bytes.Buffer
	buf.Write([]byte{0x01, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Error("oversized read accepted")
	}
}

func TestMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, 0x05, []byte("abcdef"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestBufferReaderRoundTrip(t *testing.T) {
	var b Buffer
	b.PutU8(7)
	b.PutU16(1234)
	b.PutU32(567890)
	b.PutU64(1 << 40)
	b.PutI64(-42)
	b.PutString("héllo")
	b.PutBytes([]byte{1, 2, 3})
	r := NewReader(b.Bytes())
	if r.U8() != 7 || r.U16() != 1234 || r.U32() != 567890 || r.U64() != 1<<40 {
		t.Fatal("unsigned round trip failed")
	}
	if r.I64() != -42 {
		t.Fatal("signed round trip failed")
	}
	if r.String() != "héllo" {
		t.Fatal("string round trip failed")
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Fatal("bytes round trip failed")
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	r := NewReader([]byte{0x00, 0x01})
	_ = r.U32()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "truncated") {
		t.Fatalf("err = %v", r.Err())
	}
	// After an error, further reads are inert.
	if r.U64() != 0 || r.String() != "" {
		t.Error("reads after error not inert")
	}
}

// Property: any string survives Buffer/Reader round trip.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		var b Buffer
		b.PutString(s)
		return NewReader(b.Bytes()).String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleMessagesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := byte(0); i < 5; i++ {
		if err := WriteMessage(&buf, i, []byte{i, i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 5; i++ {
		kind, payload, err := ReadMessage(&buf)
		if err != nil || kind != i || payload[0] != i {
			t.Fatalf("message %d: %x %v %v", i, kind, payload, err)
		}
	}
}
