package wire

import (
	"errors"
	"net"
	"syscall"
)

// TransientAcceptError reports whether an Accept failure is transient — the
// listener is still healthy and the accept loop should continue after a
// short pause — as opposed to a permanent condition such as a closed
// listener. Per-connection failures (aborted handshakes, transient resource
// exhaustion, interrupted syscalls) must not take the whole server down:
// the gateway's availability contract is that one bad connection never
// affects the others.
func TransientAcceptError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EMFILE) ||
		errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.EINTR)
}
