package cwp

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/wire"
)

// scriptListener replays a fixed sequence of Accept outcomes (connections
// or errors), then reports closed.
type scriptListener struct {
	mu     sync.Mutex
	script []any // net.Conn or error
}

func (l *scriptListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.script) == 0 {
		return nil, net.ErrClosed
	}
	v := l.script[0]
	l.script = l.script[1:]
	switch v := v.(type) {
	case net.Conn:
		return v, nil
	case error:
		return nil, v
	}
	panic("bad script entry")
}

func (l *scriptListener) Close() error   { return nil }
func (l *scriptListener) Addr() net.Addr { return &net.TCPAddr{} }

// Serve must survive transient Accept failures (aborted handshakes, fd
// exhaustion) and still serve the connections that follow them.
func TestServeSurvivesTransientAccept(t *testing.T) {
	eng := engine.New(dialect.TeradataProfile())
	if _, err := eng.NewSession().ExecSQL("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	ln := &scriptListener{script: []any{
		&net.OpError{Op: "accept", Err: syscall.ECONNABORTED},
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
		server,
	}}
	done := make(chan error, 1)
	go func() { done <- Serve(ln, eng) }()

	// Drive a full logon + query over the pipe: reaching here at all proves
	// the accept loop outlived the two transient failures.
	var b wire.Buffer
	b.PutString("u")
	b.PutString("p")
	if err := wire.WriteMessage(client, MsgLogon, b.Bytes()); err != nil {
		t.Fatal(err)
	}
	kind, _, err := wire.ReadMessage(client)
	if err != nil || kind != MsgLogonOK {
		t.Fatalf("logon after transient accepts: kind=0x%02x err=%v", kind, err)
	}
	client.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve exited with %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit on closed listener")
	}
}

// TransientAcceptError must keep permanent failures fatal.
func TestTransientAcceptErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"closed", net.ErrClosed, false},
		{"wrapped-closed", &net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{"aborted", &net.OpError{Op: "accept", Err: syscall.ECONNABORTED}, true},
		{"fd-exhaustion", &net.OpError{Op: "accept", Err: syscall.EMFILE}, true},
		{"interrupted", &net.OpError{Op: "accept", Err: syscall.EINTR}, true},
		{"permission", &net.OpError{Op: "accept", Err: os.ErrPermission}, false},
	}
	for _, c := range cases {
		if got := wire.TransientAcceptError(c.err); got != c.transient {
			t.Errorf("%s: TransientAcceptError = %v, want %v", c.name, got, c.transient)
		}
	}
}

// ExecContext must enforce the context deadline at the socket: a backend
// that accepts the query but never answers cannot hang the gateway.
func TestExecContextSocketDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Stall server: completes the logon handshake, then goes silent.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if kind, _, err := wire.ReadMessage(conn); err != nil || kind != MsgLogon {
			return
		}
		var b wire.Buffer
		b.PutU32(1)
		_ = wire.WriteMessage(conn, MsgLogonOK, b.Bytes())
		// Read the query but never respond.
		_, _, _ = wire.ReadMessage(conn)
		time.Sleep(5 * time.Second)
	}()
	c, err := Dial(ln.Addr().String(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ExecContext(ctx, "SELECT 1")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against stalled backend succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a net timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v, want bounded by the 50ms deadline", elapsed)
	}
}

// DialContext must bound the connect + handshake, not just the TCP dial.
func TestDialContextHandshakeDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept but never complete the logon handshake.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(5 * time.Second)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialContext(ctx, ln.Addr().String(), "u", "p")
	if err == nil {
		t.Fatal("dial against stalled handshake succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("dial took %v, want bounded by the 50ms deadline", elapsed)
	}
}
