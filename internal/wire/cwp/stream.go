package cwp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"hyperq/internal/tdf"
	"hyperq/internal/types"
	"hyperq/internal/wire"
)

// StreamEventKind discriminates the events a streaming execute yields.
type StreamEventKind int

const (
	// StreamMeta announces the current statement's result columns.
	StreamMeta StreamEventKind = iota
	// StreamBatch carries one decoded TDF batch of result rows.
	StreamBatch
	// StreamComplete ends the current statement (command tag + activity).
	StreamComplete
)

// StreamEvent is one protocol event of an in-flight request. Exactly one of
// the kind-specific fields is populated, per Kind.
type StreamEvent struct {
	Kind     StreamEventKind
	Cols     []tdf.ColumnMeta // StreamMeta
	Batch    *tdf.Batch       // StreamBatch
	Command  string           // StreamComplete
	Affected int64            // StreamComplete
}

// streamDepth bounds the reader-to-consumer channel. Keeping it small is the
// point: when the consumer stalls, the reader goroutine blocks within a
// couple of batches and stops draining the socket, so TCP flow control
// pushes back on the backend's blocking writes (§4.5 retrieval on demand).
const streamDepth = 2

type streamMsg struct {
	ev  StreamEvent
	err error // terminal: io.EOF for a clean end, else transport/backend error
}

// Stream is one in-flight streaming request. It is pull-based: Next yields
// events in wire order and returns io.EOF after the request's final
// statement. A Stream is owned by one goroutine; only the internal reader
// runs concurrently with the consumer.
//
// Abandoning a stream (Close before Next returned a terminal error)
// desynchronizes the request/response protocol, so it forcibly closes the
// connection; the Client is unusable afterwards (Broken reports true).
type Stream struct {
	c      *Client
	events chan streamMsg
	abort  chan struct{}

	aborted bool // abort already closed (consumer side)
	done    bool // terminal result consumed
	err     error
	// restoreDeadline: a ctx deadline was armed on the socket at start and
	// must be cleared when the stream finishes cleanly.
	restoreDeadline bool
}

// ExecStreamContext sends one SQL request and returns a Stream yielding its
// results incrementally instead of materializing them. The context's
// deadline (when present) bounds every socket read and write of the stream;
// cancelling the context from inside Next tears the stream down.
func (c *Client) ExecStreamContext(ctx context.Context, sql string) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.broken {
		return nil, fmt.Errorf("cwp: connection desynchronized by abandoned stream: %w", net.ErrClosed)
	}
	restore := false
	if dl, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(dl); err != nil {
			return nil, err
		}
		restore = true
	}
	var b wire.Buffer
	b.PutString(sql)
	if err := wire.WriteMessage(c.conn, MsgQuery, b.Bytes()); err != nil {
		// The request may be partially written: the protocol state is gone.
		c.broken = true
		return nil, err
	}
	s := &Stream{
		c:               c,
		events:          make(chan streamMsg, streamDepth),
		abort:           make(chan struct{}),
		restoreDeadline: restore,
	}
	go s.read()
	return s, nil
}

// read is the stream's reader goroutine: it decodes wire messages into the
// bounded events channel until the request ends or the consumer aborts.
// Because sends select on the abort channel, the goroutine can never leak:
// either the consumer drains it or Close releases it.
func (s *Stream) read() {
	defer close(s.events)
	for {
		kind, payload, err := wire.ReadMessage(s.c.conn)
		if err != nil {
			// A bare EOF here is the backend dying mid-request (the clean end
			// of a request is MsgEnd, not a closed socket). io.EOF is the
			// stream's clean-end sentinel, so it must never leak through as a
			// terminal error or a killed backend reads as a successful empty
			// result.
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("cwp: connection closed mid-request: %w", io.ErrUnexpectedEOF)
			}
			s.send(streamMsg{err: err})
			return
		}
		switch kind {
		case MsgMeta:
			cols, err := decodeMeta(payload)
			if err != nil {
				s.send(streamMsg{err: err})
				return
			}
			if !s.send(streamMsg{ev: StreamEvent{Kind: StreamMeta, Cols: cols}}) {
				return
			}
		case MsgBatch:
			batch, err := tdf.Decode(bytes.NewReader(payload))
			if err != nil {
				s.send(streamMsg{err: err})
				return
			}
			if !s.send(streamMsg{ev: StreamEvent{Kind: StreamBatch, Batch: batch}}) {
				return
			}
		case MsgComplete:
			r := wire.NewReader(payload)
			ev := StreamEvent{Kind: StreamComplete, Command: r.String(), Affected: r.I64()}
			if err := r.Err(); err != nil {
				s.send(streamMsg{err: err})
				return
			}
			if !s.send(streamMsg{ev: ev}) {
				return
			}
		case MsgError:
			r := wire.NewReader(payload)
			code := r.U32()
			msg := r.String()
			// Consume the trailing End so the connection stays in sync.
			if k, _, err := wire.ReadMessage(s.c.conn); err != nil || k != MsgEnd {
				s.send(streamMsg{err: fmt.Errorf("cwp: protocol error after failure")})
				return
			}
			s.send(streamMsg{err: &BackendError{Code: int(code), Message: msg}})
			return
		case MsgEnd:
			s.send(streamMsg{err: io.EOF})
			return
		default:
			s.send(streamMsg{err: fmt.Errorf("cwp: unexpected message 0x%02x", kind)})
			return
		}
	}
}

func (s *Stream) send(m streamMsg) bool {
	select {
	case s.events <- m:
		return true
	case <-s.abort:
		return false
	}
}

// Next returns the next event. It returns io.EOF once the request completed
// cleanly, a *BackendError if the backend failed the request (the
// connection stays usable), or a transport error (the connection is
// broken). Cancelling ctx abandons the stream: the connection is closed and
// ctx's error returned.
func (s *Stream) Next(ctx context.Context) (StreamEvent, error) {
	if s.done {
		if s.err != nil {
			return StreamEvent{}, s.err
		}
		return StreamEvent{}, io.EOF
	}
	select {
	case m, ok := <-s.events:
		if !ok {
			// Reader exited after an abort raced a previous Next.
			s.finish(net.ErrClosed)
			return StreamEvent{}, s.err
		}
		if m.err != nil {
			s.finish(m.err)
			return StreamEvent{}, m.err
		}
		return m.ev, nil
	case <-ctx.Done():
		s.abortConn()
		s.finish(ctx.Err())
		return StreamEvent{}, ctx.Err()
	}
}

// finish records the terminal outcome and settles the connection state:
// clean end and backend errors leave the connection healthy (deadline
// cleared); transport failures mark it broken.
func (s *Stream) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	s.err = err
	var be *BackendError
	healthy := errors.Is(err, io.EOF) || errors.As(err, &be)
	if healthy {
		if s.restoreDeadline {
			_ = s.c.conn.SetDeadline(time.Time{})
		}
		return
	}
	s.c.broken = true
}

// abortConn forcibly closes the connection so the blocked reader goroutine
// unblocks; the protocol state is unrecoverable afterwards.
func (s *Stream) abortConn() {
	s.c.broken = true
	_ = s.c.conn.Close()
	if !s.aborted {
		s.aborted = true
		close(s.abort)
	}
}

// Close releases the stream. Closing before the terminal event abandons the
// in-flight request: the connection is closed (it cannot be re-synchronized)
// and the Client reports Broken. Close waits for the reader goroutine to
// exit, so no goroutine outlives the stream. Idempotent.
func (s *Stream) Close() error {
	if !s.done {
		s.abortConn()
		s.done = true
		s.err = net.ErrClosed
	}
	if !s.aborted {
		s.aborted = true
		close(s.abort)
	}
	// Drain until the reader's deferred close; returns immediately when the
	// reader already exited.
	for range s.events {
	}
	return nil
}

// Err returns the stream's terminal error (io.EOF after a clean end, nil
// while still live).
func (s *Stream) Err() error {
	if !s.done {
		return nil
	}
	return s.err
}

// decodeMeta parses a MsgMeta payload (shared by the buffered and streaming
// readers).
func decodeMeta(payload []byte) ([]tdf.ColumnMeta, error) {
	r := wire.NewReader(payload)
	n := int(r.U32())
	cols := make([]tdf.ColumnMeta, n)
	for i := 0; i < n; i++ {
		name := r.String()
		kind := types.Kind(r.U8())
		scale := int(r.U32())
		elem := types.Kind(r.U8())
		t := types.T{Kind: kind, Scale: scale, Elem: elem}
		if kind == types.KindDecimal {
			t.Precision = 18
		}
		cols[i] = tdf.ColumnMeta{Name: name, Type: t}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return cols, nil
}
