// Package cwp implements the Cloud Wire Protocol (WP-B): the backend
// protocol between Hyper-Q's ODBC Server abstraction and the cloud engine
// substrate. A session authenticates once, then issues SQL requests; query
// results stream back as TDF-encoded batches so large result sets can be
// "retrieved on demand in one or more batches depending on the result size"
// (§4.5).
package cwp

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"hyperq/internal/engine"
	"hyperq/internal/tdf"
	"hyperq/internal/types"
	"hyperq/internal/wire"
	"hyperq/internal/xtra"
)

// Message kinds.
const (
	MsgLogon     byte = 0x01 // c->s: user, password
	MsgLogonOK   byte = 0x02 // s->c: session id
	MsgQuery     byte = 0x03 // c->s: sql text
	MsgMeta      byte = 0x04 // s->c: result column metadata
	MsgBatch     byte = 0x05 // s->c: TDF batch
	MsgComplete  byte = 0x06 // s->c: command tag, activity count
	MsgError     byte = 0x07 // s->c: code, message
	MsgEnd       byte = 0x08 // s->c: end of request
	MsgLogoff    byte = 0x09 // c->s
	MsgLogonFail byte = 0x0A // s->c
)

// BatchRows is the number of rows per streamed batch.
const BatchRows = 1024

// Server serves the engine over CWP.
type Server struct {
	eng *Engine
	ln  net.Listener
}

// Engine is the minimal backend surface the server drives.
type Engine struct {
	E *engine.Engine
}

// Serve accepts connections until the listener closes. Transient Accept
// failures (aborted handshakes, fd exhaustion) back off briefly and keep
// the loop alive; only a closed listener or another permanent error exits.
func Serve(ln net.Listener, eng *engine.Engine) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if wire.TransientAcceptError(err) {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			return err
		}
		go handleConn(conn, eng)
	}
}

func handleConn(conn net.Conn, eng *engine.Engine) {
	defer conn.Close()
	// One backend session's panic must not take down the other sessions.
	defer func() {
		if r := recover(); r != nil {
			log.Printf("cwp: session handler panic: %v", r)
		}
	}()
	kind, payload, err := wire.ReadMessage(conn)
	if err != nil {
		return
	}
	if kind != MsgLogon {
		_ = wire.WriteMessage(conn, MsgLogonFail, []byte("expected logon"))
		return
	}
	r := wire.NewReader(payload)
	user := r.String()
	_ = r.String() // password: any accepted by the substrate
	if r.Err() != nil || user == "" {
		_ = wire.WriteMessage(conn, MsgLogonFail, []byte("bad logon"))
		return
	}
	sess := eng.NewSession()
	sess.SetUser(user)
	var ok wire.Buffer
	ok.PutString("session")
	if err := wire.WriteMessage(conn, MsgLogonOK, ok.Bytes()); err != nil {
		return
	}
	for {
		kind, payload, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		switch kind {
		case MsgQuery:
			r := wire.NewReader(payload)
			sql := r.String()
			if err := runQuery(conn, sess, sql); err != nil {
				return
			}
		case MsgLogoff:
			return
		default:
			_ = writeError(conn, 1000, fmt.Sprintf("unexpected message 0x%02x", kind))
			return
		}
	}
}

func writeError(conn net.Conn, code uint32, msg string) error {
	var b wire.Buffer
	b.PutU32(code)
	b.PutString(msg)
	if err := wire.WriteMessage(conn, MsgError, b.Bytes()); err != nil {
		return err
	}
	return wire.WriteMessage(conn, MsgEnd, nil)
}

func runQuery(conn net.Conn, sess *engine.Session, sql string) error {
	results, err := sess.ExecSQL(sql)
	if err != nil {
		return writeError(conn, 3706, err.Error())
	}
	for _, res := range results {
		if err := writeResult(conn, res); err != nil {
			return err
		}
	}
	return wire.WriteMessage(conn, MsgEnd, nil)
}

func writeResult(conn net.Conn, res *engine.Result) error {
	if res.Cols != nil {
		meta := metaFromCols(res.Cols)
		var mb wire.Buffer
		mb.PutU32(uint32(len(meta)))
		for _, c := range meta {
			mb.PutString(c.Name)
			mb.PutU8(uint8(c.Type.Kind))
			mb.PutU32(uint32(c.Type.Scale))
			mb.PutU8(uint8(c.Type.Elem))
		}
		if err := wire.WriteMessage(conn, MsgMeta, mb.Bytes()); err != nil {
			return err
		}
		for off := 0; off < len(res.Rows); off += BatchRows {
			end := off + BatchRows
			if end > len(res.Rows) {
				end = len(res.Rows)
			}
			batch := &tdf.Batch{Cols: meta, Rows: res.Rows[off:end]}
			var buf bytes.Buffer
			if err := batch.Encode(&buf); err != nil {
				return writeError(conn, 1001, err.Error())
			}
			if err := wire.WriteMessage(conn, MsgBatch, buf.Bytes()); err != nil {
				return err
			}
		}
	}
	var cb wire.Buffer
	cb.PutString(res.Command)
	cb.PutI64(res.RowsAffected)
	return wire.WriteMessage(conn, MsgComplete, cb.Bytes())
}

func metaFromCols(cols []xtra.Col) []tdf.ColumnMeta {
	out := make([]tdf.ColumnMeta, len(cols))
	for i, c := range cols {
		out[i] = tdf.ColumnMeta{Name: c.Name, Type: c.Type}
	}
	return out
}

// --- client ---------------------------------------------------------------

// Client is a CWP connection (the driver the ODBC Server abstraction loads).
type Client struct {
	conn net.Conn
	// broken marks the connection protocol-desynchronized: an abandoned
	// stream or a partially written request left responses in flight that no
	// reader will consume. Every subsequent request fails fast.
	broken bool
}

// Broken reports whether the connection's request/response protocol has been
// desynchronized (e.g. by abandoning a Stream mid-result). A broken client
// must be discarded; it cannot serve further requests.
func (c *Client) Broken() bool { return c.broken }

// Dial connects and authenticates.
func Dial(addr, user, password string) (*Client, error) {
	return DialContext(context.Background(), addr, user, password)
}

// DialContext connects and authenticates, honouring the context's deadline
// for both the TCP connect and the logon handshake. Reconnecting drivers
// use it so a dead backend cannot hang session establishment.
func DialContext(ctx context.Context, addr, user, password string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			conn.Close()
			return nil, err
		}
	}
	var b wire.Buffer
	b.PutString(user)
	b.PutString(password)
	if err := wire.WriteMessage(conn, MsgLogon, b.Bytes()); err != nil {
		conn.Close()
		return nil, err
	}
	kind, payload, err := wire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if kind != MsgLogonOK {
		conn.Close()
		return nil, fmt.Errorf("cwp: logon failed: %s", payload)
	}
	// Handshake deadline no longer applies to the session's lifetime.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// StatementResult is the outcome of one statement within a request.
type StatementResult struct {
	Cols     []tdf.ColumnMeta
	Batches  []*tdf.Batch
	Command  string
	Affected int64
}

// Rows flattens the batches.
func (r *StatementResult) Rows() [][]types.Datum {
	var out [][]types.Datum
	for _, b := range r.Batches {
		out = append(out, b.Rows...)
	}
	return out
}

// Exec sends one SQL request (possibly multi-statement) and collects all
// statement results.
func (c *Client) Exec(sql string) ([]*StatementResult, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecContext is Exec with the context's deadline wired into the socket:
// every read and write of the request observes it, so a stalled or dead
// backend surfaces as a timeout instead of blocking the session forever.
func (c *Client) ExecContext(ctx context.Context, sql string) ([]*StatementResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(dl); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	return c.exec(sql)
}

func (c *Client) exec(sql string) ([]*StatementResult, error) {
	if c.broken {
		return nil, fmt.Errorf("cwp: connection desynchronized by abandoned stream: %w", net.ErrClosed)
	}
	var b wire.Buffer
	b.PutString(sql)
	if err := wire.WriteMessage(c.conn, MsgQuery, b.Bytes()); err != nil {
		return nil, err
	}
	var out []*StatementResult
	cur := &StatementResult{}
	for {
		kind, payload, err := wire.ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		switch kind {
		case MsgMeta:
			cols, err := decodeMeta(payload)
			if err != nil {
				return nil, err
			}
			cur.Cols = cols
		case MsgBatch:
			batch, err := tdf.Decode(bytes.NewReader(payload))
			if err != nil {
				return nil, err
			}
			cur.Batches = append(cur.Batches, batch)
		case MsgComplete:
			r := wire.NewReader(payload)
			cur.Command = r.String()
			cur.Affected = r.I64()
			out = append(out, cur)
			cur = &StatementResult{}
		case MsgError:
			r := wire.NewReader(payload)
			code := r.U32()
			msg := r.String()
			// Consume the trailing End.
			if k, _, err := wire.ReadMessage(c.conn); err == nil && k != MsgEnd {
				return nil, fmt.Errorf("cwp: protocol error after failure")
			}
			return nil, &BackendError{Code: int(code), Message: msg}
		case MsgEnd:
			return out, nil
		default:
			return nil, fmt.Errorf("cwp: unexpected message 0x%02x", kind)
		}
	}
}

// Close logs off and closes the connection.
func (c *Client) Close() error {
	_ = wire.WriteMessage(c.conn, MsgLogoff, nil)
	return c.conn.Close()
}

// BackendError is a typed error from the backend.
type BackendError struct {
	Code    int
	Message string
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("backend error %d: %s", e.Code, e.Message)
}

// Transient reports whether the error is a retryable abort: the backend
// processed the request, rolled it back, and nothing landed — a deadlock or
// transient resource condition. Such statements are safe to re-execute on
// the same session, even writes. All other backend errors are SQL/semantic
// failures and must never be retried.
func (e *BackendError) Transient() bool {
	switch e.Code {
	case 2631, // transaction aborted by deadlock
		3111, // request aborted: backend restart in progress
		3598: // concurrent workload limit, resubmit
		return true
	}
	return false
}
