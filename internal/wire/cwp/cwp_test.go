package cwp

import (
	"net"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
)

// startServer runs a CWP server over a loaded engine and returns its
// address.
func startServer(t *testing.T) string {
	t.Helper()
	eng := engine.New(dialect.TeradataProfile())
	s := eng.NewSession()
	for _, sql := range []string{
		"CREATE TABLE t (a INT, b VARCHAR(10), c DECIMAL(10,2), d DATE)",
		"INSERT INTO t VALUES (1, 'x', 1.50, DATE '2020-01-01'), (2, NULL, NULL, NULL)",
	} {
		if _, err := s.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = Serve(ln, eng) }()
	return ln.Addr().String()
}

func TestQueryRoundTrip(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Exec("SELECT a, b, c, d FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	rows := results[0].Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].S != "x" || rows[0][2].String() != "1.50" || rows[0][3].String() != "2020-01-01" {
		t.Fatalf("row 0 = %v", rows[0])
	}
	if !rows[1][1].Null || !rows[1][3].Null {
		t.Fatalf("row 1 nulls lost: %v", rows[1])
	}
	if results[0].Cols[2].Type.Scale != 2 {
		t.Errorf("decimal scale lost: %+v", results[0].Cols[2])
	}
}

func TestMultiStatementRequest(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Exec("INSERT INTO t (a) VALUES (3); SELECT COUNT(*) FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Affected != 1 || results[0].Command != "INSERT" {
		t.Fatalf("insert = %+v", results[0])
	}
	if results[1].Rows()[0][0].I != 3 {
		t.Fatalf("count = %v", results[1].Rows()[0][0])
	}
}

func TestErrorPropagation(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT nope FROM t")
	be, ok := err.(*BackendError)
	if !ok || !strings.Contains(be.Message, "nope") {
		t.Fatalf("err = %v", err)
	}
	// The session survives a failed request.
	if _, err := c.Exec("SELECT 1"); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestLogonRequired(t *testing.T) {
	addr := startServer(t)
	if _, err := Dial(addr, "", "pw"); err == nil {
		t.Error("empty user accepted")
	}
}

func TestLargeResultBatching(t *testing.T) {
	eng := engine.New(dialect.TeradataProfile())
	s := eng.NewSession()
	if _, err := s.ExecSQL("CREATE TABLE big (x INT)"); err != nil {
		t.Fatal(err)
	}
	// More rows than one batch.
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES (0)")
	for i := 1; i < 3000; i++ {
		sb.WriteString(",(")
		sb.WriteString(intToString(i))
		sb.WriteString(")")
	}
	if _, err := s.ExecSQL(sb.String()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = Serve(ln, eng) }()
	c, err := Dial(ln.Addr().String(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.Exec("SELECT x FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Batches) < 2 {
		t.Fatalf("batches = %d, want streaming in multiple batches", len(results[0].Batches))
	}
	if len(results[0].Rows()) != 3000 {
		t.Fatalf("rows = %d", len(results[0].Rows()))
	}
}

func intToString(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
