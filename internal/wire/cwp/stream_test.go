package cwp

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"hyperq/internal/tdf"
	"hyperq/internal/wire"
)

// collect drains a stream into its event list, returning the terminal error.
func collect(t *testing.T, s *Stream) ([]StreamEvent, error) {
	t.Helper()
	var evs []StreamEvent
	for {
		ev, err := s.Next(context.Background())
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.ExecStreamContext(context.Background(), "SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := collect(t, st)
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if len(evs) != 3 {
		t.Fatalf("events = %d, want meta+batch+complete", len(evs))
	}
	if evs[0].Kind != StreamMeta || len(evs[0].Cols) != 2 || evs[0].Cols[0].Name != "a" {
		t.Fatalf("meta = %+v", evs[0])
	}
	if evs[1].Kind != StreamBatch || len(evs[1].Batch.Rows) != 2 {
		t.Fatalf("batch = %+v", evs[1])
	}
	if evs[2].Kind != StreamComplete || evs[2].Command != "SELECT" {
		t.Fatalf("complete = %+v", evs[2])
	}
	if c.Broken() {
		t.Fatal("clean stream broke the client")
	}
	// The connection stays synchronized for buffered requests.
	if _, err := c.Exec("SELECT 1"); err != nil {
		t.Fatalf("post-stream exec: %v", err)
	}
}

func TestStreamMultiStatement(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.ExecStreamContext(context.Background(), "INSERT INTO t (a) VALUES (7); SELECT COUNT(*) FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := collect(t, st)
	if err != io.EOF {
		t.Fatalf("terminal error = %v", err)
	}
	// INSERT: complete only. SELECT: meta+batch+complete.
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	if evs[0].Kind != StreamComplete || evs[0].Command != "INSERT" || evs[0].Affected != 1 {
		t.Fatalf("insert complete = %+v", evs[0])
	}
	if evs[1].Kind != StreamMeta || evs[2].Kind != StreamBatch || evs[3].Kind != StreamComplete {
		t.Fatalf("select events = %+v", evs[1:])
	}
}

func TestStreamMatchesBufferedExec(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const sql = "SELECT a, b, c, d FROM t ORDER BY a"
	buffered, err := c.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.ExecStreamContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := collect(t, st)
	if err != io.EOF {
		t.Fatal(err)
	}
	var streamed []*tdf.Batch
	for _, ev := range evs {
		if ev.Kind == StreamBatch {
			streamed = append(streamed, ev.Batch)
		}
	}
	if len(streamed) != len(buffered[0].Batches) {
		t.Fatalf("batches: streamed %d, buffered %d", len(streamed), len(buffered[0].Batches))
	}
	want := buffered[0].Rows()
	var got int
	for _, b := range streamed {
		got += len(b.Rows)
	}
	if got != len(want) {
		t.Fatalf("rows: streamed %d, buffered %d", got, len(want))
	}
}

func TestStreamBackendErrorKeepsConnection(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A failed request surfaces as a terminal *BackendError and the
	// connection must stay synchronized (MsgError is followed by MsgEnd,
	// which the stream consumes).
	st, err := c.ExecStreamContext(context.Background(), "SELECT a FROM no_such_table")
	if err != nil {
		t.Fatal(err)
	}
	_, err = collect(t, st)
	var be *BackendError
	if !errors.As(err, &be) {
		t.Fatalf("terminal error = %v, want *BackendError", err)
	}
	if c.Broken() {
		t.Fatal("backend error broke the connection")
	}
	if _, err := c.Exec("SELECT 1"); err != nil {
		t.Fatalf("post-error exec: %v", err)
	}
}

func TestStreamAbandonBreaksClient(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.ExecStreamContext(context.Background(), "SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// Abandon mid-result: the request/response protocol cannot be
	// re-synchronized, so the connection must be condemned.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !c.Broken() {
		t.Fatal("abandoned stream did not mark the client broken")
	}
	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Fatal("exec on a desynchronized connection succeeded")
	}
	// Close is idempotent.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamContextCancel(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.ExecStreamContext(ctx, "SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// Consume what is buffered, then cancel: Next must return promptly with
	// the context error even if the reader is blocked.
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		var ev StreamEvent
		done := make(chan error, 1)
		go func() {
			var err error
			ev, err = st.Next(ctx)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				_ = ev
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("terminal error = %v, want context.Canceled", err)
			}
			if !c.Broken() {
				t.Fatal("cancelled stream did not mark the client broken")
			}
			_ = st.Close()
			return
		case <-deadline:
			t.Fatal("Next did not return after cancel")
		}
	}
}

// A backend process dying mid-request sends a socket EOF where protocol
// messages should be. io.EOF is the stream's clean-end sentinel, so the
// reader must rewrite it — otherwise a killed backend reads as a successful
// empty result.
func TestStreamBackendDeathIsNotCleanEOF(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Minimal logon handshake, then die on the first query.
		if kind, _, err := wire.ReadMessage(conn); err != nil || kind != MsgLogon {
			conn.Close()
			return
		}
		var ok wire.Buffer
		ok.PutU32(1)
		_ = wire.WriteMessage(conn, MsgLogonOK, ok.Bytes())
		_, _, _ = wire.ReadMessage(conn) // the query
		conn.Close()                     // FIN mid-request: reader sees bare EOF
	}()

	c, err := Dial(ln.Addr().String(), "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.ExecStreamContext(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, serr := collect(t, st)
	if serr == nil || serr == io.EOF {
		t.Fatalf("terminal = %v — backend death read as a clean end of stream", serr)
	}
	if !errors.Is(serr, io.ErrUnexpectedEOF) {
		t.Fatalf("terminal = %v, want an unexpected-EOF connection error", serr)
	}
}

func TestStreamExpiredContext(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr, "user", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExecStreamContext(ctx, "SELECT 1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The request was never sent: the connection is still usable.
	if _, err := c.Exec("SELECT 1"); err != nil {
		t.Fatalf("exec after refused stream: %v", err)
	}
}
