// Package wire provides the shared message framing used by both wire
// protocols in the system: the frontend protocol the unmodified client
// application speaks (WP-A, package tdp) and the backend protocol of the
// cloud engine (WP-B, package cwp). Framing is a 1-byte message kind, a
// 4-byte big-endian payload length, and the payload.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxMessageSize bounds a single message payload (64 MiB).
const MaxMessageSize = 64 << 20

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxMessageSize {
		return 0, nil, fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Buffer is a helper for building message payloads.
type Buffer struct {
	b []byte
}

// Bytes returns the accumulated payload.
func (b *Buffer) Bytes() []byte { return b.b }

// PutU8 appends one byte.
func (b *Buffer) PutU8(v uint8) { b.b = append(b.b, v) }

// PutU16 appends a big-endian uint16.
func (b *Buffer) PutU16(v uint16) {
	b.b = binary.BigEndian.AppendUint16(b.b, v)
}

// PutU32 appends a big-endian uint32.
func (b *Buffer) PutU32(v uint32) {
	b.b = binary.BigEndian.AppendUint32(b.b, v)
}

// PutU64 appends a big-endian uint64.
func (b *Buffer) PutU64(v uint64) {
	b.b = binary.BigEndian.AppendUint64(b.b, v)
}

// PutI64 appends a big-endian int64.
func (b *Buffer) PutI64(v int64) { b.PutU64(uint64(v)) }

// PutString appends a u32-length-prefixed string.
func (b *Buffer) PutString(s string) {
	b.PutU32(uint32(len(s)))
	b.b = append(b.b, s...)
}

// PutBytes appends a u32-length-prefixed byte slice.
func (b *Buffer) PutBytes(p []byte) {
	b.PutU32(uint32(len(p)))
	b.b = append(b.b, p...)
}

// Reader decodes message payloads.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Err returns the first decoding error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("wire: truncated message (need %d at %d of %d)", n, r.off, len(r.b))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	if !r.need(n) {
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// Bytes reads a u32-length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}
