package dialect

import (
	"testing"
)

func TestTeradataSupportsEverything(t *testing.T) {
	p := TeradataProfile()
	if !p.IsSource {
		t.Error("Teradata must be the source profile")
	}
	for _, c := range All() {
		if !p.Supports(c) {
			t.Errorf("source profile missing %s", c)
		}
	}
}

func TestCloudTargetsShapeMatchesFigure2(t *testing.T) {
	targets := CloudTargets()
	if len(targets) != 4 {
		t.Fatalf("targets = %d", len(targets))
	}
	pct := SupportPct(Figure2Features, targets)
	// Vendor-specific extensions: (almost) nobody supports them.
	for _, c := range []Capability{CapImplicitJoin, CapNamedExprRef, CapVectorSubquery, CapMacros, CapSetTables, CapDateIntCompare} {
		if pct[c] != 0 {
			t.Errorf("%s support = %v%%, want 0%%", c, pct[c])
		}
	}
	// QUALIFY: exactly one modeled target (the Snowflake-like one).
	if pct[CapQualify] != 25 {
		t.Errorf("QUALIFY support = %v%%, want 25%%", pct[CapQualify])
	}
	// Partially standardized features: somewhere strictly between 0 and 100.
	for _, c := range []Capability{CapMerge, CapGroupingSets, CapOrdinalGroupBy, CapRecursive, CapDerivedColAliases} {
		if pct[c] <= 0 || pct[c] >= 100 {
			t.Errorf("%s support = %v%%, want partial", c, pct[c])
		}
	}
}

func TestNoCloudTargetIsFullySource(t *testing.T) {
	// Every cloud target must be missing at least 3 of the Figure 2
	// features — otherwise the migration problem would be trivial.
	for _, p := range CloudTargets() {
		missing := 0
		for _, c := range Figure2Features {
			if !p.Supports(c) {
				missing++
			}
		}
		if missing < 3 {
			t.Errorf("%s is missing only %d features", p.Name, missing)
		}
		if p.IsSource {
			t.Errorf("%s marked as source", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"Teradata", "CloudA", "CloudB", "CloudC", "CloudD", "cloudd"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("OracleXE"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestFuncNameMapping(t *testing.T) {
	a := CloudA()
	if got := a.FuncName("CHAR_LENGTH"); got != "LEN" {
		t.Errorf("CloudA CHAR_LENGTH = %q", got)
	}
	if got := a.FuncName("COALESCE"); got != "COALESCE" {
		t.Errorf("unmapped name changed: %q", got)
	}
}

func TestCapabilitiesSorted(t *testing.T) {
	caps := CloudD().Capabilities()
	for i := 1; i < len(caps); i++ {
		if caps[i-1] >= caps[i] {
			t.Fatalf("capabilities not sorted: %v", caps)
		}
	}
}

func TestCapabilityStrings(t *testing.T) {
	for _, c := range All() {
		if c.String() == "" || c.String()[0] == 'C' && len(c.String()) > 10 && c.String()[:10] == "Capability" {
			t.Errorf("capability %d lacks a name", c)
		}
	}
}
