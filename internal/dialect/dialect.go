// Package dialect models the capability surface of the source and target
// database systems. Each Profile declares which query features a system
// supports natively; the profiles drive three things:
//
//   - the Figure 2 reproduction (percentage of modeled cloud targets
//     supporting selected Teradata features),
//   - the Serializer's choice of serialization-time rewrites (§5.3: the
//     vector-subquery transformation "is system specific ... it needs to be
//     triggered right before serialization"), and
//   - capability enforcement in the cloud-engine substrate, which rejects
//     unsupported constructs exactly like a real cloud target would.
package dialect

import (
	"fmt"
	"sort"
)

// Capability names one query feature a system may support natively.
type Capability uint8

// The modeled capabilities. The first block mirrors the "select Teradata
// features" of Figure 2; the rest parameterize serializer behaviour.
const (
	// CapQualify is the QUALIFY clause.
	CapQualify Capability = iota
	// CapImplicitJoin allows referencing tables absent from FROM.
	CapImplicitJoin
	// CapNamedExprRef allows referencing a select-list alias in the same block.
	CapNamedExprRef
	// CapOrdinalGroupBy allows GROUP BY/ORDER BY column positions.
	CapOrdinalGroupBy
	// CapGroupingSets is native ROLLUP/CUBE/GROUPING SETS.
	CapGroupingSets
	// CapDateIntCompare allows comparing DATE with INTEGER directly.
	CapDateIntCompare
	// CapDateArith allows DATE +/- integer arithmetic.
	CapDateArith
	// CapVectorSubquery is the quantified vector comparison (a,b) > ANY (...).
	CapVectorSubquery
	// CapRecursive is native WITH RECURSIVE.
	CapRecursive
	// CapMerge is the MERGE statement.
	CapMerge
	// CapMacros is stored parameterized statement sequences.
	CapMacros
	// CapSetTables is SET-table duplicate elimination.
	CapSetTables
	// CapGlobalTempTables is GLOBAL TEMPORARY TABLE semantics.
	CapGlobalTempTables
	// CapPeriodType is the compound PERIOD data type.
	CapPeriodType
	// CapDerivedColAliases is a column list on a derived-table alias.
	CapDerivedColAliases
	// CapTop is the TOP n [WITH TIES] clause.
	CapTop
	// CapUpdatableViews allows DML against single-table views.
	CapUpdatableViews
	// CapNullsOrdering is explicit NULLS FIRST/LAST in ORDER BY.
	CapNullsOrdering
	// CapHelpCommands is the HELP SESSION/TABLE informational family.
	CapHelpCommands

	numCapabilities
)

// Count is the number of modeled capabilities.
const Count = int(numCapabilities)

var capNames = [Count]string{
	"QUALIFY", "Implicit joins", "Named expressions", "Ordinal GROUP BY",
	"OLAP grouping extensions", "Date-Integer comparison", "Date arithmetics",
	"Vector subqueries", "Recursive queries", "MERGE", "Macros", "SET tables",
	"Global temporary tables", "PERIOD type", "Derived table column aliases",
	"TOP clause", "Updatable views", "NULLS ordering", "HELP commands",
}

func (c Capability) String() string {
	if int(c) < Count {
		return capNames[c]
	}
	return fmt.Sprintf("Capability(%d)", uint8(c))
}

// All lists every capability.
func All() []Capability {
	out := make([]Capability, Count)
	for i := range out {
		out[i] = Capability(i)
	}
	return out
}

// Figure2Features is the subset of capabilities shown in the paper's
// Figure 2 support matrix.
var Figure2Features = []Capability{
	CapQualify, CapImplicitJoin, CapNamedExprRef, CapOrdinalGroupBy,
	CapGroupingSets, CapDateIntCompare, CapVectorSubquery, CapRecursive,
	CapMerge, CapMacros, CapSetTables, CapDerivedColAliases,
}

// Profile describes one database system.
type Profile struct {
	// Name is the marketing-neutral system name.
	Name string
	// IsSource marks the on-premises source system (Teradata model).
	IsSource bool
	caps     map[Capability]bool
	// FuncNames maps canonical builtin names to the system's spelling.
	// Unlisted functions keep the canonical name.
	FuncNames map[string]string
	// AddMonthsStyle selects how month arithmetic serializes:
	// "add_months" keeps the function, "dateadd" uses DATEADD(MONTH, n, d).
	AddMonthsStyle string
	// LimitStyle selects row limiting syntax: "top" or "limit".
	LimitStyle string
}

// Supports reports whether the profile has the capability.
func (p *Profile) Supports(c Capability) bool { return p.caps[c] }

// Capabilities returns the supported set, sorted.
func (p *Profile) Capabilities() []Capability {
	var out []Capability
	for c, ok := range p.caps {
		if ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FuncName resolves the target spelling of a canonical builtin.
func (p *Profile) FuncName(canonical string) string {
	if n, ok := p.FuncNames[canonical]; ok {
		return n
	}
	return canonical
}

func newProfile(name string, caps ...Capability) *Profile {
	m := make(map[Capability]bool, len(caps))
	for _, c := range caps {
		m[c] = true
	}
	return &Profile{Name: name, caps: m, AddMonthsStyle: "add_months", LimitStyle: "limit"}
}

// TeradataProfile models the source system: everything is supported.
func TeradataProfile() *Profile {
	p := newProfile("Teradata", All()...)
	p.IsSource = true
	p.LimitStyle = "top"
	return p
}

// The four modeled cloud targets. The support mixes follow the 2018-era
// shape of Figure 2: vendor-specific extensions (QUALIFY, implicit joins,
// named expressions, SET tables, macros, vector subqueries) are supported by
// few or none of the targets, while partially standardized features (MERGE,
// grouping sets, ordinal GROUP BY, recursion) are supported by some.

// CloudA models a columnar MPP warehouse (Redshift-like, 2018).
func CloudA() *Profile {
	p := newProfile("CloudA",
		CapOrdinalGroupBy, CapDerivedColAliases, CapNullsOrdering, CapDateArith,
	)
	p.FuncNames = map[string]string{"CHAR_LENGTH": "LEN", "POSITION": "STRPOS"}
	p.AddMonthsStyle = "add_months"
	return p
}

// CloudB models a serverless query service (BigQuery-like, 2018).
func CloudB() *Profile {
	p := newProfile("CloudB",
		CapOrdinalGroupBy, CapGroupingSets, CapNullsOrdering,
	)
	p.FuncNames = map[string]string{"SUBSTR": "SUBSTR", "CHAR_LENGTH": "LENGTH", "POSITION": "STRPOS"}
	p.AddMonthsStyle = "dateadd"
	return p
}

// CloudC models an elastic SQL DW (Azure SQL DW-like, 2018).
func CloudC() *Profile {
	p := newProfile("CloudC",
		CapGroupingSets, CapMerge, CapDerivedColAliases, CapTop, CapUpdatableViews,
	)
	p.FuncNames = map[string]string{"CHAR_LENGTH": "LEN", "POSITION": "CHARINDEX"}
	p.AddMonthsStyle = "dateadd"
	p.LimitStyle = "top"
	return p
}

// CloudD models a cloud-native elastic warehouse (Snowflake-like).
func CloudD() *Profile {
	p := newProfile("CloudD",
		CapQualify, CapOrdinalGroupBy, CapGroupingSets, CapRecursive, CapMerge,
		CapDerivedColAliases, CapNullsOrdering, CapTop, CapUpdatableViews, CapDateArith,
	)
	p.FuncNames = map[string]string{"CHAR_LENGTH": "LENGTH", "POSITION": "POSITION"}
	p.AddMonthsStyle = "add_months"
	return p
}

// CloudTargets lists the modeled cloud systems in presentation order.
func CloudTargets() []*Profile {
	return []*Profile{CloudA(), CloudB(), CloudC(), CloudD()}
}

// ByName resolves a profile by name (case-sensitive).
func ByName(name string) (*Profile, error) {
	switch name {
	case "Teradata", "teradata":
		return TeradataProfile(), nil
	case "CloudA", "clouda":
		return CloudA(), nil
	case "CloudB", "cloudb":
		return CloudB(), nil
	case "CloudC", "cloudc":
		return CloudC(), nil
	case "CloudD", "cloudd":
		return CloudD(), nil
	}
	return nil, fmt.Errorf("dialect: unknown profile %q", name)
}

// SupportPct computes, per feature, the percentage of the given targets that
// support it — the Figure 2 measurement.
func SupportPct(features []Capability, targets []*Profile) map[Capability]float64 {
	out := make(map[Capability]float64, len(features))
	for _, f := range features {
		n := 0
		for _, t := range targets {
			if t.Supports(f) {
				n++
			}
		}
		out[f] = 100 * float64(n) / float64(len(targets))
	}
	return out
}
