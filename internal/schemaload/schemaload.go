// Package schemaload imports Teradata-dialect DDL scripts into a gateway
// catalog — the stand-in for Hyper-Q's automated schema discovery, shared by
// the gateway and replay commands.
package schemaload

import (
	"fmt"
	"os"

	"hyperq/internal/binder"
	"hyperq/internal/catalog"
	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/xtra"
)

// ImportFile parses a Teradata DDL script file and registers its table,
// view, and macro definitions in the catalog (metadata only; no backend
// requests).
func ImportFile(cat *catalog.Catalog, path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Import(cat, string(src)); err != nil {
		return fmt.Errorf("schema %s: %w", path, err)
	}
	return nil
}

// Import parses Teradata DDL text and registers the definitions.
func Import(cat *catalog.Catalog, src string) error {
	stmts, err := parser.Parse(src, parser.Teradata, nil)
	if err != nil {
		return err
	}
	b := binder.New(cat, parser.Teradata, nil)
	for _, stmt := range stmts {
		switch stmt.(type) {
		case *sqlast.CreateTableStmt, *sqlast.CreateViewStmt, *sqlast.CreateMacroStmt:
		default:
			continue // non-DDL statements in schema files are skipped
		}
		bound, err := b.Bind(stmt)
		if err != nil {
			// Macros are gateway objects and bind specially.
			if cm, ok := stmt.(*sqlast.CreateMacroStmt); ok {
				m := &catalog.Macro{Name: cm.Name, Body: cm.Body}
				if err := cat.CreateMacro(m, cm.Replace); err != nil {
					return err
				}
				continue
			}
			return err
		}
		switch t := bound.(type) {
		case *xtra.CreateTable:
			if err := cat.CreateTable(t.Def); err != nil {
				return err
			}
		case *xtra.CreateView:
			if err := cat.CreateView(t.Def); err != nil {
				return err
			}
		}
	}
	return nil
}
