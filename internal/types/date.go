package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Calendar arithmetic for the DATE/TIMESTAMP datums. DATE values carry a
// civil encoding y*10000 + m*100 + d; TIMESTAMP values carry Unix
// microseconds. Teradata's internal integer DATE encoding (the one Example 2
// in the paper compares against INT literals) is (y-1900)*10000 + m*100 + d,
// i.e. the civil encoding minus 19_000_000.

// TeradataDateOffset converts between the civil DATE encoding and Teradata's
// internal integer encoding: teradataInt = civilEnc - TeradataDateOffset.
const TeradataDateOffset = 19000000

// DecodeDate splits a civil DATE encoding into year, month, day.
func DecodeDate(enc int64) (y, m, d int) {
	y = int(enc / 10000)
	m = int((enc / 100) % 100)
	d = int(enc % 100)
	return y, m, d
}

// EncodeDate packs year, month, day into the civil DATE encoding.
func EncodeDate(y, m, d int) int64 {
	return int64(y)*10000 + int64(m)*100 + int64(d)
}

// TeradataDateInt returns the Teradata internal integer for a DATE datum,
// e.g. 2014-01-01 -> 1140101.
func TeradataDateInt(d Datum) int64 { return d.I - TeradataDateOffset }

// DateFromTeradataInt builds a DATE datum from a Teradata internal integer.
func DateFromTeradataInt(v int64) Datum { return NewDateEnc(v + TeradataDateOffset) }

var daysInMonth = [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

func monthDays(y, m int) int {
	if m == 2 && isLeap(y) {
		return 29
	}
	return daysInMonth[m]
}

// ValidDate reports whether the civil components form a real calendar date.
func ValidDate(y, m, d int) bool {
	return y >= 1 && y <= 9999 && m >= 1 && m <= 12 && d >= 1 && d <= monthDays(y, m)
}

// DateToEpochDays converts a civil DATE encoding to days since 1970-01-01
// using the standard proleptic-Gregorian algorithm.
func DateToEpochDays(enc int64) int64 {
	y, m, d := DecodeDate(enc)
	// Howard Hinnant's days_from_civil.
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	mm := int64(m)
	var doy int64
	if mm > 2 {
		doy = (153*(mm-3)+2)/5 + int64(d) - 1
	} else {
		doy = (153*(mm+9)+2)/5 + int64(d) - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// EpochDaysToDate converts days since 1970-01-01 to a civil DATE encoding.
func EpochDaysToDate(z int64) int64 {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d := doy - (153*mp+2)/5 + 1
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return EncodeDate(int(y), int(m), int(d))
}

// AddDays returns the DATE datum d shifted by n calendar days.
func AddDays(d Datum, n int64) Datum {
	return NewDateEnc(EpochDaysToDate(DateToEpochDays(d.I) + n))
}

// AddMonths implements Teradata's ADD_MONTHS: shifts by n months, clamping
// the day to the end of the target month.
func AddMonths(d Datum, n int64) Datum {
	y, m, dd := DecodeDate(d.I)
	total := int64(y)*12 + int64(m-1) + n
	ny := int(total / 12)
	nm := int(total%12) + 1
	if total < 0 && total%12 != 0 {
		ny--
		nm += 12
	}
	if md := monthDays(ny, nm); dd > md {
		dd = md
	}
	return NewDate(ny, nm, dd)
}

// DiffDays returns a - b in calendar days.
func DiffDays(a, b Datum) int64 {
	return DateToEpochDays(a.I) - DateToEpochDays(b.I)
}

// ExtractField identifies a component for EXTRACT.
type ExtractField uint8

// Extractable fields.
const (
	FieldYear ExtractField = iota
	FieldMonth
	FieldDay
	FieldHour
	FieldMinute
	FieldSecond
)

func (f ExtractField) String() string {
	switch f {
	case FieldYear:
		return "YEAR"
	case FieldMonth:
		return "MONTH"
	case FieldDay:
		return "DAY"
	case FieldHour:
		return "HOUR"
	case FieldMinute:
		return "MINUTE"
	case FieldSecond:
		return "SECOND"
	}
	return "?"
}

// ParseExtractField resolves the SQL name of an EXTRACT field.
func ParseExtractField(s string) (ExtractField, bool) {
	switch strings.ToUpper(s) {
	case "YEAR":
		return FieldYear, true
	case "MONTH":
		return FieldMonth, true
	case "DAY":
		return FieldDay, true
	case "HOUR":
		return FieldHour, true
	case "MINUTE":
		return FieldMinute, true
	case "SECOND":
		return FieldSecond, true
	}
	return 0, false
}

const microsPerSecond = 1_000_000

// Extract evaluates EXTRACT(field FROM d) for DATE, TIME and TIMESTAMP.
func Extract(f ExtractField, d Datum) (Datum, error) {
	if d.Null {
		return NewNull(KindInt), nil
	}
	switch d.K {
	case KindDate:
		y, m, dd := DecodeDate(d.I)
		switch f {
		case FieldYear:
			return NewInt(int64(y)), nil
		case FieldMonth:
			return NewInt(int64(m)), nil
		case FieldDay:
			return NewInt(int64(dd)), nil
		}
	case KindTime:
		switch f {
		case FieldHour:
			return NewInt(d.I / 3600), nil
		case FieldMinute:
			return NewInt((d.I / 60) % 60), nil
		case FieldSecond:
			return NewInt(d.I % 60), nil
		}
	case KindTimestamp:
		secs := d.I / microsPerSecond
		days := secs / 86400
		rem := secs % 86400
		if rem < 0 {
			days--
			rem += 86400
		}
		switch f {
		case FieldYear, FieldMonth, FieldDay:
			return Extract(f, NewDateEnc(EpochDaysToDate(days)))
		case FieldHour:
			return NewInt(rem / 3600), nil
		case FieldMinute:
			return NewInt((rem / 60) % 60), nil
		case FieldSecond:
			return NewInt(rem % 60), nil
		}
	}
	return Datum{}, fmt.Errorf("types: cannot EXTRACT(%s) from %s", f, d.K)
}

// ParseDateLiteral parses 'YYYY-MM-DD' (also YYYY/MM/DD) into a DATE datum.
func ParseDateLiteral(s string) (Datum, error) {
	s = strings.TrimSpace(s)
	sep := "-"
	if strings.Contains(s, "/") {
		sep = "/"
	}
	parts := strings.Split(s, sep)
	if len(parts) != 3 {
		return Datum{}, fmt.Errorf("types: invalid DATE literal %q", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || !ValidDate(y, m, d) {
		return Datum{}, fmt.Errorf("types: invalid DATE literal %q", s)
	}
	return NewDate(y, m, d), nil
}

// ParseTimestampLiteral parses 'YYYY-MM-DD HH:MM:SS[.ffffff]'.
func ParseTimestampLiteral(s string) (Datum, error) {
	s = strings.TrimSpace(s)
	datePart := s
	timePart := ""
	if i := strings.IndexAny(s, " T"); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
	}
	d, err := ParseDateLiteral(datePart)
	if err != nil {
		return Datum{}, fmt.Errorf("types: invalid TIMESTAMP literal %q", s)
	}
	micros := DateToEpochDays(d.I) * 86400 * microsPerSecond
	if timePart != "" {
		secs, frac, err := parseTimeOfDay(timePart)
		if err != nil {
			return Datum{}, fmt.Errorf("types: invalid TIMESTAMP literal %q", s)
		}
		micros += secs*microsPerSecond + frac
	}
	return NewTimestamp(micros), nil
}

// ParseTimeLiteral parses 'HH:MM:SS' into a TIME datum.
func ParseTimeLiteral(s string) (Datum, error) {
	secs, _, err := parseTimeOfDay(strings.TrimSpace(s))
	if err != nil {
		return Datum{}, fmt.Errorf("types: invalid TIME literal %q", s)
	}
	return NewTime(secs), nil
}

func parseTimeOfDay(s string) (secs int64, micros int64, err error) {
	frac := ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s, frac = s[:i], s[i+1:]
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, fmt.Errorf("bad time %q", s)
	}
	h, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	sec, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || h < 0 || h > 23 || m < 0 || m > 59 || sec < 0 || sec > 59 {
		return 0, 0, fmt.Errorf("bad time %q", s)
	}
	if frac != "" {
		for len(frac) < 6 {
			frac += "0"
		}
		micros, err = strconv.ParseInt(frac[:6], 10, 64)
		if err != nil {
			return 0, 0, err
		}
	}
	return int64(h)*3600 + int64(m)*60 + int64(sec), micros, nil
}

// FormatTimestamp renders Unix microseconds as 'YYYY-MM-DD HH:MM:SS'.
func FormatTimestamp(micros int64) string {
	secs := micros / microsPerSecond
	days := secs / 86400
	rem := secs % 86400
	if rem < 0 {
		days--
		rem += 86400
	}
	y, m, d := DecodeDate(EpochDaysToDate(days))
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d", y, m, d, rem/3600, (rem/60)%60, rem%60)
}
