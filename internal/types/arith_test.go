package types

import (
	"testing"
	"testing/quick"
)

func mustArith(t *testing.T, op ArithOp, l, r Datum) Datum {
	t.Helper()
	d, err := Arith(op, l, r)
	if err != nil {
		t.Fatalf("Arith(%v %s %v): %v", l, op, r, err)
	}
	return d
}

func TestIntArith(t *testing.T) {
	if got := mustArith(t, OpAdd, NewInt(2), NewInt(3)); got.I != 5 || got.K != KindInt {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustArith(t, OpDiv, NewInt(7), NewInt(2)); got.I != 3 {
		t.Errorf("integer division 7/2 = %v, want 3", got)
	}
	if got := mustArith(t, OpMod, NewInt(7), NewInt(3)); got.I != 1 {
		t.Errorf("7 MOD 3 = %v", got)
	}
	if got := mustArith(t, OpMul, NewInt(4), NewBigInt(5)); got.K != KindBigInt || got.I != 20 {
		t.Errorf("int*bigint = %v", got)
	}
}

func TestFloatPromotion(t *testing.T) {
	got := mustArith(t, OpDiv, NewInt(7), NewFloat(2))
	if got.K != KindFloat || got.F != 3.5 {
		t.Errorf("7/2.0 = %v", got)
	}
}

func TestDecimalArith(t *testing.T) {
	a := NewDecimal(1050, 2) // 10.50
	b := NewDecimal(25, 1)   // 2.5
	if got := mustArith(t, OpAdd, a, b); got.String() != "13.00" {
		t.Errorf("10.50+2.5 = %s", got)
	}
	if got := mustArith(t, OpSub, a, b); got.String() != "8.00" {
		t.Errorf("10.50-2.5 = %s", got)
	}
	if got := mustArith(t, OpMul, a, b); got.String() != "26.250" {
		t.Errorf("10.50*2.5 = %s", got)
	}
	// The paper's Example 2 expression AMOUNT * 0.85.
	amount := NewDecimal(10000, 2) // 100.00
	rate := NewDecimal(85, 2)      // 0.85
	if got := mustArith(t, OpMul, amount, rate); got.String() != "85.0000" {
		t.Errorf("100.00*0.85 = %s", got)
	}
	div := mustArith(t, OpDiv, a, b)
	if div.AsFloat() != 4.2 {
		t.Errorf("10.50/2.5 = %s", div)
	}
}

func TestDecimalIntMix(t *testing.T) {
	if got := mustArith(t, OpAdd, NewDecimal(150, 2), NewInt(1)); got.String() != "2.50" {
		t.Errorf("1.50+1 = %s", got)
	}
}

func TestDateArith(t *testing.T) {
	d := NewDate(2014, 1, 1)
	if got := mustArith(t, OpAdd, d, NewInt(31)); got.String() != "2014-02-01" {
		t.Errorf("date+31 = %s", got)
	}
	if got := mustArith(t, OpSub, d, NewInt(1)); got.String() != "2013-12-31" {
		t.Errorf("date-1 = %s", got)
	}
	if got := mustArith(t, OpAdd, NewInt(1), d); got.String() != "2014-01-02" {
		t.Errorf("1+date = %s", got)
	}
	if got := mustArith(t, OpSub, NewDate(2014, 2, 1), d); got.I != 31 {
		t.Errorf("date-date = %v", got)
	}
	if _, err := Arith(OpMul, d, NewInt(2)); err == nil {
		t.Error("date*int should fail")
	}
}

func TestNullPropagation(t *testing.T) {
	got := mustArith(t, OpAdd, NewNull(KindInt), NewInt(1))
	if !got.Null || got.K != KindInt {
		t.Errorf("NULL+1 = %v", got)
	}
	got = mustArith(t, OpMul, NewFloat(2), NewNull(KindFloat))
	if !got.Null {
		t.Errorf("2.0*NULL = %v", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, pair := range [][2]Datum{
		{NewInt(1), NewInt(0)},
		{NewFloat(1), NewFloat(0)},
		{NewDecimal(100, 2), NewDecimal(0, 2)},
	} {
		if _, err := Arith(OpDiv, pair[0], pair[1]); err == nil {
			t.Errorf("%v/%v should fail", pair[0], pair[1])
		}
	}
}

func TestNeg(t *testing.T) {
	if got, _ := Neg(NewInt(5)); got.I != -5 {
		t.Errorf("Neg(5) = %v", got)
	}
	if got, _ := Neg(NewDecimal(150, 2)); got.String() != "-1.50" {
		t.Errorf("Neg(1.50) = %v", got)
	}
	if got, _ := Neg(NewFloat(2.5)); got.F != -2.5 {
		t.Errorf("Neg(2.5) = %v", got)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg of string should fail")
	}
	if got, _ := Neg(NewNull(KindInt)); !got.Null {
		t.Error("Neg(NULL) should be NULL")
	}
}

func TestCastNumeric(t *testing.T) {
	if got, err := Cast(NewString(" 42 "), Int); err != nil || got.I != 42 {
		t.Errorf("cast ' 42 ' to int: %v %v", got, err)
	}
	if got, err := Cast(NewFloat(3.99), BigInt); err != nil || got.I != 3 {
		t.Errorf("cast 3.99 to bigint: %v %v", got, err)
	}
	if got, err := Cast(NewInt(5), Decimal(10, 2)); err != nil || got.String() != "5.00" {
		t.Errorf("cast 5 to decimal: %v %v", got, err)
	}
	if _, err := Cast(NewString("abc"), Int); err == nil {
		t.Error("cast 'abc' to int should fail")
	}
}

func TestCastStrings(t *testing.T) {
	if got, _ := Cast(NewInt(42), VarChar(0)); got.S != "42" {
		t.Errorf("int to varchar: %q", got.S)
	}
	if got, _ := Cast(NewString("hello"), Char(8)); got.S != "hello   " {
		t.Errorf("char padding: %q", got.S)
	}
	if got, _ := Cast(NewString("hello"), VarChar(3)); got.S != "hel" {
		t.Errorf("varchar truncation: %q", got.S)
	}
}

func TestCastTemporal(t *testing.T) {
	if got, err := Cast(NewString("2014-01-01"), Date); err != nil || got.String() != "2014-01-01" {
		t.Errorf("string to date: %v %v", got, err)
	}
	// Teradata int<->date casts via internal encoding.
	if got, err := Cast(NewInt(1140101), Date); err != nil || got.String() != "2014-01-01" {
		t.Errorf("int to date: %v %v", got, err)
	}
	if got, err := Cast(NewDate(2014, 1, 1), Int); err != nil || got.I != 1140101 {
		t.Errorf("date to int: %v %v", got, err)
	}
	ts, err := Cast(NewDate(2014, 1, 1), Timestamp)
	if err != nil || ts.String() != "2014-01-01 00:00:00" {
		t.Errorf("date to timestamp: %v %v", ts, err)
	}
	back, err := Cast(ts, Date)
	if err != nil || back.String() != "2014-01-01" {
		t.Errorf("timestamp to date: %v %v", back, err)
	}
}

func TestCastNull(t *testing.T) {
	got, err := Cast(NewNull(KindVarChar), Int)
	if err != nil || !got.Null || got.K != KindInt {
		t.Errorf("cast NULL: %v %v", got, err)
	}
}

func TestArithResultTypeMatchesRuntime(t *testing.T) {
	// Property: the statically derived type kind always matches the runtime
	// result kind for non-null numeric operands.
	f := func(a, b int32, opn uint8) bool {
		op := ArithOp(opn % 4)
		l, r := NewInt(int64(a)), NewDecimal(int64(b), 2)
		rt, err1 := ArithResultType(op, l.Type(), r.Type())
		got, err2 := Arith(op, l, r)
		if err1 != nil || err2 != nil {
			// Division by zero is the only runtime-only failure.
			return op == OpDiv && r.I == 0
		}
		return got.K == rt.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is antisymmetric and consistent with arithmetic on
// decimals of mixed scale.
func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int32, sa, sb uint8) bool {
		da := NewDecimal(int64(a), int(sa%4))
		db := NewDecimal(int64(b), int(sb%4))
		c1, err1 := Compare(da, db)
		c2, err2 := Compare(db, da)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCommonSupertype(t *testing.T) {
	cases := []struct {
		a, b, want T
	}{
		{Int, BigInt, BigInt},
		{Int, Float, Float},
		{Decimal(10, 2), Int, Decimal(10, 2)},
		{Decimal(10, 2), Float, Float},
		{Char(3), VarChar(10), VarChar(10)},
		{Null, Int, Int},
		{Date, Timestamp, Timestamp},
	}
	for _, c := range cases {
		got, err := CommonSupertype(c.a, c.b)
		if err != nil {
			t.Fatalf("CommonSupertype(%s,%s): %v", c.a, c.b, err)
		}
		if got.Kind != c.want.Kind {
			t.Errorf("CommonSupertype(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if _, err := CommonSupertype(Int, Date); err == nil {
		t.Error("Int/Date should have no common supertype (Teradata exception is a rewrite)")
	}
}

func TestCanCompare(t *testing.T) {
	if !CanCompare(Int, Decimal(10, 2)) || !CanCompare(Char(1), VarChar(9)) || !CanCompare(Null, Date) {
		t.Error("CanCompare false negative")
	}
	if CanCompare(Date, Int) {
		t.Error("DATE/INT must not be directly comparable (paper §5.2)")
	}
}
