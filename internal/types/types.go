// Package types implements the SQL type system shared by every layer of the
// Hyper-Q reproduction: the Teradata frontend dialect, the XTRA algebra, the
// cloud-engine substrate, and the wire/TDF encodings.
//
// The type system deliberately includes the vendor-specific behaviours the
// paper calls out: Teradata's internal integer encoding of DATE values
// (Section 5.2), the compound PERIOD type (Section 2.2.2), and fixed-point
// DECIMAL arithmetic.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the physical type families understood by the system.
type Kind uint8

// The supported type kinds. KindNull is the type of an untyped NULL literal
// before coercion.
const (
	KindNull Kind = iota
	KindBool
	KindInt     // 32-bit INTEGER (also SMALLINT, BYTEINT after widening)
	KindBigInt  // 64-bit BIGINT
	KindFloat   // FLOAT / DOUBLE PRECISION / REAL
	KindDecimal // DECIMAL(p,s), fixed point
	KindChar    // CHAR(n), blank padded
	KindVarChar // VARCHAR(n)
	KindDate    // DATE
	KindTime    // TIME
	KindTimestamp
	KindPeriod // PERIOD(DATE) / PERIOD(TIMESTAMP): Teradata compound type
	KindBytes  // BYTE / VARBYTE
	KindInterval
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindBigInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindDecimal:
		return "DECIMAL"
	case KindChar:
		return "CHAR"
	case KindVarChar:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindTime:
		return "TIME"
	case KindTimestamp:
		return "TIMESTAMP"
	case KindPeriod:
		return "PERIOD"
	case KindBytes:
		return "BYTES"
	case KindInterval:
		return "INTERVAL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// T is a fully resolved SQL type.
type T struct {
	Kind      Kind
	Length    int  // CHAR/VARCHAR/BYTES declared length; 0 = unbounded
	Precision int  // DECIMAL precision
	Scale     int  // DECIMAL scale
	Elem      Kind // PERIOD element kind (KindDate or KindTimestamp)
}

// Convenience constructors for the common types.
var (
	Null      = T{Kind: KindNull}
	Bool      = T{Kind: KindBool}
	Int       = T{Kind: KindInt}
	BigInt    = T{Kind: KindBigInt}
	Float     = T{Kind: KindFloat}
	Date      = T{Kind: KindDate}
	Time      = T{Kind: KindTime}
	Timestamp = T{Kind: KindTimestamp}
	Interval  = T{Kind: KindInterval}
)

// Decimal returns a DECIMAL(p,s) type.
func Decimal(p, s int) T { return T{Kind: KindDecimal, Precision: p, Scale: s} }

// Char returns a CHAR(n) type.
func Char(n int) T { return T{Kind: KindChar, Length: n} }

// VarChar returns a VARCHAR(n) type; n == 0 means unbounded.
func VarChar(n int) T { return T{Kind: KindVarChar, Length: n} }

// Period returns a PERIOD(elem) compound type.
func Period(elem Kind) T { return T{Kind: KindPeriod, Elem: elem} }

// Bytes returns a VARBYTE(n) type.
func Bytes(n int) T { return T{Kind: KindBytes, Length: n} }

// String renders the type in SQL syntax.
func (t T) String() string {
	switch t.Kind {
	case KindDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Precision, t.Scale)
	case KindChar:
		if t.Length > 0 {
			return fmt.Sprintf("CHAR(%d)", t.Length)
		}
		return "CHAR"
	case KindVarChar:
		if t.Length > 0 {
			return fmt.Sprintf("VARCHAR(%d)", t.Length)
		}
		return "VARCHAR"
	case KindPeriod:
		return fmt.Sprintf("PERIOD(%s)", t.Elem)
	case KindBytes:
		if t.Length > 0 {
			return fmt.Sprintf("VARBYTE(%d)", t.Length)
		}
		return "VARBYTE"
	}
	return t.Kind.String()
}

// Equal reports whether two types are identical, ignoring CHAR/VARCHAR
// declared lengths (which do not affect runtime semantics here).
func (t T) Equal(o T) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindDecimal:
		return t.Scale == o.Scale
	case KindPeriod:
		return t.Elem == o.Elem
	}
	return true
}

// IsNumeric reports whether the type participates in numeric arithmetic.
func (t T) IsNumeric() bool {
	switch t.Kind {
	case KindInt, KindBigInt, KindFloat, KindDecimal:
		return true
	}
	return false
}

// IsString reports whether the type is a character string type.
func (t T) IsString() bool { return t.Kind == KindChar || t.Kind == KindVarChar }

// IsTemporal reports whether the type is a date/time type.
func (t T) IsTemporal() bool {
	switch t.Kind {
	case KindDate, KindTime, KindTimestamp:
		return true
	}
	return false
}

// ParseTypeName resolves a SQL type name (as appearing in DDL) to a type.
// It accepts both Teradata and ANSI spellings.
func ParseTypeName(name string, args ...int) (T, error) {
	arg := func(i, def int) int {
		if i < len(args) {
			return args[i]
		}
		return def
	}
	switch strings.ToUpper(name) {
	case "BYTEINT", "SMALLINT", "INT", "INTEGER":
		return Int, nil
	case "BIGINT":
		return BigInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DOUBLE PRECISION":
		return Float, nil
	case "DECIMAL", "DEC", "NUMERIC", "NUMBER":
		return Decimal(arg(0, 18), arg(1, 0)), nil
	case "CHAR", "CHARACTER":
		return Char(arg(0, 1)), nil
	case "VARCHAR", "CHARACTER VARYING", "CHAR VARYING", "TEXT":
		return VarChar(arg(0, 0)), nil
	case "DATE":
		return Date, nil
	case "TIME":
		return Time, nil
	case "TIMESTAMP":
		return Timestamp, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	case "BYTE", "VARBYTE", "BLOB":
		return Bytes(arg(0, 0)), nil
	case "PERIOD(DATE)":
		return Period(KindDate), nil
	case "PERIOD(TIMESTAMP)":
		return Period(KindTimestamp), nil
	}
	return Null, fmt.Errorf("types: unknown type name %q", name)
}
