package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochDaysRoundTrip(t *testing.T) {
	cases := []struct {
		enc  int64
		days int64
	}{
		{EncodeDate(1970, 1, 1), 0},
		{EncodeDate(1970, 1, 2), 1},
		{EncodeDate(1969, 12, 31), -1},
		{EncodeDate(2000, 3, 1), 11017},
		{EncodeDate(2014, 1, 1), 16071},
	}
	for _, c := range cases {
		if got := DateToEpochDays(c.enc); got != c.days {
			t.Errorf("DateToEpochDays(%d) = %d, want %d", c.enc, got, c.days)
		}
		if got := EpochDaysToDate(c.days); got != c.enc {
			t.Errorf("EpochDaysToDate(%d) = %d, want %d", c.days, got, c.enc)
		}
	}
}

// Property: our civil-date conversion agrees with the standard library over
// a wide range of epoch days.
func TestEpochDaysMatchesStdlib(t *testing.T) {
	f := func(n int32) bool {
		days := int64(n % 200000) // ± ~547 years around the epoch
		enc := EpochDaysToDate(days)
		y, m, d := DecodeDate(enc)
		tm := time.Unix(days*86400, 0).UTC()
		return tm.Year() == y && int(tm.Month()) == m && tm.Day() == d &&
			DateToEpochDays(enc) == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTeradataDateInt(t *testing.T) {
	// The paper's Example 2: 1140101 is the internal form of 2014-01-01.
	d := NewDate(2014, 1, 1)
	if got := TeradataDateInt(d); got != 1140101 {
		t.Errorf("TeradataDateInt = %d, want 1140101", got)
	}
	if got := DateFromTeradataInt(1140101); got.I != d.I {
		t.Errorf("DateFromTeradataInt mismatch: %v", got)
	}
	// And the rewrite formula DAY + MONTH*100 + (YEAR-1900)*10000.
	y, m, dd := DecodeDate(d.I)
	if int64(dd)+int64(m)*100+int64(y-1900)*10000 != 1140101 {
		t.Error("rewrite formula does not match internal encoding")
	}
}

func TestAddDays(t *testing.T) {
	d := NewDate(2020, 2, 28)
	if got := AddDays(d, 1); got.String() != "2020-02-29" {
		t.Errorf("leap day: %s", got)
	}
	if got := AddDays(d, 2); got.String() != "2020-03-01" {
		t.Errorf("leap rollover: %s", got)
	}
	if got := AddDays(NewDate(2021, 1, 1), -1); got.String() != "2020-12-31" {
		t.Errorf("year rollback: %s", got)
	}
}

func TestAddMonths(t *testing.T) {
	cases := []struct {
		in   Datum
		n    int64
		want string
	}{
		{NewDate(2020, 1, 31), 1, "2020-02-29"}, // clamp to leap February
		{NewDate(2019, 1, 31), 1, "2019-02-28"},
		{NewDate(2020, 11, 30), 3, "2021-02-28"},
		{NewDate(2020, 3, 15), -3, "2019-12-15"},
		{NewDate(2020, 6, 30), 0, "2020-06-30"},
	}
	for _, c := range cases {
		if got := AddMonths(c.in, c.n); got.String() != c.want {
			t.Errorf("AddMonths(%s, %d) = %s, want %s", c.in, c.n, got, c.want)
		}
	}
}

func TestDiffDays(t *testing.T) {
	a, b := NewDate(2020, 3, 1), NewDate(2020, 2, 1)
	if got := DiffDays(a, b); got != 29 {
		t.Errorf("DiffDays = %d, want 29", got)
	}
	if got := DiffDays(b, a); got != -29 {
		t.Errorf("DiffDays = %d, want -29", got)
	}
}

func TestExtract(t *testing.T) {
	d := NewDate(2014, 7, 23)
	for _, c := range []struct {
		f    ExtractField
		want int64
	}{{FieldYear, 2014}, {FieldMonth, 7}, {FieldDay, 23}} {
		got, err := Extract(c.f, d)
		if err != nil || got.I != c.want {
			t.Errorf("Extract(%s) = %v, %v; want %d", c.f, got, err, c.want)
		}
	}
	ts, err := ParseTimestampLiteral("2014-07-23 13:45:06")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		f    ExtractField
		want int64
	}{{FieldYear, 2014}, {FieldHour, 13}, {FieldMinute, 45}, {FieldSecond, 6}} {
		got, err := Extract(c.f, ts)
		if err != nil || got.I != c.want {
			t.Errorf("Extract(%s, ts) = %v, %v; want %d", c.f, got, err, c.want)
		}
	}
	if _, err := Extract(FieldHour, d); err == nil {
		t.Error("Extract(HOUR, date) should fail")
	}
	if got, err := Extract(FieldYear, NewNull(KindDate)); err != nil || !got.Null {
		t.Error("Extract of NULL should be NULL")
	}
}

func TestParseDateLiteral(t *testing.T) {
	d, err := ParseDateLiteral("2014-01-01")
	if err != nil || d.I != EncodeDate(2014, 1, 1) {
		t.Fatalf("ParseDateLiteral: %v %v", d, err)
	}
	if _, err := ParseDateLiteral("2014-02-30"); err == nil {
		t.Error("accepted invalid date")
	}
	if _, err := ParseDateLiteral("garbage"); err == nil {
		t.Error("accepted garbage")
	}
	d2, err := ParseDateLiteral("1999/12/31")
	if err != nil || d2.String() != "1999-12-31" {
		t.Errorf("slash form: %v %v", d2, err)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		// Keep within years 1902..2038 so the civil year stays in the
		// parseable 1..9999 range.
		micros := int64(n) * microsPerSecond
		s := FormatTimestamp(micros)
		back, err := ParseTimestampLiteral(s)
		return err == nil && back.I == micros
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTimeLiteral(t *testing.T) {
	d, err := ParseTimeLiteral("13:05:09")
	if err != nil || d.I != 13*3600+5*60+9 {
		t.Fatalf("ParseTimeLiteral: %v %v", d, err)
	}
	if _, err := ParseTimeLiteral("25:00:00"); err == nil {
		t.Error("accepted invalid hour")
	}
}

func TestParseExtractField(t *testing.T) {
	for _, s := range []string{"YEAR", "month", "Day", "HOUR", "minute", "SECOND"} {
		if _, ok := ParseExtractField(s); !ok {
			t.Errorf("ParseExtractField(%q) failed", s)
		}
	}
	if _, ok := ParseExtractField("EPOCH"); ok {
		t.Error("accepted unsupported field")
	}
}
