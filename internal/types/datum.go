package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Datum is a single SQL value. The zero value is the SQL NULL.
//
// Representation by kind:
//
//	Bool              I (0 or 1)
//	Int, BigInt       I
//	Float             F
//	Decimal           I scaled by 10^Scale
//	Char, VarChar     S
//	Bytes             S (raw bytes)
//	Date              I, civil encoding y*10000+m*100+d (e.g. 20140101)
//	Time              I, seconds since midnight
//	Timestamp         I, microseconds since the Unix epoch
//	Interval          I, microseconds (day-time) — months not modeled
//	Period            PStart/PEnd hold the element encodings
type Datum struct {
	K      Kind
	Null   bool
	I      int64
	F      float64
	S      string
	Scale  int8 // decimal scale
	PStart int64
	PEnd   int64
}

// Constructors.

// NewNull returns the SQL NULL of the given kind.
func NewNull(k Kind) Datum { return Datum{K: k, Null: true} }

// NewBool returns a BOOLEAN datum.
func NewBool(b bool) Datum {
	d := Datum{K: KindBool}
	if b {
		d.I = 1
	}
	return d
}

// NewInt returns an INTEGER datum.
func NewInt(v int64) Datum { return Datum{K: KindInt, I: v} }

// NewBigInt returns a BIGINT datum.
func NewBigInt(v int64) Datum { return Datum{K: KindBigInt, I: v} }

// NewFloat returns a FLOAT datum.
func NewFloat(v float64) Datum { return Datum{K: KindFloat, F: v} }

// NewDecimal returns a DECIMAL datum from a scaled integer, e.g.
// NewDecimal(12345, 2) is 123.45.
func NewDecimal(scaled int64, scale int) Datum {
	return Datum{K: KindDecimal, I: scaled, Scale: int8(scale)}
}

// NewString returns a VARCHAR datum.
func NewString(s string) Datum { return Datum{K: KindVarChar, S: s} }

// NewChar returns a CHAR datum.
func NewChar(s string) Datum { return Datum{K: KindChar, S: s} }

// NewBytes returns a BYTES datum.
func NewBytes(b []byte) Datum { return Datum{K: KindBytes, S: string(b)} }

// NewDate returns a DATE datum from civil components.
func NewDate(y, m, d int) Datum {
	return Datum{K: KindDate, I: int64(y)*10000 + int64(m)*100 + int64(d)}
}

// NewDateEnc returns a DATE datum from the civil encoding y*10000+m*100+d.
func NewDateEnc(enc int64) Datum { return Datum{K: KindDate, I: enc} }

// NewTime returns a TIME datum from seconds since midnight.
func NewTime(secs int64) Datum { return Datum{K: KindTime, I: secs} }

// NewTimestamp returns a TIMESTAMP datum from Unix microseconds.
func NewTimestamp(micros int64) Datum { return Datum{K: KindTimestamp, I: micros} }

// NewInterval returns a day-time INTERVAL datum in microseconds.
func NewInterval(micros int64) Datum { return Datum{K: KindInterval, I: micros} }

// NewPeriod returns a PERIOD datum over element kind elem.
func NewPeriod(elem Kind, start, end int64) Datum {
	return Datum{K: KindPeriod, PStart: start, PEnd: end, I: int64(elem)}
}

// PeriodElem returns the element kind of a PERIOD datum.
func (d Datum) PeriodElem() Kind { return Kind(d.I) }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.Null }

// Bool returns the boolean value. Callers must check IsNull first.
func (d Datum) Bool() bool { return !d.Null && d.I != 0 }

// AsFloat converts any numeric datum to float64.
func (d Datum) AsFloat() float64 {
	switch d.K {
	case KindFloat:
		return d.F
	case KindDecimal:
		return float64(d.I) / math.Pow10(int(d.Scale))
	default:
		return float64(d.I)
	}
}

// AsInt converts any numeric datum to int64, truncating toward zero.
func (d Datum) AsInt() int64 {
	switch d.K {
	case KindFloat:
		return int64(d.F)
	case KindDecimal:
		p := pow10(int(d.Scale))
		return d.I / p
	default:
		return d.I
	}
}

// DecimalScaled returns the value as a scaled integer at the requested scale.
func (d Datum) DecimalScaled(scale int) int64 {
	switch d.K {
	case KindDecimal:
		if int(d.Scale) == scale {
			return d.I
		}
		if int(d.Scale) < scale {
			return d.I * pow10(scale-int(d.Scale))
		}
		return d.I / pow10(int(d.Scale)-scale)
	case KindFloat:
		return int64(math.Round(d.F * math.Pow10(scale)))
	default:
		return d.I * pow10(scale)
	}
}

func pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

// String renders the datum in SQL literal style (without quotes escaping
// beyond doubling). NULL renders as "NULL".
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.K {
	case KindBool:
		if d.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt, KindBigInt:
		return strconv.FormatInt(d.I, 10)
	case KindFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindDecimal:
		return formatDecimal(d.I, int(d.Scale))
	case KindChar, KindVarChar:
		return d.S
	case KindBytes:
		return fmt.Sprintf("%X", d.S)
	case KindDate:
		y, m, dd := DecodeDate(d.I)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
	case KindTime:
		return fmt.Sprintf("%02d:%02d:%02d", d.I/3600, (d.I/60)%60, d.I%60)
	case KindTimestamp:
		return FormatTimestamp(d.I)
	case KindInterval:
		return fmt.Sprintf("INTERVAL %d USEC", d.I)
	case KindPeriod:
		s := Datum{K: d.PeriodElem(), I: d.PStart}
		e := Datum{K: d.PeriodElem(), I: d.PEnd}
		return fmt.Sprintf("(%s, %s)", s, e)
	}
	return fmt.Sprintf("<%s>", d.K)
}

func formatDecimal(scaled int64, scale int) string {
	if scale == 0 {
		return strconv.FormatInt(scaled, 10)
	}
	neg := scaled < 0
	if neg {
		scaled = -scaled
	}
	p := pow10(scale)
	whole, frac := scaled/p, scaled%p
	s := fmt.Sprintf("%d.%0*d", whole, scale, frac)
	if neg {
		return "-" + s
	}
	return s
}

// SQLLiteral renders the datum as a SQL literal suitable for embedding in
// generated query text.
func (d Datum) SQLLiteral() string {
	if d.Null {
		return "NULL"
	}
	switch d.K {
	case KindChar, KindVarChar:
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	case KindDate:
		return "DATE '" + d.String() + "'"
	case KindTime:
		return "TIME '" + d.String() + "'"
	case KindTimestamp:
		return "TIMESTAMP '" + d.String() + "'"
	case KindBytes:
		return fmt.Sprintf("X'%X'", d.S)
	default:
		return d.String()
	}
}

// AppendSQLLiteral appends the SQLLiteral rendering of d to b and returns
// the extended slice. The translation cache splices literal vectors into
// cached SQL templates with it so a fingerprint-tier hit serializes each
// datum straight into the output buffer, with no intermediate strings. The
// output is byte-identical to SQLLiteral for every kind.
func (d Datum) AppendSQLLiteral(b []byte) []byte {
	if d.Null {
		return append(b, "NULL"...)
	}
	switch d.K {
	case KindBool:
		if d.I != 0 {
			return append(b, "TRUE"...)
		}
		return append(b, "FALSE"...)
	case KindInt, KindBigInt:
		return strconv.AppendInt(b, d.I, 10)
	case KindFloat:
		return strconv.AppendFloat(b, d.F, 'g', -1, 64)
	case KindDecimal:
		return appendDecimal(b, d.I, int(d.Scale))
	case KindChar, KindVarChar:
		b = append(b, '\'')
		s := d.S
		for {
			i := strings.IndexByte(s, '\'')
			if i < 0 {
				b = append(b, s...)
				break
			}
			b = append(b, s[:i+1]...)
			b = append(b, '\'')
			s = s[i+1:]
		}
		return append(b, '\'')
	case KindDate:
		y, m, dd := DecodeDate(d.I)
		if y >= 0 {
			b = append(b, "DATE '"...)
			b = appendZeroPad(b, int64(y), 4)
			b = append(b, '-')
			b = appendZeroPad(b, int64(m), 2)
			b = append(b, '-')
			b = appendZeroPad(b, int64(dd), 2)
			return append(b, '\'')
		}
	case KindTime:
		if d.I >= 0 {
			b = append(b, "TIME '"...)
			b = appendZeroPad(b, d.I/3600, 2)
			b = append(b, ':')
			b = appendZeroPad(b, (d.I/60)%60, 2)
			b = append(b, ':')
			b = appendZeroPad(b, d.I%60, 2)
			return append(b, '\'')
		}
	}
	// Rare kinds (TIMESTAMP, BYTES, INTERVAL, PERIOD) and defensive
	// fallbacks go through the string renderer.
	return append(b, d.SQLLiteral()...)
}

// appendZeroPad appends v (non-negative) zero-padded to at least width
// digits, mirroring fmt's %0*d.
func appendZeroPad(b []byte, v int64, width int) []byte {
	digits := 1
	for x := v; x >= 10; x /= 10 {
		digits++
	}
	for ; digits < width; width-- {
		b = append(b, '0')
	}
	return strconv.AppendInt(b, v, 10)
}

// appendDecimal appends the formatDecimal rendering.
func appendDecimal(b []byte, scaled int64, scale int) []byte {
	if scale == 0 {
		return strconv.AppendInt(b, scaled, 10)
	}
	if scaled < 0 {
		b = append(b, '-')
		scaled = -scaled
	}
	p := pow10(scale)
	b = strconv.AppendInt(b, scaled/p, 10)
	b = append(b, '.')
	return appendZeroPad(b, scaled%p, scale)
}

// Type returns the runtime type of the datum. CHAR/VARCHAR lengths and
// DECIMAL precision are not tracked on values.
func (d Datum) Type() T {
	switch d.K {
	case KindDecimal:
		return Decimal(18, int(d.Scale))
	case KindPeriod:
		return Period(d.PeriodElem())
	default:
		return T{Kind: d.K}
	}
}

// Equal reports deep equality of two datums, with NULL == NULL. It is used
// for test assertions and hashing, not SQL comparison semantics (see Compare).
func (d Datum) Equal(o Datum) bool {
	if d.Null || o.Null {
		return d.Null == o.Null
	}
	c, err := Compare(d, o)
	return err == nil && c == 0
}

// HashKey returns a string key under which the datum groups/dedups with SQL
// equality semantics (numeric cross-kind equality, CHAR blank padding).
func (d Datum) HashKey() string {
	return string(d.AppendHashKey(nil))
}

// AppendHashKey appends the HashKey bytes to b and returns the extended
// slice. Hot engine paths (hash aggregation, hash joins, DISTINCT) use it
// with a reused buffer so key construction does not allocate per row.
func (d Datum) AppendHashKey(b []byte) []byte {
	if d.Null {
		return append(b, '\x00', 'N')
	}
	switch d.K {
	case KindBool:
		return strconv.AppendInt(append(b, 'b'), d.I, 10)
	case KindInt, KindBigInt:
		return strconv.AppendInt(append(b, 'i'), d.I, 10)
	case KindFloat:
		if d.F == math.Trunc(d.F) && math.Abs(d.F) < 1e15 {
			return strconv.AppendInt(append(b, 'i'), int64(d.F), 10)
		}
		return strconv.AppendFloat(append(b, 'f'), d.F, 'b', -1, 64)
	case KindDecimal:
		// Normalize by stripping trailing zero scale.
		v, s := d.I, int(d.Scale)
		for s > 0 && v%10 == 0 {
			v /= 10
			s--
		}
		if s == 0 {
			return strconv.AppendInt(append(b, 'i'), v, 10)
		}
		b = strconv.AppendInt(append(b, 'd'), v, 10)
		return strconv.AppendInt(append(b, '@'), int64(s), 10)
	case KindChar, KindVarChar:
		return append(append(b, 's'), strings.TrimRight(d.S, " ")...)
	case KindDate:
		return strconv.AppendInt(append(b, 'D'), d.I, 10)
	case KindTime, KindTimestamp, KindInterval:
		return strconv.AppendInt(append(b, 't'), d.I, 10)
	case KindBytes:
		return append(append(b, 'y'), d.S...)
	case KindPeriod:
		b = strconv.AppendInt(append(b, 'p'), d.PStart, 10)
		return strconv.AppendInt(append(b, ':'), d.PEnd, 10)
	}
	return append(b, '?')
}

// Compare compares two datums with SQL semantics, returning -1, 0 or +1.
// NULL compares are the caller's responsibility (SQL three-valued logic);
// Compare treats NULL as an error to surface logic bugs early.
func Compare(a, b Datum) (int, error) {
	if a.Null || b.Null {
		return 0, fmt.Errorf("types: Compare called on NULL")
	}
	// Numeric cross-kind comparison.
	if a.Type().IsNumeric() && b.Type().IsNumeric() {
		if a.K == KindFloat || b.K == KindFloat {
			return cmpFloat(a.AsFloat(), b.AsFloat()), nil
		}
		if a.K == KindDecimal || b.K == KindDecimal {
			scale := maxInt(int(a.Scale), int(b.Scale))
			return cmpInt(a.DecimalScaled(scale), b.DecimalScaled(scale)), nil
		}
		return cmpInt(a.I, b.I), nil
	}
	if a.Type().IsString() && b.Type().IsString() {
		// CHAR semantics: ignore trailing blanks.
		return strings.Compare(strings.TrimRight(a.S, " "), strings.TrimRight(b.S, " ")), nil
	}
	if a.K == b.K {
		switch a.K {
		case KindBool, KindDate, KindTime, KindTimestamp, KindInterval:
			return cmpInt(a.I, b.I), nil
		case KindBytes:
			return strings.Compare(a.S, b.S), nil
		case KindPeriod:
			if c := cmpInt(a.PStart, b.PStart); c != 0 {
				return c, nil
			}
			return cmpInt(a.PEnd, b.PEnd), nil
		}
	}
	return 0, fmt.Errorf("types: cannot compare %s with %s", a.K, b.K)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
