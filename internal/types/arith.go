package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Arithmetic and casting on datums. The rules follow Teradata/ANSI practice:
// integer op integer stays integral, any FLOAT operand promotes to FLOAT,
// DECIMAL arithmetic keeps fixed-point semantics, and DATE supports the
// Teradata-specific date +/- integer day arithmetic the paper tracks as the
// "Date arithmetics" feature (Table 2).

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

// Supported operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "MOD"
	}
	return "?"
}

// ArithResultType derives the static result type of l op r, mirroring the
// runtime promotion in Arith. It returns an error for operand combinations
// Arith would reject.
func ArithResultType(op ArithOp, l, r T) (T, error) {
	// DATE +/- integer, DATE - DATE.
	if l.Kind == KindDate || r.Kind == KindDate {
		switch {
		case l.Kind == KindDate && r.Kind == KindDate && op == OpSub:
			return Int, nil
		case l.Kind == KindDate && r.IsNumeric() && (op == OpAdd || op == OpSub):
			return Date, nil
		case r.Kind == KindDate && l.IsNumeric() && op == OpAdd:
			return Date, nil
		}
		return Null, fmt.Errorf("types: invalid date arithmetic %s %s %s", l, op, r)
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return Null, fmt.Errorf("types: invalid operands %s %s %s", l, op, r)
	}
	if l.Kind == KindFloat || r.Kind == KindFloat || op == OpDiv && l.Kind != KindDecimal && r.Kind != KindDecimal {
		// Integer division stays integral in Teradata; we keep it integral
		// for INT/INT and promote only when a FLOAT is involved.
		if l.Kind == KindFloat || r.Kind == KindFloat {
			return Float, nil
		}
	}
	if l.Kind == KindDecimal || r.Kind == KindDecimal {
		ls, rs := 0, 0
		if l.Kind == KindDecimal {
			ls = l.Scale
		}
		if r.Kind == KindDecimal {
			rs = r.Scale
		}
		switch op {
		case OpMul:
			return Decimal(18, ls+rs), nil
		case OpDiv:
			return Decimal(18, maxInt(maxInt(ls, rs), 4)), nil
		default:
			return Decimal(18, maxInt(ls, rs)), nil
		}
	}
	if l.Kind == KindBigInt || r.Kind == KindBigInt {
		return BigInt, nil
	}
	return Int, nil
}

// Arith evaluates l op r with SQL NULL propagation.
func Arith(op ArithOp, l, r Datum) (Datum, error) {
	rt, err := ArithResultType(op, l.Type(), r.Type())
	if err != nil {
		return Datum{}, err
	}
	if l.Null || r.Null {
		return NewNull(rt.Kind), nil
	}
	switch rt.Kind {
	case KindDate:
		days := r.AsInt()
		d := l
		if l.K != KindDate {
			d, days = r, l.AsInt()
		}
		if op == OpSub {
			days = -days
		}
		return AddDays(d, days), nil
	case KindInt, KindBigInt:
		if l.K == KindDate && r.K == KindDate {
			return NewInt(DiffDays(l, r)), nil
		}
		return intArith(op, rt.Kind, l.AsInt(), r.AsInt())
	case KindFloat:
		return floatArith(op, l.AsFloat(), r.AsFloat())
	case KindDecimal:
		return decimalArith(op, rt.Scale, l, r)
	}
	return Datum{}, fmt.Errorf("types: invalid arithmetic %s %s %s", l.K, op, r.K)
}

func intArith(op ArithOp, k Kind, a, b int64) (Datum, error) {
	var v int64
	switch op {
	case OpAdd:
		v = a + b
	case OpSub:
		v = a - b
	case OpMul:
		v = a * b
	case OpDiv:
		if b == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		v = a / b
	case OpMod:
		if b == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		v = a % b
	}
	return Datum{K: k, I: v}, nil
}

func floatArith(op ArithOp, a, b float64) (Datum, error) {
	var v float64
	switch op {
	case OpAdd:
		v = a + b
	case OpSub:
		v = a - b
	case OpMul:
		v = a * b
	case OpDiv:
		if b == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		v = a / b
	case OpMod:
		if b == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		v = float64(int64(a) % int64(b))
	}
	return NewFloat(v), nil
}

func decimalArith(op ArithOp, outScale int, l, r Datum) (Datum, error) {
	switch op {
	case OpAdd, OpSub:
		a := l.DecimalScaled(outScale)
		b := r.DecimalScaled(outScale)
		if op == OpSub {
			b = -b
		}
		return NewDecimal(a+b, outScale), nil
	case OpMul:
		ls, rs := decScale(l), decScale(r)
		v := l.DecimalScaled(ls) * r.DecimalScaled(rs)
		// v has scale ls+rs; rescale to outScale.
		return rescale(v, ls+rs, outScale), nil
	case OpDiv:
		rs := decScale(r)
		den := r.DecimalScaled(rs)
		if den == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		// Scale numerator up so the quotient has outScale+rs digits of scale
		// before dividing by the rs-scaled denominator.
		num := l.DecimalScaled(decScale(l)) * pow10(outScale+rs-decScale(l))
		return NewDecimal(num/den, outScale), nil
	case OpMod:
		s := maxInt(decScale(l), decScale(r))
		b := r.DecimalScaled(s)
		if b == 0 {
			return Datum{}, fmt.Errorf("types: division by zero")
		}
		return rescale(l.DecimalScaled(s)%b, s, outScale), nil
	}
	return Datum{}, fmt.Errorf("types: bad decimal op")
}

func decScale(d Datum) int {
	if d.K == KindDecimal {
		return int(d.Scale)
	}
	return 0
}

func rescale(v int64, from, to int) Datum {
	switch {
	case from == to:
	case from < to:
		v *= pow10(to - from)
	default:
		v /= pow10(from - to)
	}
	return NewDecimal(v, to)
}

// Neg returns the arithmetic negation of a numeric or interval datum.
func Neg(d Datum) (Datum, error) {
	if d.Null {
		return d, nil
	}
	switch d.K {
	case KindInt, KindBigInt, KindDecimal, KindInterval:
		out := d
		out.I = -d.I
		return out, nil
	case KindFloat:
		return NewFloat(-d.F), nil
	}
	return Datum{}, fmt.Errorf("types: cannot negate %s", d.K)
}

// Cast converts d to the target type with SQL CAST semantics.
func Cast(d Datum, to T) (Datum, error) {
	if d.Null {
		return NewNull(to.Kind), nil
	}
	switch to.Kind {
	case KindInt, KindBigInt:
		switch {
		case d.Type().IsNumeric():
			return Datum{K: to.Kind, I: d.AsInt()}, nil
		case d.Type().IsString():
			v, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to %s", d.S, to)
			}
			return Datum{K: to.Kind, I: v}, nil
		case d.K == KindDate:
			// Teradata CAST(date AS INTEGER) yields the internal encoding.
			return Datum{K: to.Kind, I: TeradataDateInt(d)}, nil
		case d.K == KindBool:
			return Datum{K: to.Kind, I: d.I}, nil
		}
	case KindFloat:
		switch {
		case d.Type().IsNumeric():
			return NewFloat(d.AsFloat()), nil
		case d.Type().IsString():
			v, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to FLOAT", d.S)
			}
			return NewFloat(v), nil
		}
	case KindDecimal:
		if d.Type().IsNumeric() {
			return NewDecimal(d.DecimalScaled(to.Scale), to.Scale), nil
		}
		if d.Type().IsString() {
			f, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to %s", d.S, to)
			}
			return Cast(NewFloat(f), to)
		}
	case KindChar, KindVarChar:
		s := d.String()
		if to.Length > 0 && len(s) > to.Length {
			s = s[:to.Length]
		}
		if to.Kind == KindChar && to.Length > 0 && len(s) < to.Length {
			s += strings.Repeat(" ", to.Length-len(s))
		}
		return Datum{K: to.Kind, S: s}, nil
	case KindDate:
		switch {
		case d.K == KindDate:
			return d, nil
		case d.Type().IsString():
			return ParseDateLiteral(strings.TrimRight(d.S, " "))
		case d.Type().IsNumeric():
			// Teradata CAST(int AS DATE) interprets the internal encoding.
			return DateFromTeradataInt(d.AsInt()), nil
		case d.K == KindTimestamp:
			secs := d.I / microsPerSecond
			days := secs / 86400
			if secs%86400 < 0 {
				days--
			}
			return NewDateEnc(EpochDaysToDate(days)), nil
		}
	case KindTime:
		if d.K == KindTime {
			return d, nil
		}
		if d.Type().IsString() {
			return ParseTimeLiteral(strings.TrimRight(d.S, " "))
		}
	case KindTimestamp:
		switch {
		case d.K == KindTimestamp:
			return d, nil
		case d.K == KindDate:
			return NewTimestamp(DateToEpochDays(d.I) * 86400 * microsPerSecond), nil
		case d.Type().IsString():
			return ParseTimestampLiteral(strings.TrimRight(d.S, " "))
		}
	case KindBool:
		switch {
		case d.K == KindBool:
			return d, nil
		case d.Type().IsNumeric():
			return NewBool(d.AsInt() != 0), nil
		}
	case KindBytes:
		if d.K == KindBytes {
			return d, nil
		}
		if d.Type().IsString() {
			return NewBytes([]byte(d.S)), nil
		}
	case KindPeriod:
		if d.K == KindPeriod {
			return d, nil
		}
	}
	return Datum{}, fmt.Errorf("types: cannot cast %s to %s", d.K, to)
}

// CanCompare reports whether values of the two types are comparable without
// an explicit cast, under ANSI rules (the Teradata DATE/INT exception is a
// binder-level rewrite, not a type-system rule).
func CanCompare(a, b T) bool {
	if a.Kind == KindNull || b.Kind == KindNull {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	if a.IsString() && b.IsString() {
		return true
	}
	return a.Kind == b.Kind
}

// CommonSupertype returns the type both operands coerce to for comparison or
// set-operation alignment.
func CommonSupertype(a, b T) (T, error) {
	if a.Kind == KindNull {
		return b, nil
	}
	if b.Kind == KindNull {
		return a, nil
	}
	if a.Kind == b.Kind {
		if a.Kind == KindDecimal && b.Scale > a.Scale {
			return b, nil
		}
		return a, nil
	}
	if a.IsNumeric() && b.IsNumeric() {
		order := func(k Kind) int {
			switch k {
			case KindInt:
				return 0
			case KindBigInt:
				return 1
			case KindDecimal:
				return 2
			default:
				return 3 // float
			}
		}
		if order(a.Kind) >= order(b.Kind) {
			return a, nil
		}
		return b, nil
	}
	if a.IsString() && b.IsString() {
		return VarChar(maxInt(a.Length, b.Length)), nil
	}
	if (a.Kind == KindDate && b.Kind == KindTimestamp) || (a.Kind == KindTimestamp && b.Kind == KindDate) {
		return Timestamp, nil
	}
	return Null, fmt.Errorf("types: no common supertype for %s and %s", a, b)
}
