package types

import (
	"testing"
)

func TestParseTypeName(t *testing.T) {
	cases := []struct {
		name string
		args []int
		want T
	}{
		{"INTEGER", nil, Int},
		{"int", nil, Int},
		{"BIGINT", nil, BigInt},
		{"FLOAT", nil, Float},
		{"DECIMAL", []int{10, 2}, Decimal(10, 2)},
		{"NUMERIC", []int{5}, Decimal(5, 0)},
		{"CHAR", []int{8}, Char(8)},
		{"VARCHAR", []int{100}, VarChar(100)},
		{"DATE", nil, Date},
		{"TIMESTAMP", nil, Timestamp},
		{"PERIOD(DATE)", nil, Period(KindDate)},
		{"VARBYTE", []int{64}, Bytes(64)},
	}
	for _, c := range cases {
		got, err := ParseTypeName(c.name, c.args...)
		if err != nil {
			t.Fatalf("ParseTypeName(%q): %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("ParseTypeName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := ParseTypeName("FROBNICATOR"); err == nil {
		t.Error("ParseTypeName accepted unknown type")
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		t    T
		want string
	}{
		{Int, "INTEGER"},
		{Decimal(12, 2), "DECIMAL(12,2)"},
		{Char(3), "CHAR(3)"},
		{VarChar(0), "VARCHAR"},
		{Period(KindDate), "PERIOD(DATE)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !Int.IsNumeric() || !Decimal(10, 2).IsNumeric() || !Float.IsNumeric() {
		t.Error("numeric predicate failed")
	}
	if Date.IsNumeric() || VarChar(10).IsNumeric() {
		t.Error("non-numeric classified numeric")
	}
	if !Char(1).IsString() || !VarChar(5).IsString() {
		t.Error("string predicate failed")
	}
	if !Date.IsTemporal() || !Timestamp.IsTemporal() || Int.IsTemporal() {
		t.Error("temporal predicate failed")
	}
}

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{NewInt(42), "42"},
		{NewBigInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewDecimal(12345, 2), "123.45"},
		{NewDecimal(-12345, 2), "-123.45"},
		{NewDecimal(5, 3), "0.005"},
		{NewString("abc"), "abc"},
		{NewDate(2014, 1, 1), "2014-01-01"},
		{NewBool(true), "TRUE"},
		{NewNull(KindInt), "NULL"},
		{NewTime(3661), "01:01:01"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.d.K, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("string literal = %q", got)
	}
	if got := NewDate(2020, 12, 31).SQLLiteral(); got != "DATE '2020-12-31'" {
		t.Errorf("date literal = %q", got)
	}
	if got := NewNull(KindVarChar).SQLLiteral(); got != "NULL" {
		t.Errorf("null literal = %q", got)
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewBigInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewDecimal(150, 2), NewFloat(1.5), 0},
		{NewDecimal(150, 2), NewInt(1), 1},
		{NewDecimal(100, 2), NewDecimal(10, 1), 0},
		{NewString("abc"), NewString("abd"), -1},
		{NewChar("ab  "), NewString("ab"), 0}, // CHAR blank padding
		{NewDate(2020, 1, 1), NewDate(2020, 1, 2), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(NewNull(KindInt), NewInt(1)); err == nil {
		t.Error("Compare with NULL should error")
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("Compare int with string should error")
	}
}

func TestHashKeyEquivalence(t *testing.T) {
	// Values that compare equal must hash equal.
	pairs := [][2]Datum{
		{NewInt(5), NewBigInt(5)},
		{NewInt(5), NewFloat(5)},
		{NewDecimal(500, 2), NewInt(5)},
		{NewDecimal(50, 1), NewDecimal(500, 2)},
		{NewChar("ab "), NewString("ab")},
	}
	for _, p := range pairs {
		if p[0].HashKey() != p[1].HashKey() {
			t.Errorf("HashKey(%v) != HashKey(%v): %q vs %q", p[0], p[1], p[0].HashKey(), p[1].HashKey())
		}
	}
	if NewInt(1).HashKey() == NewInt(2).HashKey() {
		t.Error("distinct ints share hash key")
	}
	if NewNull(KindInt).HashKey() != NewNull(KindVarChar).HashKey() {
		t.Error("NULLs of different kinds should share hash key")
	}
}

func TestDatumEqual(t *testing.T) {
	if !NewNull(KindInt).Equal(NewNull(KindVarChar)) {
		t.Error("NULL should Equal NULL")
	}
	if NewNull(KindInt).Equal(NewInt(0)) {
		t.Error("NULL should not Equal 0")
	}
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Error("3 should Equal 3.0")
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if NewDecimal(12999, 3).AsInt() != 12 {
		t.Errorf("AsInt truncation: got %d", NewDecimal(12999, 3).AsInt())
	}
	if NewDecimal(12500, 3).AsFloat() != 12.5 {
		t.Errorf("AsFloat: got %g", NewDecimal(12500, 3).AsFloat())
	}
	if NewFloat(7.9).AsInt() != 7 {
		t.Error("float AsInt should truncate")
	}
}

func TestDecimalScaled(t *testing.T) {
	d := NewDecimal(1234, 2) // 12.34
	if got := d.DecimalScaled(4); got != 123400 {
		t.Errorf("upscale: got %d", got)
	}
	if got := d.DecimalScaled(1); got != 123 {
		t.Errorf("downscale: got %d", got)
	}
	if got := NewInt(7).DecimalScaled(2); got != 700 {
		t.Errorf("int to scaled: got %d", got)
	}
}

func TestPeriodDatum(t *testing.T) {
	p := NewPeriod(KindDate, EncodeDate(2020, 1, 1), EncodeDate(2020, 6, 30))
	if p.PeriodElem() != KindDate {
		t.Error("wrong period element")
	}
	if got := p.String(); got != "(2020-01-01, 2020-06-30)" {
		t.Errorf("period string = %q", got)
	}
	q := NewPeriod(KindDate, EncodeDate(2020, 1, 1), EncodeDate(2020, 7, 1))
	c, err := Compare(p, q)
	if err != nil || c != -1 {
		t.Errorf("period compare = %d, %v", c, err)
	}
}
