package odbc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire/cwp"
)

func resilienceEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New(dialect.TeradataProfile())
	s := eng.NewSession()
	for _, sql := range []string{
		"CREATE TABLE rt (x INT)",
		"INSERT INTO rt VALUES (1), (2), (3)",
	} {
		if _, err := s.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// resilientStack wires engine -> faultdriver -> ResilientDriver with a no-op
// Sleep so retry loops run instantly.
func resilientStack(t *testing.T) (*faultdriver.Driver, *odbc.ResilientDriver, *odbc.ResilienceMetrics) {
	t.Helper()
	eng := resilienceEngine(t)
	fd := faultdriver.New(&odbc.LocalDriver{Engine: eng, User: "u"})
	met := &odbc.ResilienceMetrics{}
	rd := &odbc.ResilientDriver{
		Inner:   fd,
		Metrics: met,
		Sleep:   func(time.Duration) {},
	}
	return fd, rd, met
}

// Transient connect failures happen strictly before any request is sent, so
// they are retried unconditionally.
func TestResilientConnectRetriesTransient(t *testing.T) {
	fd, rd, met := resilientStack(t)
	fd.RefuseConnects(2)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatalf("Connect after transient refusals: %v", err)
	}
	defer ex.Close()
	if got := fd.Connects(); got != 3 {
		t.Errorf("connect attempts = %d, want 3", got)
	}
	if got := met.Retries(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	res, err := ex.Exec("SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rows()[0][0].I != 3 {
		t.Errorf("count = %v, want 3", res[0].Rows()[0][0])
	}
}

// A non-transient connect failure (e.g. authentication rejection) must not
// be retried.
func TestResilientConnectPermanentFailureNotRetried(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	authErr := &cwp.BackendError{Code: 8017, Message: "user not authorized"}
	fd.FailConnect(1, authErr)
	_, err := rd.Connect()
	var be *cwp.BackendError
	if !errors.As(err, &be) || be.Code != 8017 {
		t.Fatalf("Connect error = %v, want backend error 8017", err)
	}
	if got := fd.Connects(); got != 1 {
		t.Errorf("connect attempts = %d, want 1 (no retry)", got)
	}
}

// A mid-session connection drop on a read-only request is healed
// transparently: reconnect, replay registered session state, re-execute.
func TestResilientReconnectReplaysAndRetriesRead(t *testing.T) {
	fd, rd, met := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ra, ok := ex.(odbc.ReconnectAware)
	if !ok {
		t.Fatal("resilient executor is not ReconnectAware")
	}
	var replayed int
	ra.OnReconnect(func(repl odbc.Executor) error {
		replayed++
		// Stand-in for session state: visible through the replacement session.
		_, err := repl.Exec("INSERT INTO rt VALUES (42)")
		return err
	})
	if _, err := ex.Exec("SELECT COUNT(*) FROM rt"); err != nil {
		t.Fatal(err)
	}
	fd.DropActiveSessions()
	res, err := ex.Exec("SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatalf("read after backend bounce: %v", err)
	}
	if got := res[0].Rows()[0][0].I; got != 4 {
		t.Errorf("count = %d, want 4 (3 seed rows + 1 replayed)", got)
	}
	if replayed != 1 {
		t.Errorf("restore ran %d times, want 1", replayed)
	}
	if met.Reconnects() != 1 || met.Replays() != 1 {
		t.Errorf("Reconnects/Replays = %d/%d, want 1/1", met.Reconnects(), met.Replays())
	}
}

// A connection drop on a non-idempotent write must NOT be retried: the
// request may already have been applied.
func TestResilientWriteNotRetriedAfterDrop(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fd.DropActiveSessions()
	before := fd.Execs()
	_, err = ex.Exec("INSERT INTO rt VALUES (99)")
	if !errors.Is(err, odbc.ErrMaybeApplied) {
		t.Fatalf("write after drop: err = %v, want ErrMaybeApplied", err)
	}
	if got := fd.Execs() - before; got != 1 {
		t.Errorf("exec attempts = %d, want exactly 1 (never retried)", got)
	}
	// The session heals on the next request.
	res, err := ex.Exec("SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows()[0][0].I; got != 3 {
		t.Errorf("count = %d, want 3 (failed insert not applied, not retried)", got)
	}
}

// A transient backend abort (deadlock class) means the statement rolled
// back: safe to retry in place, even for a write.
func TestResilientTransientBackendAbortRetried(t *testing.T) {
	fd, rd, met := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fd.QueueExecErrors(&cwp.BackendError{Code: 2631, Message: "transaction aborted, retry"})
	if _, err := ex.Exec("INSERT INTO rt VALUES (7)"); err != nil {
		t.Fatalf("write after transient abort: %v", err)
	}
	res, err := ex.Exec("SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows()[0][0].I; got != 4 {
		t.Errorf("count = %d, want 4 (insert applied exactly once)", got)
	}
	if met.Retries() == 0 {
		t.Error("Retries = 0, want > 0")
	}
}

// Permanent SQL errors are surfaced immediately, with no retry.
func TestResilientSQLErrorNotRetried(t *testing.T) {
	fd, rd, met := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	before := fd.Execs()
	_, err = ex.Exec("SELECT nope FROM rt")
	if err == nil {
		t.Fatal("SQL error not surfaced")
	}
	if errors.Is(err, odbc.ErrMaybeApplied) {
		t.Errorf("SQL error misclassified as maybe-applied: %v", err)
	}
	if got := fd.Execs() - before; got != 1 {
		t.Errorf("exec attempts = %d, want 1", got)
	}
	if met.Retries() != 0 {
		t.Errorf("Retries = %d, want 0", met.Retries())
	}
}

// Hard-down backend: consecutive connection failures open the breaker, and
// subsequent requests fail fast without touching the backend. After the
// cooldown a single half-open probe is admitted; success closes the circuit.
func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	fd, rd, met := resilientStack(t)
	now := time.Unix(1000, 0)
	rd.Now = func() time.Time { return now }
	rd.MaxRetries = -1 // isolate breaker behavior from retry loops
	rd.BreakerThreshold = 2
	rd.BreakerCooldown = time.Minute

	fd.RefuseConnects(-1)
	for i := 0; i < 2; i++ {
		if _, err := rd.Connect(); err == nil {
			t.Fatalf("connect %d to hard-down backend succeeded", i)
		}
	}
	if met.BreakerOpen() != 1 {
		t.Fatalf("BreakerOpen = %d, want 1", met.BreakerOpen())
	}
	attempts := fd.Connects()
	_, err := rd.Connect()
	if !errors.Is(err, odbc.ErrBreakerOpen) {
		t.Fatalf("open breaker: err = %v, want ErrBreakerOpen", err)
	}
	if fd.Connects() != attempts {
		t.Error("open breaker still dialed the backend")
	}

	// Cooldown elapses while the backend is still down: the probe fails and
	// the breaker reopens immediately (one attempt only).
	now = now.Add(2 * time.Minute)
	if _, err := rd.Connect(); errors.Is(err, odbc.ErrBreakerOpen) || err == nil {
		t.Fatalf("half-open probe: err = %v, want the connect error", err)
	}
	if met.BreakerOpen() != 2 {
		t.Errorf("BreakerOpen = %d, want 2 (probe failure reopened)", met.BreakerOpen())
	}
	if _, err := rd.Connect(); !errors.Is(err, odbc.ErrBreakerOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrBreakerOpen", err)
	}

	// Backend heals; the next probe closes the circuit.
	now = now.Add(2 * time.Minute)
	fd.RefuseConnects(0)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatalf("probe against healed backend: %v", err)
	}
	defer ex.Close()
	if res, err := ex.Exec("SELECT COUNT(*) FROM rt"); err != nil || res[0].Rows()[0][0].I != 3 {
		t.Fatalf("exec after recovery: res=%v err=%v", res, err)
	}
}

// The per-request deadline bounds a stalled backend: the request fails
// quickly with a transient (deadline) error instead of hanging.
func TestResilientDeadlineBoundsStalledBackend(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	rd.Timeout = 30 * time.Millisecond
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fd.SetLatency(5 * time.Second)
	start := time.Now()
	_, err = ex.Exec("SELECT COUNT(*) FROM rt")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled backend request succeeded")
	}
	if !odbc.Transient(err) {
		t.Errorf("deadline error not classified transient: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("request took %v, want bounded by the 30ms deadline", elapsed)
	}
	// The next request (with the stall cleared) reconnects and succeeds.
	fd.SetLatency(0)
	if res, err := ex.Exec("SELECT COUNT(*) FROM rt"); err != nil || res[0].Rows()[0][0].I != 3 {
		t.Fatalf("exec after stall cleared: res=%v err=%v", res, err)
	}
}

// A caller-supplied context deadline takes precedence and cancels waiting.
func TestResilientCallerContextHonored(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fd.SetLatency(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := ex.ExecContext(ctx, "SELECT COUNT(*) FROM rt"); err == nil {
		t.Fatal("request outlived its context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("request took %v, want bounded by the caller deadline", elapsed)
	}
}
