package odbc_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"

	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire/cwp"
)

// timeoutErr is a net.Error whose Timeout() reports true (a socket
// read/write deadline expiry).
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
		connErr   bool
	}{
		{"nil", nil, false, false},
		{"eof", io.EOF, true, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true, true},
		{"conn-reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true, true},
		{"conn-refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true, true},
		{"broken-pipe", &net.OpError{Op: "write", Err: syscall.EPIPE}, true, true},
		{"conn-aborted", syscall.ECONNABORTED, true, true},
		{"socket-timeout", timeoutErr{}, true, true},
		{"deadline", context.DeadlineExceeded, true, true},
		{"net-closed", net.ErrClosed, true, true},
		{"wrapped-reset", fmt.Errorf("exec: %w", &net.OpError{Op: "read", Err: syscall.ECONNRESET}), true, true},
		{"faultdriver-dropped", faultdriver.Dropped(), true, true},
		{"faultdriver-refused", faultdriver.Refused(), true, true},
		// The caller gave up: never retried.
		{"canceled", context.Canceled, false, false},
		// SQL/semantic failures must never be retried.
		{"sql-error", &cwp.BackendError{Code: 3706, Message: "syntax error"}, false, false},
		{"semantic-error", &cwp.BackendError{Code: 3807, Message: "table does not exist"}, false, false},
		{"wrapped-sql-error", fmt.Errorf("exec: %w", &cwp.BackendError{Code: 3706, Message: "x"}), false, false},
		{"plain-error", errors.New("something else"), false, false},
		// Backend retryable aborts: transient (safe to re-execute; the
		// statement rolled back) but NOT connection errors.
		{"deadlock-abort", &cwp.BackendError{Code: 2631, Message: "deadlock"}, true, false},
		{"workload-abort", &cwp.BackendError{Code: 3598, Message: "resubmit"}, true, false},
	}
	for _, c := range cases {
		if got := odbc.Transient(c.err); got != c.transient {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.transient)
		}
		if got := odbc.ConnectionError(c.err); got != c.connErr {
			t.Errorf("%s: ConnectionError = %v, want %v", c.name, got, c.connErr)
		}
	}
}
