package odbc

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"

	"hyperq/internal/wire/cwp"
)

// Sentinel errors for the fault-tolerant execution layer. They are exposed
// so the gateway can map each failure mode onto the frontend error code an
// unmodified client application expects.
var (
	// ErrBreakerOpen fails a request fast while the backend's circuit
	// breaker is open: the backend has been failing consistently and
	// piling up timed-out requests would only make recovery slower.
	ErrBreakerOpen = errors.New("odbc: circuit breaker open, backend failing fast")
	// ErrMaybeApplied reports a connection loss after a non-idempotent
	// request was sent: the backend may or may not have applied it, so the
	// gateway must surface the failure instead of retrying.
	ErrMaybeApplied = errors.New("odbc: connection lost after request was sent; it may have been applied and was not retried")
	// ErrReplicaDivergent poisons a replicated executor after a partial
	// write failure left the replicas with different contents.
	ErrReplicaDivergent = errors.New("odbc: replicas diverged after partial write failure")
)

// Transient reports whether err is worth retrying: either a
// connection-level failure (reset, refused, EOF, timeout) or a backend
// abort the engine marks as retryable (deadlock, transient resource
// pressure). SQL and semantic failures are permanent — retrying them would
// only repeat the same answer slower.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var be *cwp.BackendError
	if errors.As(err, &be) {
		return be.Transient()
	}
	if errors.Is(err, context.Canceled) {
		// The caller gave up; retrying would contradict its intent.
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ETIMEDOUT) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ConnectionError reports whether err indicates the backend session's
// connection is unusable and must be replaced — as opposed to a transient
// SQL-level abort (deadlock) on a perfectly healthy connection.
func ConnectionError(err error) bool {
	var be *cwp.BackendError
	if errors.As(err, &be) {
		return false
	}
	return Transient(err)
}
