package odbc

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/trace"
	"hyperq/internal/wire/cwp"
)

// ResilienceMetrics counts fault-handling events across the drivers that
// share it. All methods are nil-safe so drivers work without metrics.
type ResilienceMetrics struct {
	retries            int64
	reconnects         int64
	replays            int64
	breakerOpen        int64
	replicaQuarantined int64
}

// Retries is the number of transparent re-attempts after transient failures.
func (m *ResilienceMetrics) Retries() int64 { return atomic.LoadInt64(&m.retries) }

// Reconnects is the number of replacement backend sessions established.
func (m *ResilienceMetrics) Reconnects() int64 { return atomic.LoadInt64(&m.reconnects) }

// Replays is the number of session-state replays onto replacement sessions.
func (m *ResilienceMetrics) Replays() int64 { return atomic.LoadInt64(&m.replays) }

// BreakerOpen is the number of closed-to-open circuit breaker transitions.
func (m *ResilienceMetrics) BreakerOpen() int64 { return atomic.LoadInt64(&m.breakerOpen) }

// ReplicaQuarantined is the number of replicas removed from read rotation.
func (m *ResilienceMetrics) ReplicaQuarantined() int64 {
	return atomic.LoadInt64(&m.replicaQuarantined)
}

// Reset zeroes every counter.
func (m *ResilienceMetrics) Reset() {
	if m == nil {
		return
	}
	for _, p := range []*int64{&m.retries, &m.reconnects, &m.replays, &m.breakerOpen, &m.replicaQuarantined} {
		atomic.StoreInt64(p, 0)
	}
}

func (m *ResilienceMetrics) bump(p *int64) {
	if m != nil {
		atomic.AddInt64(p, 1)
	}
}

func (m *ResilienceMetrics) addRetry() {
	if m != nil {
		m.bump(&m.retries)
	}
}
func (m *ResilienceMetrics) addReconnect() {
	if m != nil {
		m.bump(&m.reconnects)
	}
}
func (m *ResilienceMetrics) addReplay() {
	if m != nil {
		m.bump(&m.replays)
	}
}
func (m *ResilienceMetrics) addBreakerOpen() {
	if m != nil {
		m.bump(&m.breakerOpen)
	}
}
func (m *ResilienceMetrics) addQuarantine() {
	if m != nil {
		m.bump(&m.replicaQuarantined)
	}
}

// --- circuit breaker --------------------------------------------------------

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-backend circuit breaker over connection-level failures.
// Closed: requests flow, consecutive failures are counted. Open: requests
// fail fast with ErrBreakerOpen until the cooldown elapses. Half-open: one
// probe is admitted; success closes the breaker, failure reopens it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	metrics   *ResilienceMetrics

	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

// Allow reports whether a backend attempt may proceed.
func (b *breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a healthy backend interaction.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a connection-level failure.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == breakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.trip()
	}
}

func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.metrics.addBreakerOpen()
}

// --- resilient driver -------------------------------------------------------

// ResilientDriver is a drop-in Driver wrapper that makes backend execution
// fault-tolerant: it classifies failures into transient-connection vs
// SQL/semantic, bounds every request with a deadline, retries transient
// failures with capped exponential backoff plus jitter, transparently
// reconnects (replaying registered session state) when a connection dies,
// and fails fast through a per-backend circuit breaker when the backend is
// hard down. Idempotency rule: a request that may already have reached the
// backend is re-executed only when it is read-only; non-idempotent writes
// surface ErrMaybeApplied instead.
type ResilientDriver struct {
	// Inner is the wrapped driver (required).
	Inner Driver
	// Timeout bounds each request (connect or exec) that arrives without
	// its own deadline. 0 leaves requests unbounded.
	Timeout time.Duration
	// MaxRetries is the number of transparent re-attempts after the first
	// failure. 0 selects 3; negative disables retries.
	MaxRetries int
	// BaseBackoff is the first retry delay, doubled per attempt up to
	// MaxBackoff, with ±50% jitter. Zero values select 5ms / 500ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// BreakerThreshold is the consecutive connection-failure count that
	// opens the circuit. 0 selects 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open-state duration before a half-open probe
	// is admitted. 0 selects 1s.
	BreakerCooldown time.Duration
	// Metrics, when non-nil, accumulates fault-handling counters.
	Metrics *ResilienceMetrics
	// Sleep and Now are injectable for deterministic tests.
	Sleep func(time.Duration)
	Now   func() time.Time
	// Seed fixes the jitter sequence (tests); 0 selects a fixed default.
	Seed int64

	initOnce sync.Once
	brk      *breaker
	rngMu    sync.Mutex
	rng      *rand.Rand
}

func (d *ResilientDriver) init() {
	d.initOnce.Do(func() {
		now := d.Now
		if now == nil {
			now = time.Now
		}
		threshold := d.BreakerThreshold
		if threshold == 0 {
			threshold = 5
		}
		if threshold < 0 {
			threshold = 1 << 30 // effectively disabled
		}
		cooldown := d.BreakerCooldown
		if cooldown == 0 {
			cooldown = time.Second
		}
		d.brk = &breaker{threshold: threshold, cooldown: cooldown, now: now, metrics: d.Metrics}
		seed := d.Seed
		if seed == 0 {
			seed = 1
		}
		d.rng = rand.New(rand.NewSource(seed))
	})
}

func (d *ResilientDriver) maxRetries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	if d.MaxRetries < 0 {
		return 0
	}
	return 3
}

// backoff sleeps the capped exponential delay for retry attempt n (1-based)
// with ±50% jitter, returning early if the context expires.
func (d *ResilientDriver) backoff(ctx context.Context, attempt int) {
	base := d.BaseBackoff
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := d.MaxBackoff
	if max <= 0 {
		max = 500 * time.Millisecond
	}
	delay := base << (attempt - 1)
	if delay > max || delay <= 0 {
		delay = max
	}
	d.rngMu.Lock()
	jitter := 0.5 + d.rng.Float64() // factor in [0.5, 1.5)
	d.rngMu.Unlock()
	delay = time.Duration(float64(delay) * jitter)
	if d.Sleep != nil {
		d.Sleep(delay)
		return
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// reqContext applies the driver-level timeout when the caller supplied none.
func (d *ResilientDriver) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, d.Timeout)
		}
	}
	return ctx, func() {}
}

// Connect opens a fault-tolerant backend session.
func (d *ResilientDriver) Connect() (Executor, error) {
	return d.ConnectContext(context.Background())
}

// ConnectContext opens a fault-tolerant backend session. Connection
// establishment happens strictly before any request is sent, so transient
// connect failures are retried unconditionally.
func (d *ResilientDriver) ConnectContext(ctx context.Context) (Executor, error) {
	d.init()
	ctx, cancel := d.reqContext(ctx)
	defer cancel()
	e := &resilientExecutor{d: d}
	if err := e.reconnect(ctx); err != nil {
		return nil, err
	}
	return e, nil
}

var (
	_ Driver         = (*ResilientDriver)(nil)
	_ ContextDriver  = (*ResilientDriver)(nil)
	_ ReconnectAware = (*resilientExecutor)(nil)
)

type resilientExecutor struct {
	d     *ResilientDriver
	inner Executor
	// restore rebuilds session state on replacement connections.
	restore func(Executor) error
	// everConnected distinguishes the initial connect (no replay, not a
	// reconnect) from replacements.
	everConnected bool
}

// OnReconnect implements ReconnectAware.
func (e *resilientExecutor) OnReconnect(restore func(Executor) error) { e.restore = restore }

// reconnect establishes a (replacement) inner session, retrying transient
// connect failures with backoff. Connect failures happen before any request
// is sent, so they are always safe to retry. A successful replacement
// session has the registered session state replayed onto it before use.
func (e *resilientExecutor) reconnect(ctx context.Context) error {
	d := e.d
	tr := trace.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt <= d.maxRetries(); attempt++ {
		if attempt > 0 {
			d.Metrics.addRetry()
			tr.Event("retry", "op", "connect", "attempt", strconv.Itoa(attempt))
			d.backoff(ctx, attempt)
			if ctx.Err() != nil {
				return lastErr
			}
		}
		if err := d.brk.Allow(); err != nil {
			// Open breaker: fail fast; waiting out the cooldown inside a
			// request would defeat the point.
			return err
		}
		// Within a request (trace present), a replacement connection is a
		// reconnect span; the initial logon-time connect is untraced.
		var sp *trace.Span
		if e.everConnected {
			sp = tr.Start("reconnect")
		}
		inner, err := ConnectContext(ctx, d.Inner)
		if err != nil {
			sp.Set("error", err.Error())
			sp.End()
			d.brk.Failure()
			lastErr = err
			if !Transient(err) {
				return err // e.g. authentication rejection: retrying is futile
			}
			continue
		}
		d.brk.Success()
		if e.everConnected {
			d.Metrics.addReconnect()
			if e.restore != nil {
				d.Metrics.addReplay()
				rsp := tr.Start("replay")
				rerr := e.restore(inner)
				rsp.End()
				if rerr != nil {
					sp.End()
					_ = inner.Close()
					d.brk.Failure()
					lastErr = fmt.Errorf("odbc: session replay: %w", rerr)
					if !Transient(rerr) {
						return lastErr
					}
					continue
				}
			}
		}
		sp.End()
		e.everConnected = true
		e.inner = inner
		return nil
	}
	return lastErr
}

func (e *resilientExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.ExecContext(context.Background(), sql)
}

func (e *resilientExecutor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	d := e.d
	d.init()
	ctx, cancel := d.reqContext(ctx)
	defer cancel()
	readOnly := isReadOnly(sql)
	for attempt := 0; ; attempt++ {
		if e.inner == nil {
			if err := e.reconnect(ctx); err != nil {
				return nil, err
			}
		}
		res, err := e.inner.ExecContext(ctx, sql)
		if err == nil {
			d.brk.Success()
			return res, nil
		}
		if !ConnectionError(err) {
			// The backend answered: the connection is healthy.
			d.brk.Success()
			if !Transient(err) || attempt >= d.maxRetries() {
				return nil, err
			}
			// Retryable abort (deadlock class): the backend rolled the
			// statement back, so re-executing is safe even for writes.
			d.Metrics.addRetry()
			trace.FromContext(ctx).Event("retry", "op", "exec", "class", "retryable-abort", "attempt", strconv.Itoa(attempt+1))
			d.backoff(ctx, attempt+1)
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		// Connection-level failure: the session is unusable.
		d.brk.Failure()
		_ = e.inner.Close()
		e.inner = nil
		if !readOnly {
			// The request was already on the wire and is not idempotent:
			// the backend may have applied it. Never retry.
			return nil, fmt.Errorf("%w (%v)", ErrMaybeApplied, err)
		}
		if attempt >= d.maxRetries() || ctx.Err() != nil {
			return nil, err
		}
		d.Metrics.addRetry()
		trace.FromContext(ctx).Event("retry", "op", "exec", "class", "connection-lost", "attempt", strconv.Itoa(attempt+1))
		d.backoff(ctx, attempt+1)
	}
}

func (e *resilientExecutor) Close() error {
	if e.inner == nil {
		return nil
	}
	err := e.inner.Close()
	e.inner = nil
	return err
}
