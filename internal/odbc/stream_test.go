package odbc_test

import (
	"context"
	"errors"
	"io"
	"testing"

	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire/cwp"
)

// drainStream reads a stream to its terminal error, returning the events.
func drainStream(t *testing.T, st odbc.ResultStream) ([]cwp.StreamEvent, error) {
	t.Helper()
	var evs []cwp.StreamEvent
	for {
		ev, err := st.Next(context.Background())
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

// countRows sums the rows across a stream's batch events.
func countRows(evs []cwp.StreamEvent) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == cwp.StreamBatch {
			n += len(ev.Batch.Rows)
		}
	}
	return n
}

// OpenStream on the in-process executor uses the buffered fallback; the
// event sequence must match what the materializing path returns.
func TestOpenStreamBufferedFallback(t *testing.T) {
	eng := resilienceEngine(t)
	ex, err := (&odbc.LocalDriver{Engine: eng, User: "u"}).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	buffered, err := ex.ExecContext(context.Background(), "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	st, err := odbc.OpenStream(context.Background(), ex, "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	evs, serr := drainStream(t, st)
	if serr != io.EOF {
		t.Fatalf("terminal = %v, want io.EOF", serr)
	}
	if evs[0].Kind != cwp.StreamMeta || evs[len(evs)-1].Kind != cwp.StreamComplete {
		t.Fatalf("event shape wrong: %+v", evs)
	}
	if got, want := countRows(evs), len(buffered[0].Rows()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}

	// A rowless statement is a single Complete event.
	st, err = odbc.OpenStream(context.Background(), ex, "INSERT INTO rt VALUES (4)")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	evs, serr = drainStream(t, st)
	if serr != io.EOF || len(evs) != 1 || evs[0].Kind != cwp.StreamComplete || evs[0].Affected != 1 {
		t.Fatalf("insert events = %+v (%v)", evs, serr)
	}
}

// A connection failure before the first event keeps the buffered retry
// semantics: reconnect, replay, re-execute — invisible to the consumer.
func TestResilientStreamPreEventFailureRetried(t *testing.T) {
	fd, rd, met := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	se := ex.(odbc.StreamExecutor)

	fd.QueueExecErrors(faultdriver.Dropped())
	st, err := se.ExecStream(context.Background(), "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatalf("ExecStream after transient pre-event failure: %v", err)
	}
	evs, serr := drainStream(t, st)
	if serr != io.EOF {
		t.Fatalf("terminal = %v", serr)
	}
	if got := countRows(evs); got != 3 {
		t.Fatalf("rows = %d, want 3", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if met.Retries() != 1 {
		t.Errorf("retries = %d, want 1", met.Retries())
	}
	if fd.Connects() != 2 {
		t.Errorf("connects = %d, want 2 (reconnect after drop)", fd.Connects())
	}
}

// A pre-event connection failure on a write surfaces ErrMaybeApplied — the
// statement may have been applied, so it is never re-executed.
func TestResilientStreamPreEventWriteNotRetried(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	se := ex.(odbc.StreamExecutor)

	fd.QueueExecErrors(faultdriver.Dropped())
	_, err = se.ExecStream(context.Background(), "INSERT INTO rt VALUES (9)")
	if !errors.Is(err, odbc.ErrMaybeApplied) {
		t.Fatalf("err = %v, want ErrMaybeApplied", err)
	}
	if fd.Execs() != 1 {
		t.Errorf("execs = %d, want 1 (no retry)", fd.Execs())
	}
}

// Once a batch has been delivered, a connection death is terminal: no
// retry, the dead connection is discarded, and the next request heals by
// reconnecting.
func TestResilientStreamMidStreamDropNotRetried(t *testing.T) {
	fd, rd, met := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	se := ex.(odbc.StreamExecutor)

	fd.DropAfterBatches(1)
	st, err := se.ExecStream(context.Background(), "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	evs, serr := drainStream(t, st)
	if serr == nil || serr == io.EOF {
		t.Fatalf("terminal = %v, want connection error", serr)
	}
	if !odbc.ConnectionError(serr) {
		t.Fatalf("terminal %v is not a connection error", serr)
	}
	if got := countRows(evs); got != 3 {
		t.Fatalf("rows before drop = %d, want the full first batch (3)", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if fd.Execs() != 1 {
		t.Fatalf("execs = %d, want 1 — a mid-stream failure must never re-execute", fd.Execs())
	}
	if met.Retries() != 0 {
		t.Errorf("retries = %d, want 0", met.Retries())
	}

	// The executor heals on the next request by reconnecting.
	fd.DropAfterBatches(0)
	res, err := ex.ExecContext(context.Background(), "SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatalf("request after mid-stream drop: %v", err)
	}
	if res[0].Rows()[0][0].I != 3 {
		t.Errorf("count = %v", res[0].Rows()[0][0])
	}
	if fd.Connects() != 2 {
		t.Errorf("connects = %d, want 2", fd.Connects())
	}
}

// A backend SQL failure mid-stream (error parcel, connection alive) is also
// terminal for the stream, but the connection survives: the next request
// reuses it without reconnecting.
func TestResilientStreamMidStreamBackendErrorKeepsConnection(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	se := ex.(odbc.StreamExecutor)

	injected := &cwp.BackendError{Code: 3807, Message: "spool space exceeded mid-result"}
	fd.QueueStreamError(1, injected)
	st, err := se.ExecStream(context.Background(), "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	evs, serr := drainStream(t, st)
	var be *cwp.BackendError
	if !errors.As(serr, &be) || be.Code != 3807 {
		t.Fatalf("terminal = %v, want injected backend error", serr)
	}
	if got := countRows(evs); got != 3 {
		t.Fatalf("rows before failure = %d, want 3", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if fd.Execs() != 1 {
		t.Fatalf("execs = %d, want 1 (no retry)", fd.Execs())
	}
	res, err := ex.ExecContext(context.Background(), "SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatalf("request after backend error: %v", err)
	}
	if res[0].Rows()[0][0].I != 3 {
		t.Errorf("count = %v", res[0].Rows()[0][0])
	}
	if fd.Connects() != 1 {
		t.Errorf("connects = %d, want 1 — the connection must survive a SQL failure", fd.Connects())
	}
}

// Abandoning a live stream mid-result discards the (unsynchronizable)
// connection; the next request reconnects.
func TestResilientStreamAbandonDiscardsConnection(t *testing.T) {
	fd, rd, _ := resilientStack(t)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	se := ex.(odbc.StreamExecutor)

	st, err := se.ExecStream(context.Background(), "SELECT x FROM rt ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecContext(context.Background(), "SELECT 1"); err != nil {
		t.Fatalf("request after abandoned stream: %v", err)
	}
	if fd.Connects() != 2 {
		t.Errorf("connects = %d, want 2 (abandoned stream discarded the connection)", fd.Connects())
	}
}
