package odbc

import (
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
)

// replicaSetup builds N independent engines with the same schema.
func replicaSetup(t *testing.T, n int) ([]*engine.Engine, *ReplicatedDriver) {
	t.Helper()
	engines := make([]*engine.Engine, n)
	drivers := make([]Driver, n)
	for i := range engines {
		engines[i] = engine.New(dialect.CloudA())
		s := engines[i].NewSession()
		if _, err := s.ExecSQL("CREATE TABLE r (x INT)"); err != nil {
			t.Fatal(err)
		}
		drivers[i] = &LocalDriver{Engine: engines[i]}
	}
	return engines, &ReplicatedDriver{Replicas: drivers}
}

func TestReplicatedWritesFanOut(t *testing.T) {
	engines, d := replicaSetup(t, 3)
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		n, err := eng.NewSession().RowCount("r")
		if err != nil || n != 2 {
			t.Fatalf("replica %d has %d rows (%v)", i, n, err)
		}
	}
}

func TestReplicatedReadsRoundRobin(t *testing.T) {
	_, d := replicaSetup(t, 3)
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	// Every read must return the same data regardless of which replica
	// serves it.
	for i := 0; i < 9; i++ {
		results, err := ex.Exec("SELECT COUNT(*) FROM r")
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Rows()[0][0].I != 1 {
			t.Fatalf("read %d inconsistent", i)
		}
	}
	// The round-robin cursor advanced across replicas.
	if d.rr < 9 {
		t.Errorf("round robin did not advance: %d", d.rr)
	}
}

func TestReplicatedMixedRequestIsWrite(t *testing.T) {
	engines, d := replicaSetup(t, 2)
	ex, _ := d.Connect()
	defer ex.Close()
	// A multi-statement request containing DML fans out entirely.
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1); SELECT COUNT(*) FROM r;"); err != nil {
		t.Fatal(err)
	}
	for i, eng := range engines {
		n, _ := eng.NewSession().RowCount("r")
		if n != 1 {
			t.Fatalf("replica %d missed the write (%d rows)", i, n)
		}
	}
}

func TestReplicatedIsReadOnlyClassification(t *testing.T) {
	cases := map[string]bool{
		"SELECT 1":                          true,
		"SELECT a FROM t; SELECT b FROM u;": true,
		"INSERT INTO t (a) VALUES (1)":      false,
		"SELECT 1; DELETE FROM t x;":        false,
		"CREATE TABLE t (a INT)":            false,
		"not sql at all":                    false,
	}
	for sql, want := range cases {
		if got := isReadOnly(sql); got != want {
			t.Errorf("isReadOnly(%q) = %v, want %v", sql, got, want)
		}
	}
}

func TestReplicatedNeedsReplicas(t *testing.T) {
	d := &ReplicatedDriver{}
	if _, err := d.Connect(); err == nil {
		t.Error("empty replica set accepted")
	}
}
