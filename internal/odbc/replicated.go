package odbc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/wire/cwp"
)

// ReplicatedDriver implements the paper's scale-out scenario (Appendix B.3):
// "maintain multiple replicas of the data warehouse and load balance queries
// across them ... The ADV solution on top can then automatically route the
// queries to the different replicas, without sacrificing consistency,
// and without requiring changes to the application logic."
//
// Read-only requests round-robin across the replicas; any request containing
// a write (DML/DDL) executes on every replica so their contents stay
// identical. A replica whose read fails on a connection error is
// quarantined for the rest of the session and the read fails over to the
// next replica; a write that lands on some replicas but not others marks
// the executor divergent, and every subsequent request fails with
// ErrReplicaDivergent instead of silently serving inconsistent reads.
type ReplicatedDriver struct {
	// Replicas are the per-replica drivers (at least one).
	Replicas []Driver
	// Metrics, when non-nil, counts replica quarantines.
	Metrics *ResilienceMetrics
	// CompareReads switches reads from round-robin load balancing to
	// dual-dispatch: every read-only request fans out to all healthy
	// replicas, the answers are diffed against the lowest-indexed healthy
	// replica (the baseline), and differences are recorded as Divergence
	// records instead of poisoning the session — the shadow-migration replay
	// mode, where replica 0 is the trusted profile and the others are
	// migration candidates under verification. Successful write fan-outs are
	// diffed too (command tags and affected counts).
	CompareReads bool
	// Compare overrides the result comparator consulted in CompareReads mode
	// (nil = StrictCompare). The replay harness installs a type-aware differ
	// with float/timestamp tolerances and unordered-set semantics here.
	Compare CompareFunc
	// OnDivergence, when non-nil, additionally receives each divergence as it
	// is detected (the per-executor record drained via DivergenceSource is
	// always kept). Called from the executing goroutine; must be safe for
	// concurrent use when sessions share the driver.
	OnDivergence func(*Divergence)
	rr           uint64
}

// Connect opens one session per replica.
func (d *ReplicatedDriver) Connect() (Executor, error) {
	return d.ConnectContext(context.Background())
}

// ConnectContext opens one session per replica under the given context.
func (d *ReplicatedDriver) ConnectContext(ctx context.Context) (Executor, error) {
	if len(d.Replicas) == 0 {
		return nil, fmt.Errorf("odbc: replicated driver needs at least one replica")
	}
	sessions := make([]Executor, len(d.Replicas))
	for i, r := range d.Replicas {
		ex, err := ConnectContext(ctx, r)
		if err != nil {
			for _, s := range sessions[:i] {
				_ = s.Close()
			}
			return nil, fmt.Errorf("odbc: replica %d: %w", i, err)
		}
		sessions[i] = ex
	}
	return &replicatedExecutor{d: d, sessions: sessions, down: make([]bool, len(sessions))}, nil
}

var (
	_ Driver           = (*ReplicatedDriver)(nil)
	_ ContextDriver    = (*ReplicatedDriver)(nil)
	_ DivergenceSource = (*replicatedExecutor)(nil)
)

type replicatedExecutor struct {
	d        *ReplicatedDriver
	sessions []Executor

	mu sync.Mutex
	// down marks replicas quarantined after connection failures; they are
	// skipped by the read rotation and excluded from write fan-out.
	down []bool
	// divergent, once set, poisons the executor: a partial write failure
	// means the replicas no longer hold identical contents.
	divergent error
	// divs accumulates divergence records in compare mode until drained via
	// TakeDivergences.
	divs []*Divergence
}

// recordDivergence stamps and stores one divergence record.
func (e *replicatedExecutor) recordDivergence(d *Divergence, sql string, replica int) {
	stampDivergence(d, sql, replica)
	e.mu.Lock()
	e.divs = append(e.divs, d)
	e.mu.Unlock()
	if e.d.OnDivergence != nil {
		e.d.OnDivergence(d)
	}
}

// TakeDivergences implements DivergenceSource: it drains the records
// accumulated since the last call. The executor serves one request at a
// time, so draining between requests attributes records per statement.
func (e *replicatedExecutor) TakeDivergences() []*Divergence {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.divs
	e.divs = nil
	return out
}

// compare diffs two replicas' results with the configured comparator.
func (e *replicatedExecutor) compare(sql string, base, other []*cwp.StatementResult) *Divergence {
	cf := e.d.Compare
	if cf == nil {
		cf = StrictCompare
	}
	return cf(sql, base, other)
}

// isReadOnly reports whether every statement of the request is a query.
// Unparseable requests are treated as writes (the conservative choice for
// consistency).
func isReadOnly(sql string) bool {
	stmts, err := parser.Parse(sql, parser.ANSI, nil)
	if err != nil {
		return false
	}
	for _, s := range stmts {
		if _, ok := s.(*sqlast.SelectStmt); !ok {
			return false
		}
	}
	return true
}

func (e *replicatedExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.ExecContext(context.Background(), sql)
}

func (e *replicatedExecutor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	e.mu.Lock()
	div := e.divergent
	e.mu.Unlock()
	if div != nil {
		return nil, div
	}
	if isReadOnly(sql) {
		if e.d.CompareReads {
			return e.execReadCompare(ctx, sql)
		}
		return e.execRead(ctx, sql)
	}
	return e.execWrite(ctx, sql)
}

func (e *replicatedExecutor) isDown(i int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down[i]
}

// quarantine removes replica i from rotation after a connection failure.
func (e *replicatedExecutor) quarantine(i int) {
	e.mu.Lock()
	already := e.down[i]
	e.down[i] = true
	e.mu.Unlock()
	if !already {
		_ = e.sessions[i].Close()
		e.d.Metrics.addQuarantine()
	}
}

// execRead round-robins across healthy replicas, failing over past any
// replica whose connection dies. SQL errors surface immediately: replicas
// hold identical contents, so every replica would answer the same.
func (e *replicatedExecutor) execRead(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	n := len(e.sessions)
	start := atomic.AddUint64(&e.d.rr, 1)
	var lastErr error
	for k := 0; k < n; k++ {
		i := int((start + uint64(k)) % uint64(n))
		if e.isDown(i) {
			continue
		}
		res, err := e.sessions[i].ExecContext(ctx, sql)
		if err == nil {
			return res, nil
		}
		if !ConnectionError(err) {
			return nil, err
		}
		e.quarantine(i)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("odbc: no healthy replica")
	}
	return nil, fmt.Errorf("odbc: all replicas unavailable: %w", lastErr)
}

// execReadCompare fans a read out to every healthy replica concurrently and
// diffs each answer against the baseline (the lowest-indexed healthy
// replica). Divergences are recorded, not fatal: the shadow migration must
// keep scanning the workload after finding a behavioural gap. A replica
// whose connection dies is quarantined exactly as in load-balancing mode; a
// dead baseline promotes the next healthy replica and retries the fan-out.
// The baseline's answer is always the one returned to the caller.
func (e *replicatedExecutor) execReadCompare(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	type outcome struct {
		res []*cwp.StatementResult
		err error
	}
	for attempt := 0; attempt < len(e.sessions); attempt++ {
		var idxs []int
		for i := range e.sessions {
			if !e.isDown(i) {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			return nil, fmt.Errorf("odbc: all replicas unavailable: %w", fmt.Errorf("odbc: no healthy replica"))
		}
		outcomes := make([]outcome, len(e.sessions))
		var wg sync.WaitGroup
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := e.sessions[i].ExecContext(ctx, sql)
				outcomes[i] = outcome{res: res, err: err}
			}(i)
		}
		wg.Wait()
		base := idxs[0]
		if err := outcomes[base].err; err != nil && ConnectionError(err) {
			// The baseline died mid-request; its answer is unusable as truth.
			// Quarantine it and re-dispatch against the survivors.
			e.quarantine(base)
			continue
		}
		for _, i := range idxs[1:] {
			o := outcomes[i]
			if o.err != nil && ConnectionError(o.err) {
				// Infrastructure loss, not behaviour: quarantine, don't report.
				e.quarantine(i)
				continue
			}
			if d := e.diffOutcomes(sql, outcomes[base].res, outcomes[base].err, o.res, o.err); d != nil {
				e.recordDivergence(d, sql, i)
			}
		}
		return outcomes[base].res, outcomes[base].err
	}
	return nil, fmt.Errorf("odbc: all replicas unavailable: %w", fmt.Errorf("odbc: no healthy replica"))
}

// diffOutcomes compares one replica's outcome against the baseline's,
// covering the error cross-product before delegating equal-success pairs to
// the result comparator.
func (e *replicatedExecutor) diffOutcomes(sql string, baseRes []*cwp.StatementResult, baseErr error, res []*cwp.StatementResult, err error) *Divergence {
	switch {
	case baseErr == nil && err == nil:
		return e.compare(sql, baseRes, res)
	case baseErr != nil && err != nil:
		if baseErr.Error() != err.Error() {
			return &Divergence{Kind: DivError, Stmt: -1, Row: -1, Col: -1,
				Baseline: "error: " + baseErr.Error(), Observed: "error: " + err.Error()}
		}
		return nil
	case baseErr != nil:
		return &Divergence{Kind: DivError, Stmt: -1, Row: -1, Col: -1,
			Baseline: "error: " + baseErr.Error(), Observed: "ok"}
	default:
		return &Divergence{Kind: DivError, Stmt: -1, Row: -1, Col: -1,
			Baseline: "ok", Observed: "error: " + err.Error()}
	}
}

// execWrite fans the request out to every healthy replica. All replicas
// must succeed; a partial failure leaves the contents diverged and poisons
// the executor.
func (e *replicatedExecutor) execWrite(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	type outcome struct {
		res []*cwp.StatementResult
		err error
	}
	outcomes := make([]*outcome, len(e.sessions))
	var wg sync.WaitGroup
	for i, s := range e.sessions {
		if e.isDown(i) {
			continue
		}
		wg.Add(1)
		go func(i int, s Executor) {
			defer wg.Done()
			res, err := s.ExecContext(ctx, sql)
			outcomes[i] = &outcome{res: res, err: err}
		}(i, s)
	}
	wg.Wait()
	var firstOK []*cwp.StatementResult
	firstOKIdx := -1
	succeeded, failed := 0, 0
	var firstErr error
	firstErrIdx := -1
	for i, o := range outcomes {
		if o == nil {
			continue // quarantined before the write
		}
		if o.err == nil {
			succeeded++
			if firstOK == nil {
				firstOK = o.res
				firstOKIdx = i
			}
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = fmt.Errorf("odbc: replica %d: %w", i, o.err)
			firstErrIdx = i
		}
		if ConnectionError(o.err) {
			e.quarantine(i)
		}
	}
	if failed == 0 {
		if succeeded == 0 {
			return nil, fmt.Errorf("odbc: no healthy replica")
		}
		if e.d.CompareReads {
			// Dual-replay mode diffs successful write outcomes too: an UPDATE
			// touching different row counts on the two profiles is exactly the
			// behavioural gap a shadow migration must surface.
			for i, o := range outcomes {
				if o == nil || i == firstOKIdx || o.err != nil {
					continue
				}
				if d := e.compare(sql, firstOK, o.res); d != nil {
					e.recordDivergence(d, sql, i)
				}
			}
		}
		return firstOK, nil
	}
	if succeeded > 0 {
		// The write landed on some replicas only: their contents now
		// differ, and no replica can be trusted to answer reads for this
		// session. Record the detail — which replica, which error — then
		// poison the executor rather than serve inconsistency.
		d := &Divergence{Kind: DivWritePartial, Stmt: -1, Row: -1, Col: -1,
			Baseline: "applied", Observed: "error: " + firstErr.Error()}
		e.recordDivergence(d, sql, firstErrIdx)
		e.mu.Lock()
		e.divergent = fmt.Errorf("%w: %s", ErrReplicaDivergent, d.String())
		div := e.divergent
		e.mu.Unlock()
		return nil, div
	}
	return nil, firstErr
}

// Close closes every replica session and aggregates the errors, so a
// failure mid-slice cannot leak the remaining sessions. Quarantined
// replicas were already closed when they left the rotation.
func (e *replicatedExecutor) Close() error {
	e.mu.Lock()
	down := append([]bool(nil), e.down...)
	e.mu.Unlock()
	errs := make([]error, 0, len(e.sessions))
	for i, s := range e.sessions {
		if down[i] {
			continue
		}
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("odbc: replica %d close: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
