package odbc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/wire/cwp"
)

// ReplicatedDriver implements the paper's scale-out scenario (Appendix B.3):
// "maintain multiple replicas of the data warehouse and load balance queries
// across them ... The ADV solution on top can then automatically route the
// queries to the different replicas, without sacrificing consistency,
// and without requiring changes to the application logic."
//
// Read-only requests round-robin across the replicas; any request containing
// a write (DML/DDL) executes on every replica so their contents stay
// identical. A replica whose read fails on a connection error is
// quarantined for the rest of the session and the read fails over to the
// next replica; a write that lands on some replicas but not others marks
// the executor divergent, and every subsequent request fails with
// ErrReplicaDivergent instead of silently serving inconsistent reads.
type ReplicatedDriver struct {
	// Replicas are the per-replica drivers (at least one).
	Replicas []Driver
	// Metrics, when non-nil, counts replica quarantines.
	Metrics *ResilienceMetrics
	rr      uint64
}

// Connect opens one session per replica.
func (d *ReplicatedDriver) Connect() (Executor, error) {
	return d.ConnectContext(context.Background())
}

// ConnectContext opens one session per replica under the given context.
func (d *ReplicatedDriver) ConnectContext(ctx context.Context) (Executor, error) {
	if len(d.Replicas) == 0 {
		return nil, fmt.Errorf("odbc: replicated driver needs at least one replica")
	}
	sessions := make([]Executor, len(d.Replicas))
	for i, r := range d.Replicas {
		ex, err := ConnectContext(ctx, r)
		if err != nil {
			for _, s := range sessions[:i] {
				_ = s.Close()
			}
			return nil, fmt.Errorf("odbc: replica %d: %w", i, err)
		}
		sessions[i] = ex
	}
	return &replicatedExecutor{d: d, sessions: sessions, down: make([]bool, len(sessions))}, nil
}

var (
	_ Driver        = (*ReplicatedDriver)(nil)
	_ ContextDriver = (*ReplicatedDriver)(nil)
)

type replicatedExecutor struct {
	d        *ReplicatedDriver
	sessions []Executor

	mu sync.Mutex
	// down marks replicas quarantined after connection failures; they are
	// skipped by the read rotation and excluded from write fan-out.
	down []bool
	// divergent, once set, poisons the executor: a partial write failure
	// means the replicas no longer hold identical contents.
	divergent error
}

// isReadOnly reports whether every statement of the request is a query.
// Unparseable requests are treated as writes (the conservative choice for
// consistency).
func isReadOnly(sql string) bool {
	stmts, err := parser.Parse(sql, parser.ANSI, nil)
	if err != nil {
		return false
	}
	for _, s := range stmts {
		if _, ok := s.(*sqlast.SelectStmt); !ok {
			return false
		}
	}
	return true
}

func (e *replicatedExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.ExecContext(context.Background(), sql)
}

func (e *replicatedExecutor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	e.mu.Lock()
	div := e.divergent
	e.mu.Unlock()
	if div != nil {
		return nil, div
	}
	if isReadOnly(sql) {
		return e.execRead(ctx, sql)
	}
	return e.execWrite(ctx, sql)
}

func (e *replicatedExecutor) isDown(i int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down[i]
}

// quarantine removes replica i from rotation after a connection failure.
func (e *replicatedExecutor) quarantine(i int) {
	e.mu.Lock()
	already := e.down[i]
	e.down[i] = true
	e.mu.Unlock()
	if !already {
		_ = e.sessions[i].Close()
		e.d.Metrics.addQuarantine()
	}
}

// execRead round-robins across healthy replicas, failing over past any
// replica whose connection dies. SQL errors surface immediately: replicas
// hold identical contents, so every replica would answer the same.
func (e *replicatedExecutor) execRead(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	n := len(e.sessions)
	start := atomic.AddUint64(&e.d.rr, 1)
	var lastErr error
	for k := 0; k < n; k++ {
		i := int((start + uint64(k)) % uint64(n))
		if e.isDown(i) {
			continue
		}
		res, err := e.sessions[i].ExecContext(ctx, sql)
		if err == nil {
			return res, nil
		}
		if !ConnectionError(err) {
			return nil, err
		}
		e.quarantine(i)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("odbc: no healthy replica")
	}
	return nil, fmt.Errorf("odbc: all replicas unavailable: %w", lastErr)
}

// execWrite fans the request out to every healthy replica. All replicas
// must succeed; a partial failure leaves the contents diverged and poisons
// the executor.
func (e *replicatedExecutor) execWrite(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	type outcome struct {
		res []*cwp.StatementResult
		err error
	}
	outcomes := make([]*outcome, len(e.sessions))
	var wg sync.WaitGroup
	for i, s := range e.sessions {
		if e.isDown(i) {
			continue
		}
		wg.Add(1)
		go func(i int, s Executor) {
			defer wg.Done()
			res, err := s.ExecContext(ctx, sql)
			outcomes[i] = &outcome{res: res, err: err}
		}(i, s)
	}
	wg.Wait()
	var firstOK []*cwp.StatementResult
	succeeded, failed := 0, 0
	var firstErr error
	for i, o := range outcomes {
		if o == nil {
			continue // quarantined before the write
		}
		if o.err == nil {
			succeeded++
			if firstOK == nil {
				firstOK = o.res
			}
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = fmt.Errorf("odbc: replica %d: %w", i, o.err)
		}
		if ConnectionError(o.err) {
			e.quarantine(i)
		}
	}
	if failed == 0 {
		if succeeded == 0 {
			return nil, fmt.Errorf("odbc: no healthy replica")
		}
		return firstOK, nil
	}
	if succeeded > 0 {
		// The write landed on some replicas only: their contents now
		// differ, and no replica can be trusted to answer reads for this
		// session. Poison the executor rather than serve inconsistency.
		e.mu.Lock()
		e.divergent = fmt.Errorf("%w: %v", ErrReplicaDivergent, firstErr)
		div := e.divergent
		e.mu.Unlock()
		return nil, div
	}
	return nil, firstErr
}

// Close closes every replica session and aggregates the errors, so a
// failure mid-slice cannot leak the remaining sessions. Quarantined
// replicas were already closed when they left the rotation.
func (e *replicatedExecutor) Close() error {
	e.mu.Lock()
	down := append([]bool(nil), e.down...)
	e.mu.Unlock()
	errs := make([]error, 0, len(e.sessions))
	for i, s := range e.sessions {
		if down[i] {
			continue
		}
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("odbc: replica %d close: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
