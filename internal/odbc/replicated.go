package odbc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
	"hyperq/internal/wire/cwp"
)

// ReplicatedDriver implements the paper's scale-out scenario (Appendix B.3):
// "maintain multiple replicas of the data warehouse and load balance queries
// across them ... The ADV solution on top can then automatically route the
// queries to the different replicas, without sacrificing consistency,
// and without requiring changes to the application logic."
//
// Read-only requests round-robin across the replicas; any request containing
// a write (DML/DDL) executes on every replica so their contents stay
// identical. The paper lists this as an extension under development — here
// it is implemented as a drop-in backend driver.
type ReplicatedDriver struct {
	// Replicas are the per-replica drivers (at least one).
	Replicas []Driver
	rr       uint64
}

// Connect opens one session per replica.
func (d *ReplicatedDriver) Connect() (Executor, error) {
	if len(d.Replicas) == 0 {
		return nil, fmt.Errorf("odbc: replicated driver needs at least one replica")
	}
	sessions := make([]Executor, len(d.Replicas))
	for i, r := range d.Replicas {
		ex, err := r.Connect()
		if err != nil {
			for _, s := range sessions[:i] {
				_ = s.Close()
			}
			return nil, fmt.Errorf("odbc: replica %d: %w", i, err)
		}
		sessions[i] = ex
	}
	return &replicatedExecutor{d: d, sessions: sessions}, nil
}

type replicatedExecutor struct {
	d        *ReplicatedDriver
	sessions []Executor
}

// isReadOnly reports whether every statement of the request is a query.
// Unparseable requests are treated as writes (the conservative choice for
// consistency).
func isReadOnly(sql string) bool {
	stmts, err := parser.Parse(sql, parser.ANSI, nil)
	if err != nil {
		return false
	}
	for _, s := range stmts {
		if _, ok := s.(*sqlast.SelectStmt); !ok {
			return false
		}
	}
	return true
}

func (e *replicatedExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	if isReadOnly(sql) {
		// Round-robin reads.
		i := atomic.AddUint64(&e.d.rr, 1) % uint64(len(e.sessions))
		return e.sessions[i].Exec(sql)
	}
	// Writes fan out to every replica so contents stay consistent; all
	// replicas must succeed.
	results := make([][]*cwp.StatementResult, len(e.sessions))
	errs := make([]error, len(e.sessions))
	var wg sync.WaitGroup
	for i, s := range e.sessions {
		wg.Add(1)
		go func(i int, s Executor) {
			defer wg.Done()
			results[i], errs[i] = s.Exec(sql)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("odbc: replica %d: %w", i, err)
		}
	}
	return results[0], nil
}

func (e *replicatedExecutor) Close() error {
	var first error
	for _, s := range e.sessions {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
