package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
)

// fakeDriver is a minimal in-memory backend for pool tests: it counts dials
// and closes, can refuse dials with an injected error, and can delay execs.
type fakeDriver struct {
	mu        sync.Mutex
	dials     int
	closes    int
	dialErr   error
	execDelay time.Duration
}

func (d *fakeDriver) Connect() (odbc.Executor, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dialErr != nil {
		return nil, d.dialErr
	}
	d.dials++
	return &fakeExec{d: d, id: d.dials}, nil
}

func (d *fakeDriver) setDialErr(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dialErr = err
}

func (d *fakeDriver) counts() (dials, closes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials, d.closes
}

type fakeExec struct {
	d  *fakeDriver
	id int

	mu      sync.Mutex
	execs   int
	closed  bool
	restore func(odbc.Executor) error
}

func (e *fakeExec) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.ExecContext(context.Background(), sql)
}

func (e *fakeExec) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	e.d.mu.Lock()
	delay := e.d.execDelay
	e.d.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("exec on closed connection %d", e.id)
	}
	e.execs++
	return []*cwp.StatementResult{{Command: "OK"}}, nil
}

func (e *fakeExec) Close() error {
	e.mu.Lock()
	wasClosed := e.closed
	e.closed = true
	e.mu.Unlock()
	if !wasClosed {
		e.d.mu.Lock()
		e.d.closes++
		e.d.mu.Unlock()
	}
	return nil
}

func (e *fakeExec) OnReconnect(restore func(odbc.Executor) error) {
	e.mu.Lock()
	e.restore = restore
	e.mu.Unlock()
}

func (e *fakeExec) restoreHook() func(odbc.Executor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.restore
}

var _ odbc.ReconnectAware = (*fakeExec)(nil)

func newTestPool(t *testing.T, cfg Config) (*Pool, *fakeDriver) {
	t.Helper()
	d := &fakeDriver{}
	if cfg.Driver == nil {
		cfg.Driver = d
	}
	if cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = -1 // tests drive maintain() directly
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p, d
}

// A statement-level lease dials lazily, executes, and parks the connection
// for reuse: two sequential sessions share one backend connection.
func TestStatementLeaseReuse(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 4})
	for i := 0; i < 2; i++ {
		sc := p.Session()
		if _, err := sc.Exec("SEL 1"); err != nil {
			t.Fatal(err)
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if dials, _ := d.counts(); dials != 1 {
		t.Errorf("dials = %d, want 1 (sequential statements share one connection)", dials)
	}
	s := p.Stats()
	if s.Idle != 1 || s.InUse != 0 {
		t.Errorf("idle/in_use = %d/%d, want 1/0", s.Idle, s.InUse)
	}
	if s.Acquires != 2 {
		t.Errorf("acquires = %d, want 2", s.Acquires)
	}
}

// The pool never opens more than Size backend connections, no matter how
// many sessions run concurrently.
func TestPoolBoundsBackendConnections(t *testing.T) {
	const size, sessions = 2, 16
	p, d := newTestPool(t, Config{Size: size, MaxWaiters: -1, AcquireTimeout: 30 * time.Second})
	d.execDelay = time.Millisecond
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := p.Session()
			defer sc.Close()
			for j := 0; j < 5; j++ {
				if _, err := sc.Exec("SEL 1"); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if dials, _ := d.counts(); dials > size {
		t.Errorf("dials = %d, want <= %d", dials, size)
	}
	if s := p.Stats(); s.Waits == 0 {
		t.Error("waits = 0, want > 0 (16 sessions over 2 connections must queue)")
	}
}

// holdConn leases the pool's only connection and returns a release func.
func holdConn(t *testing.T, p *Pool) func(broken bool) {
	t.Helper()
	c, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return func(broken bool) { p.release(c, broken) }
}

// waitForWaiters polls until the wait queue reaches n.
func waitForWaiters(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Waiters >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("wait queue never reached %d (now %d)", n, p.Stats().Waiters)
}

// Queued waiters are served in arrival order: fair FIFO handoff.
func TestFIFOFairness(t *testing.T) {
	p, _ := newTestPool(t, Config{Size: 1, MaxWaiters: -1, AcquireTimeout: 30 * time.Second})
	release := holdConn(t, p)
	const waiters = 8
	served := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		waitForWaiters(t, p, i) // previous waiter is enqueued before the next starts
		go func() {
			c, err := p.acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				served <- -1
				return
			}
			served <- i
			p.release(c, false)
		}()
	}
	waitForWaiters(t, p, waiters)
	release(false)
	for want := 0; want < waiters; want++ {
		got := <-served
		if got != want {
			t.Fatalf("waiter served out of order: got %d, want %d", got, want)
		}
	}
}

// The max-waiters cap rejects excess demand immediately with ErrSaturated.
func TestAdmissionControlSaturation(t *testing.T) {
	p, _ := newTestPool(t, Config{Size: 1, MaxWaiters: 2})
	release := holdConn(t, p)
	defer release(false)
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := p.acquire(context.Background())
			if err == nil {
				defer p.release(c, false)
			}
			results <- err
		}()
	}
	waitForWaiters(t, p, 2)
	_, err := p.acquire(context.Background())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire over cap: err = %v, want ErrSaturated", err)
	}
	if s := p.Stats(); s.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Rejected)
	}
	release(false)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued waiter: %v", err)
		}
	}
}

// An acquire that cannot be served within its deadline fails with
// ErrAcquireTimeout instead of hanging.
func TestAcquireTimeout(t *testing.T) {
	p, _ := newTestPool(t, Config{Size: 1, AcquireTimeout: 20 * time.Millisecond})
	release := holdConn(t, p)
	defer release(false)
	start := time.Now()
	_, err := p.acquire(context.Background())
	if !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("err = %v, want ErrAcquireTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed-out acquire took %v", elapsed)
	}
	s := p.Stats()
	if s.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", s.Timeouts)
	}
	if s.WaitSeconds.Count == 0 {
		t.Error("wait histogram empty: timed-out waits must still observe")
	}
}

// Connections past MaxLifetime are recycled at release and during
// maintenance rather than reused indefinitely.
func TestMaxLifetimeRecycle(t *testing.T) {
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	p, d := newTestPool(t, Config{Size: 2, MaxLifetime: time.Minute, now: clock})
	sc := p.Session()
	defer sc.Close()
	if _, err := sc.Exec("SEL 1"); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)
	// The parked connection is past its lifetime: the next lease discards it
	// and dials fresh.
	if _, err := sc.Exec("SEL 1"); err != nil {
		t.Fatal(err)
	}
	dials, closes := d.counts()
	if dials != 2 || closes != 1 {
		t.Errorf("dials/closes = %d/%d, want 2/1 (expired connection recycled)", dials, closes)
	}
	if s := p.Stats(); s.Recycled != 1 {
		t.Errorf("recycled = %d, want 1", s.Recycled)
	}
	// Maintenance also recycles an expired idle connection.
	advance(2 * time.Minute)
	p.maintain()
	if s := p.Stats(); s.Recycled != 2 || s.Idle != 0 {
		t.Errorf("after maintain: recycled=%d idle=%d, want 2/0", s.Recycled, s.Idle)
	}
}

// Warm-up pre-dials to MinIdle; idle reaping trims back down to MinIdle.
func TestWarmupAndIdleReaping(t *testing.T) {
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	p, d := newTestPool(t, Config{Size: 4, MinIdle: 2, IdleTimeout: time.Minute, now: clock})
	p.maintain()
	if dials, _ := d.counts(); dials != 2 {
		t.Errorf("warm-up dials = %d, want 2", dials)
	}
	if s := p.Stats(); s.Idle != 2 {
		t.Errorf("idle after warm-up = %d, want 2", s.Idle)
	}
	// Burst to 4 connections, then go quiet: reaping trims back to MinIdle.
	var conns []*conn
	for i := 0; i < 4; i++ {
		c, err := p.acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		p.release(c, false)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	p.maintain()
	s := p.Stats()
	if s.Idle != 2 || s.Reaped != 2 {
		t.Errorf("after reap: idle=%d reaped=%d, want 2/2", s.Idle, s.Reaped)
	}
}

// With MinIdle 0 (the default) a maintenance pass over parked idle
// connections must not disturb the open-connection accounting: a negative
// pre-dial "need" once decremented numOpen per pass, silently raising the
// effective pool capacity above Size.
func TestMaintainKeepsCapacityWithoutMinIdle(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 2})
	// Park both connections idle, then run several maintenance passes.
	c1, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.release(c1, false)
	p.release(c2, false)
	for i := 0; i < 5; i++ {
		p.maintain()
	}
	if s := p.Stats(); s.Idle != 2 {
		t.Fatalf("idle after maintenance = %d, want 2", s.Idle)
	}
	// The pool is at capacity: reacquire both, and a third acquire must
	// queue (and time out) instead of dialing a connection beyond Size.
	if _, err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.acquire(ctx); !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("third acquire = %v, want ErrAcquireTimeout", err)
	}
	if dials, _ := d.counts(); dials != 2 {
		t.Fatalf("dials = %d, want 2 (capacity leaked)", dials)
	}
}

// A failed warm-up pre-dial must give back every reserved slot. With
// MinIdle >= 2 and the backend down, each maintenance pass reserves MinIdle
// slots but aborts on the first dial error; the un-dialed reservations once
// leaked, wedging the pool at numOpen == Size with zero real connections.
func TestMaintainDialFailureReleasesReservedSlots(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 4, MinIdle: 2, AcquireTimeout: 200 * time.Millisecond})
	d.setDialErr(errors.New("backend down"))
	for i := 0; i < 10; i++ {
		p.maintain()
	}
	p.mu.Lock()
	open := p.numOpen
	p.mu.Unlock()
	if open != 0 {
		t.Fatalf("numOpen after failed warm-up passes = %d, want 0 (reserved slots leaked)", open)
	}
	// The backend recovers: the pool must still open all Size connections.
	d.setDialErr(nil)
	var conns []*conn
	for i := 0; i < 4; i++ {
		c, err := p.acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d after backend recovery: %v", i, err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		p.release(c, false)
	}
	if dials, _ := d.counts(); dials != 4 {
		t.Errorf("dials = %d, want 4", dials)
	}
}

// When a replacement dial hits an open circuit breaker the whole wait queue
// is shed with the breaker error: every queued session would fail the same
// way, and holding them only delays the failure.
func TestBreakerOpenShedsWaitQueue(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 1})
	release := holdConn(t, p)
	const waiters = 3
	results := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			c, err := p.acquire(context.Background())
			if err == nil {
				p.release(c, false)
			}
			results <- err
		}()
	}
	waitForWaiters(t, p, waiters)
	// The backend goes hard-down: the held connection breaks and the
	// replacement dial is rejected by the open breaker.
	d.setDialErr(fmt.Errorf("connect: %w", odbc.ErrBreakerOpen))
	release(true)
	for i := 0; i < waiters; i++ {
		if err := <-results; !errors.Is(err, odbc.ErrBreakerOpen) {
			t.Errorf("waiter %d: err = %v, want ErrBreakerOpen", i, err)
		}
	}
	if s := p.Stats(); s.Shed == 0 {
		t.Error("shed = 0, want > 0")
	}
}

// Pin dedicates one connection across statements; Unpin returns it clean.
func TestPinUnpin(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 2})
	sc := p.Session()
	defer sc.Close()
	if err := sc.Pin(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sc.Pinned() {
		t.Fatal("Pinned() = false after Pin")
	}
	var ids []int
	for i := 0; i < 3; i++ {
		if _, err := sc.Exec("SEL 1"); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sc.pinConn.ex.(*fakeExec).id)
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("pinned statements used connections %v, want one connection", ids)
	}
	if s := p.Stats(); s.Pinned != 1 || s.Pins != 1 {
		t.Errorf("pinned/pins = %d/%d, want 1/1", s.Pinned, s.Pins)
	}
	sc.Unpin()
	if sc.Pinned() {
		t.Error("Pinned() = true after Unpin")
	}
	s := p.Stats()
	if s.Pinned != 0 || s.Unpins != 1 || s.Idle != 1 {
		t.Errorf("pinned/unpins/idle = %d/%d/%d, want 0/1/1", s.Pinned, s.Unpins, s.Idle)
	}
	if _, closes := d.counts(); closes != 0 {
		t.Errorf("closes = %d, want 0 (unpinned clean connection is reused)", closes)
	}
}

// The session replay hook installs on the pinned connection and is cleared
// before the connection can serve another session.
func TestPinInstallsReconnectHook(t *testing.T) {
	p, _ := newTestPool(t, Config{Size: 1})
	sc := p.Session()
	defer sc.Close()
	restore := func(odbc.Executor) error { return nil }
	sc.OnReconnect(restore)
	if err := sc.Pin(context.Background()); err != nil {
		t.Fatal(err)
	}
	ex := sc.pinConn.ex.(*fakeExec)
	if ex.restoreHook() == nil {
		t.Fatal("restore hook not installed on pinned connection")
	}
	sc.Unpin()
	if ex.restoreHook() != nil {
		t.Error("restore hook survived release: would replay another session's state")
	}
	// A plain statement lease never carries the hook.
	if _, err := sc.Exec("SEL 1"); err != nil {
		t.Fatal(err)
	}
	if ex.restoreHook() != nil {
		t.Error("restore hook installed on a statement-level lease")
	}
}

// Closing a session with a pinned connection destroys the connection: it
// holds session state (volatile tables, an open transaction) that must not
// leak to another session — and the slot frees for a fresh dial.
func TestCloseDestroysPinnedConnection(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 1})
	sc := p.Session()
	if err := sc.Pin(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, closes := d.counts(); closes != 1 {
		t.Errorf("closes = %d, want 1 (dirty pinned connection destroyed)", closes)
	}
	s := p.Stats()
	if s.Idle != 0 || s.InUse != 0 || s.Pinned != 0 {
		t.Errorf("idle/in_use/pinned = %d/%d/%d, want 0/0/0", s.Idle, s.InUse, s.Pinned)
	}
	// The slot is free: a new session acquires without waiting.
	sc2 := p.Session()
	defer sc2.Close()
	if _, err := sc2.Exec("SEL 1"); err != nil {
		t.Fatalf("exec after dirty close: %v", err)
	}
}

// A broken connection is discarded at release, never handed to a waiter.
func TestBrokenConnectionDiscarded(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 1})
	release := holdConn(t, p)
	done := make(chan error, 1)
	go func() {
		c, err := p.acquire(context.Background())
		if err == nil {
			p.release(c, false)
		}
		done <- err
	}()
	waitForWaiters(t, p, 1)
	release(true)
	if err := <-done; err != nil {
		t.Fatalf("waiter after broken release: %v", err)
	}
	dials, closes := d.counts()
	if dials != 2 || closes != 1 {
		t.Errorf("dials/closes = %d/%d, want 2/1 (broken conn replaced by fresh dial)", dials, closes)
	}
	if s := p.Stats(); s.Discarded != 1 {
		t.Errorf("discarded = %d, want 1", s.Discarded)
	}
}

// Close fails queued waiters with ErrClosed and closes idle connections.
func TestCloseFailsWaiters(t *testing.T) {
	p, d := newTestPool(t, Config{Size: 1})
	release := holdConn(t, p)
	done := make(chan error, 1)
	go func() {
		_, err := p.acquire(context.Background())
		done <- err
	}()
	waitForWaiters(t, p, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("waiter after Close: err = %v, want ErrClosed", err)
	}
	release(false) // leased connection closes on release after pool close
	if _, closes := d.counts(); closes != 1 {
		t.Errorf("closes = %d, want 1", closes)
	}
	if _, err := p.Connect(); !errors.Is(err, ErrClosed) {
		t.Errorf("Connect after Close: err = %v, want ErrClosed", err)
	}
}

// The race-enabled stress test: 100 goroutines acquire, execute, pin, unpin
// and close against a small pool. Run under -race in scripts/check.sh; the
// invariant checks catch leaked or double-released connections.
func TestPoolStressRace(t *testing.T) {
	const goroutines = 100
	p, d := newTestPool(t, Config{Size: 4, MaxWaiters: -1, AcquireTimeout: 10 * time.Second})
	var execs int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := p.Session()
			defer sc.Close()
			for j := 0; j < 20; j++ {
				switch (i + j) % 4 {
				case 0: // pinned burst: state established, used, dropped
					if err := sc.Pin(context.Background()); err != nil {
						t.Errorf("pin: %v", err)
						return
					}
					if _, err := sc.Exec("SEL 1"); err != nil {
						t.Errorf("pinned exec: %v", err)
						return
					}
					atomic.AddInt64(&execs, 1)
					sc.Unpin()
				default: // statement-level lease
					if _, err := sc.Exec("SEL 1"); err != nil {
						t.Errorf("exec: %v", err)
						return
					}
					atomic.AddInt64(&execs, 1)
				}
			}
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt64(&execs); got != goroutines*20 {
		t.Errorf("execs = %d, want %d", got, goroutines*20)
	}
	s := p.Stats()
	if s.InUse != 0 || s.Pinned != 0 || s.Waiters != 0 {
		t.Errorf("leak: in_use=%d pinned=%d waiters=%d, want all 0", s.InUse, s.Pinned, s.Waiters)
	}
	if s.Idle > 4 {
		t.Errorf("idle = %d, want <= pool size 4", s.Idle)
	}
	dials, closes := d.counts()
	if open := dials - closes; open != s.Idle {
		t.Errorf("driver sees %d open connections, pool parks %d", open, s.Idle)
	}
	if s.Pins != s.Unpins {
		t.Errorf("pins=%d unpins=%d, want equal", s.Pins, s.Unpins)
	}
}
