package pool

import (
	"context"
	"io"
	"testing"
)

// streamPool builds a single-connection pool over the fake driver so lease
// accounting is observable.
func streamPool(t *testing.T) (*fakeDriver, *Pool) {
	t.Helper()
	d := &fakeDriver{}
	p, err := New(Config{Driver: d, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return d, p
}

// A stream consumed to its terminal event returns the lease healthy: the
// connection goes back to the pool and is reused.
func TestSessionStreamLeaseReleasedClean(t *testing.T) {
	d, p := streamPool(t)
	sc := p.Session()
	defer sc.Close()

	for i := 0; i < 3; i++ {
		st, err := sc.ExecStream(context.Background(), "SELECT 1")
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := st.Next(context.Background()); err != nil {
				if err != io.EOF {
					t.Fatalf("terminal = %v", err)
				}
				break
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.InUse != 0 || st.Discarded != 0 {
		t.Fatalf("in_use=%d discarded=%d after clean streams", st.InUse, st.Discarded)
	}
	if dials, _ := d.counts(); dials != 1 {
		t.Fatalf("dials = %d, want 1 (connection reused)", dials)
	}
}

// Abandoning a stream before its terminal event destroys the lease: the
// backend session may be mid-result and cannot be handed to anyone else.
func TestSessionStreamAbandonDestroysLease(t *testing.T) {
	d, p := streamPool(t)
	sc := p.Session()
	defer sc.Close()

	st, err := sc.ExecStream(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	// Close without draining: the lease must be released broken.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.InUse != 0 || s.Discarded != 1 {
		t.Fatalf("in_use=%d discarded=%d after abandoned stream", s.InUse, s.Discarded)
	}
	// The pool replaces the destroyed connection for the next request.
	st, err = sc.ExecStream(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := st.Next(context.Background()); err != nil {
			break
		}
	}
	_ = st.Close()
	if dials, _ := d.counts(); dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}
}

// Close is idempotent on the lease: a double Close must not double-release.
func TestSessionStreamDoubleCloseReleasesOnce(t *testing.T) {
	_, p := streamPool(t)
	sc := p.Session()
	defer sc.Close()

	st, err := sc.ExecStream(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	_ = st.Close()
	if s := p.Stats(); s.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1", s.Discarded)
	}
	// A fresh lease still works: the pool was not corrupted.
	if _, err := sc.ExecContext(context.Background(), "SELECT 1"); err != nil {
		t.Fatal(err)
	}
}
