package pool

import (
	"context"
	"errors"
	"io"
	"sync"

	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
)

var _ odbc.StreamExecutor = (*SessionConn)(nil)

// ExecStream opens a result stream under this session's connection
// discipline: the pinned connection when one is held, otherwise a
// statement-level lease that stays out until the stream terminates. Lease
// release is pessimistic like ExecContext — only a stream that ended
// cleanly (io.EOF after the final statement, or a backend SQL failure on a
// healthy connection) returns its connection to the pool; an abandoned or
// transport-broken stream's connection is destroyed, so a desynchronized
// backend session can never reach another frontend session.
func (sc *SessionConn) ExecStream(ctx context.Context, sql string) (odbc.ResultStream, error) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, ErrClosed
	}
	pinned := sc.pinConn
	sc.mu.Unlock()
	if pinned != nil {
		// Pinned connections are session-owned: no lease bookkeeping, the
		// pin/unpin lifecycle decides when the connection goes back.
		return odbc.OpenStream(ctx, pinned.ex, sql)
	}
	c, err := sc.p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	st, err := odbc.OpenStream(ctx, c.ex, sql)
	if err != nil {
		sc.p.release(c, odbc.ConnectionError(err))
		return nil, err
	}
	return &leasedStream{p: sc.p, c: c, inner: st}, nil
}

// leasedStream holds a pool lease open for the lifetime of a result stream
// and classifies the connection's health exactly once at release.
type leasedStream struct {
	p     *Pool
	c     *conn
	inner odbc.ResultStream

	// mu guards only the terminal flags; it is never held around inner
	// calls, so Close (the frontend-teardown path) can run while a Next is
	// blocked on the backend — closing the inner stream is what unblocks it.
	mu       sync.Mutex
	done     bool // terminal event observed
	connErr  bool // terminal error was connection-level
	released bool
}

func (s *leasedStream) Next(ctx context.Context) (cwp.StreamEvent, error) {
	ev, err := s.inner.Next(ctx)
	if err != nil {
		s.mu.Lock()
		s.done = true
		if !errors.Is(err, io.EOF) {
			s.connErr = odbc.ConnectionError(err)
		}
		s.mu.Unlock()
	}
	return ev, err
}

func (s *leasedStream) Close() error {
	err := s.inner.Close()
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return err
	}
	s.released = true
	broken := s.connErr || !s.done
	s.mu.Unlock()
	s.p.release(s.c, broken)
	return err
}
