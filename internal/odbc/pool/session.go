package pool

import (
	"context"
	"sync"

	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
)

// SessionConn is the per-frontend-session view of the pool: a virtual
// backend connection that leases a real one per statement (acquire → exec →
// release) and, when the gateway pins it, holds one dedicated connection
// across statements. It implements odbc.Executor so gateway sessions use it
// exactly like a dedicated connection, and odbc.ReconnectAware so the
// session-state replay hook installed by the gateway follows the pinned
// connection through transparent reconnects.
//
// Like every Executor, a SessionConn serves one frontend session and is not
// safe for concurrent statements; the mutex only guards the pin/close state
// against the gateway's teardown path running concurrently with a statement
// (abrupt frontend disconnect).
type SessionConn struct {
	p *Pool

	mu      sync.Mutex
	pinConn *conn                     // non-nil while pinned
	restore func(odbc.Executor) error // replay hook to install on the pinned conn
	closed  bool
}

// Session returns a new multiplexing session view of the pool.
func (p *Pool) Session() *SessionConn {
	return &SessionConn{p: p}
}

var (
	_ odbc.Executor       = (*SessionConn)(nil)
	_ odbc.ReconnectAware = (*SessionConn)(nil)
)

// Exec runs the request with no deadline.
func (sc *SessionConn) Exec(sql string) ([]*cwp.StatementResult, error) {
	return sc.ExecContext(context.Background(), sql)
}

// ExecContext runs the request on the pinned connection if one is held,
// otherwise under a statement-level lease: acquire (queueing behind other
// sessions when the pool is full), execute, release. A connection whose
// transport failed is discarded rather than returned, so a broken backend
// session never reaches another frontend session.
func (sc *SessionConn) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, ErrClosed
	}
	pinned := sc.pinConn
	sc.mu.Unlock()
	if pinned != nil {
		return pinned.ex.ExecContext(ctx, sql)
	}
	c, err := sc.p.acquire(ctx)
	if err != nil {
		return nil, err
	}
	// Pessimistic release: anything that escapes before the clean
	// classification below (including a panic in the executor) discards the
	// connection instead of leaking a possibly-wedged backend session.
	broken := true
	defer func() { sc.p.release(c, broken) }()
	results, err := c.ex.ExecContext(ctx, sql)
	broken = err != nil && odbc.ConnectionError(err)
	return results, err
}

// Pin dedicates one backend connection to this session until Unpin or
// Close. The gateway pins before executing session-scoped state (volatile
// or global-temporary DDL, emulation work tables, BEGIN) so that state and
// every later statement land on the same backend session. The restore hook
// registered via OnReconnect is installed on the pinned connection, so a
// resilient connection that reconnects mid-pin replays the session state.
// Pinning an already-pinned session is a no-op.
func (sc *SessionConn) Pin(ctx context.Context) error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return ErrClosed
	}
	if sc.pinConn != nil {
		sc.mu.Unlock()
		return nil
	}
	sc.mu.Unlock()
	c, err := sc.p.acquire(ctx)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	if sc.closed {
		// Teardown raced the pin: hand the connection straight back.
		sc.mu.Unlock()
		sc.p.release(c, false)
		return ErrClosed
	}
	sc.pinConn = c
	restore := sc.restore
	sc.mu.Unlock()
	if ra, ok := c.ex.(odbc.ReconnectAware); ok && restore != nil {
		ra.OnReconnect(restore)
	}
	sc.p.notePin()
	return nil
}

// Unpin releases the pinned connection back to the pool. The gateway calls
// it once the session's backend state is gone (replay log empty, no open
// transaction), returning the — now clean — connection to general service.
// No-op when not pinned.
func (sc *SessionConn) Unpin() {
	sc.mu.Lock()
	c := sc.pinConn
	sc.pinConn = nil
	sc.mu.Unlock()
	if c == nil {
		return
	}
	sc.p.noteUnpin()
	sc.p.release(c, false)
}

// Pinned reports whether the session currently holds a dedicated
// connection.
func (sc *SessionConn) Pinned() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.pinConn != nil
}

// OnReconnect registers the session-state replay hook. If a connection is
// already pinned the hook is (re)installed on it immediately; otherwise it
// is installed at the next Pin. Statement-level leases never carry the
// hook: an unpinned session has no backend state to replay.
func (sc *SessionConn) OnReconnect(restore func(odbc.Executor) error) {
	sc.mu.Lock()
	sc.restore = restore
	c := sc.pinConn
	sc.mu.Unlock()
	if c == nil {
		return
	}
	if ra, ok := c.ex.(odbc.ReconnectAware); ok {
		ra.OnReconnect(restore)
	}
}

// Close ends the frontend session's use of the pool. A still-pinned
// connection is destroyed rather than returned: it carries session state
// (volatile tables, an open transaction) that must not leak into another
// frontend session, and dropping it frees the slot for a fresh dial. This
// is the abrupt-disconnect path — the tdp handler's deferred session close
// lands here, so a client that vanishes mid-lease cannot strand pool
// capacity. Idempotent.
func (sc *SessionConn) Close() error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil
	}
	sc.closed = true
	c := sc.pinConn
	sc.pinConn = nil
	sc.restore = nil
	sc.mu.Unlock()
	if c != nil {
		sc.p.noteUnpin()
		sc.p.release(c, true) // dirty: destroy, never reuse
	}
	return nil
}
