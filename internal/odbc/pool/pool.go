// Package pool implements the gateway's shared backend connection pool —
// the ODBC Server / Gateway Manager mechanism (§4.5, §4.7) that lets one
// Hyper-Q instance front a large number of concurrent client connections
// against a backend with far fewer available sessions. Frontend sessions are
// multiplexed over a bounded set of backend executors, pgbouncer-style:
// statement-level leases by default (acquire → exec → release), with session
// pinning when gateway-side state (volatile tables, global-temporary
// instances, emulation work tables, open transactions) forces a dedicated
// backend connection.
//
// The pool layers under the fault-tolerant execution layer by composition:
// it dials through any odbc.Driver, so wrapping a ResilientDriver makes
// every pooled connection individually retry, reconnect, and respect the
// shared circuit breaker. Admission control keeps overload from piling up:
// a bounded FIFO wait queue with per-acquire deadlines, a max-waiters cap
// that rejects excess demand with a clean error, and load shedding of the
// whole queue when the backend's circuit breaker is open.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/metrics"
	"hyperq/internal/odbc"
	"hyperq/internal/trace"
)

// Sentinel errors surfaced to the gateway so each admission-control outcome
// maps onto a distinct frontend failure code.
var (
	// ErrSaturated rejects an acquire when the wait queue is already at the
	// max-waiters cap: admitting more waiters would only grow the pile-up.
	ErrSaturated = errors.New("pool: saturated, too many sessions waiting for a backend connection")
	// ErrAcquireTimeout fails an acquire whose deadline elapsed while
	// waiting for a backend connection.
	ErrAcquireTimeout = errors.New("pool: timed out waiting for a backend connection")
	// ErrClosed fails operations on a closed pool.
	ErrClosed = errors.New("pool: closed")
)

// Config configures a Pool.
type Config struct {
	// Driver dials backend sessions (required). Wrap it in an
	// odbc.ResilientDriver so each pooled connection is fault-tolerant.
	Driver odbc.Driver
	// Size bounds the number of backend connections. 0 selects 8.
	Size int
	// MinIdle is the warm-up target: the maintenance loop pre-dials until
	// this many connections sit idle (never exceeding Size).
	MinIdle int
	// MaxWaiters caps the acquire wait queue; an acquire beyond the cap
	// fails immediately with ErrSaturated. 0 selects 4×Size; negative
	// removes the cap.
	MaxWaiters int
	// AcquireTimeout bounds each acquire that arrives without an earlier
	// context deadline. 0 selects 5s; negative leaves acquires unbounded.
	AcquireTimeout time.Duration
	// MaxLifetime recycles connections older than this (credential
	// rotation, backend-side session caps, load rebalancing). 0 disables.
	MaxLifetime time.Duration
	// IdleTimeout closes connections idle longer than this, down to
	// MinIdle. 0 disables reaping.
	IdleTimeout time.Duration
	// MaintainEvery is the maintenance loop interval (idle reaping,
	// lifetime recycling, min-idle pre-dial). 0 selects 1s; negative
	// disables the loop (tests drive maintain directly).
	MaintainEvery time.Duration

	// now is injectable for deterministic lifetime/idle tests.
	now func() time.Time
}

// Pool is a shared backend connection pool. All methods are safe for
// concurrent use.
type Pool struct {
	cfg        Config
	size       int
	maxWaiters int

	mu      sync.Mutex
	idle    []*conn // LIFO: hot end at the back, coldest connection at the front
	waiters []*waiter
	numOpen int // connections open or being dialed (in-use + idle + dialing)
	inUse   int
	pinned  int
	closed  bool
	stop    chan struct{}

	waitHist *metrics.Histogram
	// counters (atomic)
	acquires   int64
	waits      int64
	timeouts   int64
	rejected   int64
	shed       int64
	dials      int64
	dialErrors int64
	discarded  int64
	recycled   int64
	reaped     int64
	pins       int64
	unpins     int64
}

// conn is one pooled backend connection.
type conn struct {
	ex        odbc.Executor
	createdAt time.Time
	idleSince time.Time
}

// waiter is one queued acquire. The channel is buffered so delivery never
// blocks the releasing goroutine; a zero message is a retry signal (capacity
// was freed, re-attempt the acquire).
type waiter struct {
	ch chan waitMsg
}

type waitMsg struct {
	c   *conn
	err error
}

// New creates the pool and starts its maintenance loop (warm-up to MinIdle,
// idle reaping, lifetime recycling).
func New(cfg Config) (*Pool, error) {
	if cfg.Driver == nil {
		return nil, fmt.Errorf("pool: driver required")
	}
	if cfg.Size == 0 {
		cfg.Size = 8
	}
	if cfg.Size < 0 {
		return nil, fmt.Errorf("pool: size must be positive")
	}
	if cfg.MinIdle > cfg.Size {
		cfg.MinIdle = cfg.Size
	}
	if cfg.AcquireTimeout == 0 {
		cfg.AcquireTimeout = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	maxWaiters := cfg.MaxWaiters
	if maxWaiters == 0 {
		maxWaiters = 4 * cfg.Size
	}
	p := &Pool{
		cfg:        cfg,
		size:       cfg.Size,
		maxWaiters: maxWaiters,
		stop:       make(chan struct{}),
		waitHist:   metrics.New(metrics.DurationBuckets()),
	}
	if cfg.MaintainEvery >= 0 {
		every := cfg.MaintainEvery
		if every == 0 {
			every = time.Second
		}
		go p.maintainLoop(every)
	}
	return p, nil
}

// Connect implements odbc.Driver: it returns a session-multiplexing view of
// the pool without dialing the backend — backend capacity is acquired per
// statement, not per logon.
func (p *Pool) Connect() (odbc.Executor, error) {
	return p.connect()
}

// ConnectContext implements odbc.ContextDriver.
func (p *Pool) ConnectContext(ctx context.Context) (odbc.Executor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.connect()
}

// connect returns a session-multiplexing view of the pool; it never blocks
// (backend capacity is acquired per statement), so both driver entry points
// share it.
func (p *Pool) connect() (odbc.Executor, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return p.Session(), nil
}

var (
	_ odbc.Driver        = (*Pool)(nil)
	_ odbc.ContextDriver = (*Pool)(nil)
)

// acquire leases one backend connection, dialing up to Size connections and
// queueing FIFO behind them when the pool is full. The returned connection
// is owned by the caller until release.
func (p *Pool) acquire(ctx context.Context) (*conn, error) {
	if p.cfg.AcquireTimeout > 0 {
		if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > p.cfg.AcquireTimeout {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.cfg.AcquireTimeout)
			defer cancel()
		}
	}
	atomic.AddInt64(&p.acquires, 1)
	waited := false
	var waitStart time.Time
	var wsp *trace.Span
	defer func() {
		if waited {
			p.waitHist.ObserveDuration(time.Since(waitStart))
			wsp.End()
		}
	}()
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		// Reuse the hottest idle connection, dropping any whose lifetime
		// expired while parked.
		var expired []*conn
		var got *conn
		for got == nil && len(p.idle) > 0 {
			c := p.idle[len(p.idle)-1]
			p.idle = p.idle[:len(p.idle)-1]
			if p.lifetimeExpiredLocked(c) {
				p.numOpen--
				atomic.AddInt64(&p.recycled, 1)
				expired = append(expired, c)
				continue
			}
			got = c
		}
		if got != nil {
			p.inUse++
			p.mu.Unlock()
			closeAll(expired)
			return got, nil
		}
		if p.numOpen < p.size {
			p.numOpen++ // reserve the slot before dialing
			p.mu.Unlock()
			closeAll(expired)
			c, err := p.dial(ctx)
			if err != nil {
				return nil, err
			}
			p.mu.Lock()
			p.inUse++
			p.mu.Unlock()
			return c, nil
		}
		// Pool full: admission control, then join the FIFO wait queue.
		if p.maxWaiters >= 0 && len(p.waiters) >= p.maxWaiters {
			p.mu.Unlock()
			closeAll(expired)
			atomic.AddInt64(&p.rejected, 1)
			return nil, fmt.Errorf("%w (%d waiting, cap %d)", ErrSaturated, p.maxWaiters, p.maxWaiters)
		}
		w := &waiter{ch: make(chan waitMsg, 1)}
		p.waiters = append(p.waiters, w)
		p.mu.Unlock()
		closeAll(expired)
		if !waited {
			waited = true
			waitStart = time.Now()
			atomic.AddInt64(&p.waits, 1)
			wsp = trace.FromContext(ctx).Start("pool-wait")
		}
		select {
		case m := <-w.ch:
			if m.err != nil {
				return nil, m.err
			}
			if m.c != nil {
				p.mu.Lock()
				p.inUse++
				p.mu.Unlock()
				return m.c, nil
			}
			// Retry signal: capacity was freed, loop and claim it.
		case <-ctx.Done():
			p.mu.Lock()
			removed := p.removeWaiterLocked(w)
			p.mu.Unlock()
			if !removed {
				// Delivery raced the deadline: the message is already in the
				// buffered channel. Pass whatever it carried along so the
				// freed capacity is not lost with this waiter.
				m := <-w.ch
				switch {
				case m.c != nil:
					p.handback(m.c)
				case m.err == nil: // retry signal
					p.mu.Lock()
					p.wakeOneLocked()
					p.mu.Unlock()
				}
			}
			atomic.AddInt64(&p.timeouts, 1)
			return nil, fmt.Errorf("%w (%v, pool size %d)", ErrAcquireTimeout, ctx.Err(), p.size)
		}
	}
}

// dial opens one backend connection for a reserved slot, un-reserving on
// failure. A dial rejected by an open circuit breaker sheds the entire wait
// queue: every queued acquire would hit the same fast-failing backend, and
// holding them until their deadlines only delays the frontend failure the
// application must see anyway.
func (p *Pool) dial(ctx context.Context) (*conn, error) {
	atomic.AddInt64(&p.dials, 1)
	ex, err := odbc.ConnectContext(ctx, p.cfg.Driver)
	if err != nil {
		atomic.AddInt64(&p.dialErrors, 1)
		p.mu.Lock()
		p.numOpen--
		if errors.Is(err, odbc.ErrBreakerOpen) {
			ws := p.waiters
			p.waiters = nil
			atomic.AddInt64(&p.shed, int64(len(ws)))
			p.mu.Unlock()
			for _, w := range ws {
				w.ch <- waitMsg{err: err}
			}
			return nil, err
		}
		p.wakeOneLocked()
		p.mu.Unlock()
		return nil, err
	}
	now := p.cfg.now()
	return &conn{ex: ex, createdAt: now}, nil
}

// release returns a leased connection. Broken connections (and those past
// their lifetime) are closed and their slot handed to a waiter to re-dial;
// healthy connections hand off directly to the first waiter or go idle.
func (p *Pool) release(c *conn, broken bool) {
	// The connection is quiesced here: clear any session-pinning reconnect
	// hook before another session can lease it.
	if ra, ok := c.ex.(odbc.ReconnectAware); ok {
		ra.OnReconnect(nil)
	}
	p.mu.Lock()
	p.inUse--
	if p.closed {
		p.numOpen--
		p.mu.Unlock()
		_ = c.ex.Close()
		return
	}
	if broken || p.lifetimeExpiredLocked(c) {
		p.numOpen--
		if broken {
			atomic.AddInt64(&p.discarded, 1)
		} else {
			atomic.AddInt64(&p.recycled, 1)
		}
		p.wakeOneLocked()
		p.mu.Unlock()
		_ = c.ex.Close()
		return
	}
	p.handbackLocked(c)
	p.mu.Unlock()
}

// handback re-parks a connection that never entered service (timed-out
// delivery, warm-up dial).
func (p *Pool) handback(c *conn) {
	p.mu.Lock()
	if p.closed {
		p.numOpen--
		p.mu.Unlock()
		_ = c.ex.Close()
		return
	}
	p.handbackLocked(c)
	p.mu.Unlock()
}

// handbackLocked hands a free connection to the first waiter (fair FIFO
// handoff) or parks it idle. Connections only go idle when nobody waits, so
// a later acquire can never barge past the queue.
func (p *Pool) handbackLocked(c *conn) {
	if w := p.popWaiterLocked(); w != nil {
		w.ch <- waitMsg{c: c}
		return
	}
	c.idleSince = p.cfg.now()
	p.idle = append(p.idle, c)
}

func (p *Pool) popWaiterLocked() *waiter {
	if len(p.waiters) == 0 {
		return nil
	}
	w := p.waiters[0]
	p.waiters = p.waiters[1:]
	return w
}

// wakeOneLocked signals the first waiter to retry: a slot was freed without
// a connection to hand over (broken, recycled, or failed dial).
func (p *Pool) wakeOneLocked() {
	if w := p.popWaiterLocked(); w != nil {
		w.ch <- waitMsg{}
	}
}

func (p *Pool) removeWaiterLocked(target *waiter) bool {
	for i, w := range p.waiters {
		if w == target {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return true
		}
	}
	return false
}

func (p *Pool) lifetimeExpiredLocked(c *conn) bool {
	return p.cfg.MaxLifetime > 0 && p.cfg.now().Sub(c.createdAt) >= p.cfg.MaxLifetime
}

func closeAll(conns []*conn) {
	for _, c := range conns {
		_ = c.ex.Close()
	}
}

// notePin / noteUnpin track the pinned-connection gauge.
func (p *Pool) notePin() {
	p.mu.Lock()
	p.pinned++
	p.mu.Unlock()
	atomic.AddInt64(&p.pins, 1)
}

func (p *Pool) noteUnpin() {
	p.mu.Lock()
	p.pinned--
	p.mu.Unlock()
	atomic.AddInt64(&p.unpins, 1)
}

// maintainDialTimeout bounds each warm-up pre-dial issued by the
// maintenance loop.
const maintainDialTimeout = 5 * time.Second

// maintainLoop runs warm-up, idle reaping, and lifetime recycling until the
// pool closes.
func (p *Pool) maintainLoop(every time.Duration) {
	p.maintain()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.maintain()
		case <-p.stop:
			return
		}
	}
}

// maintain performs one maintenance pass: recycle idle connections past
// MaxLifetime, reap connections idle beyond IdleTimeout (down to MinIdle),
// and pre-dial until MinIdle connections sit warm.
func (p *Pool) maintain() {
	now := p.cfg.now()
	var toClose []*conn
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	kept := p.idle[:0]
	for _, c := range p.idle {
		if p.lifetimeExpiredLocked(c) {
			p.numOpen--
			atomic.AddInt64(&p.recycled, 1)
			toClose = append(toClose, c)
			continue
		}
		kept = append(kept, c)
	}
	// The front of the idle list is the coldest connection.
	if p.cfg.IdleTimeout > 0 {
		for len(kept) > p.cfg.MinIdle && now.Sub(kept[0].idleSince) >= p.cfg.IdleTimeout {
			p.numOpen--
			atomic.AddInt64(&p.reaped, 1)
			toClose = append(toClose, kept[0])
			kept = kept[1:]
		}
	}
	p.idle = kept
	need := p.cfg.MinIdle - len(p.idle)
	if need < 0 {
		need = 0 // more idle than MinIdle is fine; IdleTimeout shrinks it
	}
	if room := p.size - p.numOpen; need > room {
		need = room
	}
	if len(p.waiters) > 0 {
		need = 0 // waiters dial for themselves; pre-dialing would race them
	}
	p.numOpen += need
	p.mu.Unlock()
	closeAll(toClose)
	for i := 0; i < need; i++ {
		// Bound each pre-dial so a hung backend cannot stall the single
		// maintenance goroutine (and with it reaping and recycling) when the
		// wrapped driver itself has no dial timeout.
		//hyperqlint:ignore ctxexec maintenance warm-up dials run outside any request; there is no caller context to thread
		ctx, cancel := context.WithTimeout(context.Background(), maintainDialTimeout)
		c, err := p.dial(ctx)
		cancel()
		if err != nil {
			// dial un-reserved its own slot; give back the reservations for
			// the dials we are abandoning too, or a backend outage would leak
			// a slot per pass until the pool wedged at numOpen == size.
			if rest := need - i - 1; rest > 0 {
				p.mu.Lock()
				p.numOpen -= rest
				for j := 0; j < rest; j++ {
					p.wakeOneLocked()
				}
				p.mu.Unlock()
			}
			return
		}
		p.handback(c)
	}
}

// Close shuts the pool down: queued waiters fail with ErrClosed, idle
// connections close now, leased connections close on release.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	idle := p.idle
	p.idle = nil
	p.numOpen -= len(idle)
	ws := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	for _, w := range ws {
		w.ch <- waitMsg{err: ErrClosed}
	}
	var errs []error
	for _, c := range idle {
		if err := c.ex.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Stats is a point-in-time snapshot of the pool: the operator surface behind
// /pool, the /metrics gauges, and -stats.
type Stats struct {
	// Gauges.
	Size    int `json:"size"`
	InUse   int `json:"in_use"`
	Idle    int `json:"idle"`
	Pinned  int `json:"pinned"`
	Waiters int `json:"waiters"`
	// Counters.
	Acquires   int64 `json:"acquires"`
	Waits      int64 `json:"waits"`
	Timeouts   int64 `json:"timeouts"`
	Rejected   int64 `json:"rejected"`
	Shed       int64 `json:"shed"`
	Dials      int64 `json:"dials"`
	DialErrors int64 `json:"dial_errors"`
	Discarded  int64 `json:"discarded"`
	Recycled   int64 `json:"recycled"`
	Reaped     int64 `json:"reaped"`
	Pins       int64 `json:"pins"`
	Unpins     int64 `json:"unpins"`
	// WaitSeconds is the acquire wait-time distribution (only acquires that
	// actually queued observe it).
	WaitSeconds metrics.Snapshot `json:"wait_seconds"`
}

// Stats snapshots the pool state.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Size:    p.size,
		InUse:   p.inUse,
		Idle:    len(p.idle),
		Pinned:  p.pinned,
		Waiters: len(p.waiters),
	}
	p.mu.Unlock()
	s.Acquires = atomic.LoadInt64(&p.acquires)
	s.Waits = atomic.LoadInt64(&p.waits)
	s.Timeouts = atomic.LoadInt64(&p.timeouts)
	s.Rejected = atomic.LoadInt64(&p.rejected)
	s.Shed = atomic.LoadInt64(&p.shed)
	s.Dials = atomic.LoadInt64(&p.dials)
	s.DialErrors = atomic.LoadInt64(&p.dialErrors)
	s.Discarded = atomic.LoadInt64(&p.discarded)
	s.Recycled = atomic.LoadInt64(&p.recycled)
	s.Reaped = atomic.LoadInt64(&p.reaped)
	s.Pins = atomic.LoadInt64(&p.pins)
	s.Unpins = atomic.LoadInt64(&p.unpins)
	s.WaitSeconds = p.waitHist.Snapshot()
	return s
}

// WaitQuantile reports the q-quantile of the acquire wait-time distribution
// in seconds.
func (p *Pool) WaitQuantile(q float64) float64 {
	return p.waitHist.Snapshot().Quantile(q)
}
