// Package faultdriver is a deterministic fault-injection odbc.Driver for
// resilience tests: it wraps any inner driver and injects scripted faults —
// refuse the next N connects, fail a specific connect attempt, drop a
// session's connection after K execs, drop every live session at once (a
// backend bounce), add fixed latency, or fail execs with queued errors
// (e.g. transient backend abort codes). Faults use real syscall errno
// values (ECONNREFUSED, ECONNRESET) wrapped in *net.OpError so they
// exercise the same classification paths as genuine network failures.
package faultdriver

import (
	"context"
	"net"
	"sync"
	"syscall"
	"time"

	"hyperq/internal/odbc"
	"hyperq/internal/wire/cwp"
)

// Refused is the error injected for refused connect attempts.
func Refused() error {
	return &net.OpError{Op: "dial", Net: "fault", Err: syscall.ECONNREFUSED}
}

// Dropped is the error injected when a session's connection is dropped.
func Dropped() error {
	return &net.OpError{Op: "read", Net: "fault", Err: syscall.ECONNRESET}
}

// Driver wraps an inner odbc.Driver with scripted faults. All methods are
// safe for concurrent use; faults can be armed while sessions are live.
type Driver struct {
	inner odbc.Driver

	mu             sync.Mutex
	connects       int           // total connect attempts observed
	execs          int           // total exec attempts observed
	refuseConnects int           // >0: refuse that many; <0: refuse all
	failConnect    map[int]error // 1-based connect ordinal -> injected error
	dropAfter      int           // sessions opened from now on drop after this many execs
	latency        time.Duration
	execErrs       []error // queue consumed by exec attempts
	sessions       []*Executor

	batchLatency     time.Duration // delay before each streamed batch delivery
	dropAfterBatches int           // streams opened from now on drop after this many batches
	streamErrs       []streamFault // queue consumed by stream opens
}

// streamFault is one scripted mid-result failure: the stream delivers
// afterBatches batches, then terminates with err.
type streamFault struct {
	afterBatches int
	err          error
}

// New wraps inner.
func New(inner odbc.Driver) *Driver {
	return &Driver{inner: inner, failConnect: map[int]error{}}
}

// RefuseConnects makes the next n connect attempts fail with ECONNREFUSED;
// n < 0 refuses every future connect until called again with 0.
func (d *Driver) RefuseConnects(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.refuseConnects = n
}

// FailConnect injects err on the nth (1-based, counted from driver
// creation) connect attempt.
func (d *Driver) FailConnect(n int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failConnect[n] = err
}

// DropAfterExecs arms sessions opened from now on to drop their connection
// when exec attempt k+1 starts (the first k execs succeed). 0 disables.
func (d *Driver) DropAfterExecs(k int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropAfter = k
}

// DropActiveSessions drops every live session's connection — the scripted
// equivalent of a backend bounce. Each session's next exec fails with
// ECONNRESET.
func (d *Driver) DropActiveSessions() {
	d.mu.Lock()
	sessions := append([]*Executor(nil), d.sessions...)
	d.mu.Unlock()
	for _, s := range sessions {
		s.drop()
	}
}

// SetLatency injects a fixed delay before every exec (deadline tests).
func (d *Driver) SetLatency(l time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.latency = l
}

// QueueExecErrors injects errors consumed by the next exec attempts, in
// order, before the request reaches the inner executor. Use backend error
// values (e.g. &cwp.BackendError{Code: 2631}) for transient abort codes.
func (d *Driver) QueueExecErrors(errs ...error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.execErrs = append(d.execErrs, errs...)
}

// SetBatchLatency injects a fixed delay before each streamed batch is
// delivered (slow-backend streaming tests). 0 disables.
func (d *Driver) SetBatchLatency(l time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.batchLatency = l
}

// DropAfterBatches arms streams opened from now on to drop the session's
// connection after delivering n batches — the mid-result equivalent of a
// backend death: the first n batches arrive, then the stream terminates
// with ECONNRESET and the session is gone. 0 disables.
func (d *Driver) DropAfterBatches(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropAfterBatches = n
}

// QueueStreamError injects err as the terminal result of the next opened
// stream once it has delivered afterBatches batches. Unlike
// DropAfterBatches the connection survives: the remaining events are
// drained so the protocol stays synchronized, modelling a backend that
// fails a later statement of a multi-statement request mid-result.
func (d *Driver) QueueStreamError(afterBatches int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.streamErrs = append(d.streamErrs, streamFault{afterBatches: afterBatches, err: err})
}

// Connects reports the number of connect attempts observed.
func (d *Driver) Connects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.connects
}

// Execs reports the number of exec attempts observed (including faulted
// ones).
func (d *Driver) Execs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.execs
}

// Connect implements odbc.Driver.
func (d *Driver) Connect() (odbc.Executor, error) {
	return d.ConnectContext(context.Background())
}

// ConnectContext implements odbc.ContextDriver.
func (d *Driver) ConnectContext(ctx context.Context) (odbc.Executor, error) {
	d.mu.Lock()
	d.connects++
	n := d.connects
	if err, ok := d.failConnect[n]; ok {
		delete(d.failConnect, n)
		d.mu.Unlock()
		return nil, err
	}
	if d.refuseConnects != 0 {
		if d.refuseConnects > 0 {
			d.refuseConnects--
		}
		d.mu.Unlock()
		return nil, Refused()
	}
	dropAfter := d.dropAfter
	d.mu.Unlock()
	inner, err := odbc.ConnectContext(ctx, d.inner)
	if err != nil {
		return nil, err
	}
	e := &Executor{d: d, inner: inner, dropAfter: dropAfter}
	d.mu.Lock()
	d.sessions = append(d.sessions, e)
	d.mu.Unlock()
	return e, nil
}

// Executor is one faultable backend session.
type Executor struct {
	d     *Driver
	inner odbc.Executor

	mu        sync.Mutex
	execs     int
	dropAfter int
	dropped   bool
}

func (e *Executor) drop() {
	e.mu.Lock()
	wasDropped := e.dropped
	e.dropped = true
	e.mu.Unlock()
	if !wasDropped {
		_ = e.inner.Close()
	}
}

func (e *Executor) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.ExecContext(context.Background(), sql)
}

func (e *Executor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	d := e.d
	d.mu.Lock()
	d.execs++
	var queued error
	if len(d.execErrs) > 0 {
		queued = d.execErrs[0]
		d.execErrs = d.execErrs[1:]
	}
	latency := d.latency
	d.mu.Unlock()
	if latency > 0 {
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if queued != nil {
		return nil, queued
	}
	e.mu.Lock()
	if !e.dropped && e.dropAfter > 0 && e.execs >= e.dropAfter {
		e.dropped = true
		e.mu.Unlock()
		_ = e.inner.Close()
		return nil, Dropped()
	}
	if e.dropped {
		e.mu.Unlock()
		return nil, Dropped()
	}
	e.execs++
	e.mu.Unlock()
	return e.inner.ExecContext(ctx, sql)
}

// ExecStream implements odbc.StreamExecutor: the pre-result faults behave
// exactly like ExecContext (queued errors, latency, drops consume the same
// scripts and counters), then the returned stream applies the mid-result
// faults armed on the driver.
func (e *Executor) ExecStream(ctx context.Context, sql string) (odbc.ResultStream, error) {
	d := e.d
	d.mu.Lock()
	d.execs++
	var queued error
	if len(d.execErrs) > 0 {
		queued = d.execErrs[0]
		d.execErrs = d.execErrs[1:]
	}
	latency := d.latency
	dropBatches := d.dropAfterBatches
	var fault *streamFault
	if len(d.streamErrs) > 0 {
		f := d.streamErrs[0]
		d.streamErrs = d.streamErrs[1:]
		fault = &f
	}
	d.mu.Unlock()
	if latency > 0 {
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if queued != nil {
		return nil, queued
	}
	e.mu.Lock()
	if !e.dropped && e.dropAfter > 0 && e.execs >= e.dropAfter {
		e.dropped = true
		e.mu.Unlock()
		_ = e.inner.Close()
		return nil, Dropped()
	}
	if e.dropped {
		e.mu.Unlock()
		return nil, Dropped()
	}
	e.execs++
	e.mu.Unlock()
	inner, err := odbc.OpenStream(ctx, e.inner, sql)
	if err != nil {
		return nil, err
	}
	return &faultStream{e: e, inner: inner, dropAfter: dropBatches, fault: fault}, nil
}

// faultStream counts delivered batches and fires the armed mid-result
// faults between events, so the consumer sees exactly N good batches before
// the failure.
type faultStream struct {
	e         *Executor
	inner     odbc.ResultStream
	dropAfter int
	fault     *streamFault

	batches     int
	pendingDrop bool
	err         error
}

func (s *faultStream) Next(ctx context.Context) (cwp.StreamEvent, error) {
	if s.err != nil {
		return cwp.StreamEvent{}, s.err
	}
	if s.pendingDrop {
		s.e.drop()
		_ = s.inner.Close()
		s.err = Dropped()
		return cwp.StreamEvent{}, s.err
	}
	if s.fault != nil && s.batches >= s.fault.afterBatches {
		ferr := s.fault.err
		s.fault = nil
		// Drain the real stream to completion so the connection stays
		// protocol-synchronized and reusable after the injected failure.
		for {
			if _, derr := s.inner.Next(ctx); derr != nil {
				break
			}
		}
		s.err = ferr
		return cwp.StreamEvent{}, s.err
	}
	ev, err := s.inner.Next(ctx)
	if err != nil {
		s.err = err
		return ev, err
	}
	if ev.Kind == cwp.StreamBatch {
		s.e.d.mu.Lock()
		lat := s.e.d.batchLatency
		s.e.d.mu.Unlock()
		if lat > 0 {
			t := time.NewTimer(lat)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				s.err = ctx.Err()
				return cwp.StreamEvent{}, s.err
			}
		}
		s.batches++
		if s.dropAfter > 0 && s.batches >= s.dropAfter {
			s.pendingDrop = true
		}
	}
	return ev, nil
}

func (s *faultStream) Close() error {
	return s.inner.Close()
}

func (e *Executor) Close() error {
	e.mu.Lock()
	dropped := e.dropped
	e.dropped = true
	e.mu.Unlock()
	d := e.d
	d.mu.Lock()
	for i, s := range d.sessions {
		if s == e {
			d.sessions = append(d.sessions[:i], d.sessions[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
	if dropped {
		return nil
	}
	return e.inner.Close()
}

var (
	_ odbc.Driver         = (*Driver)(nil)
	_ odbc.ContextDriver  = (*Driver)(nil)
	_ odbc.Executor       = (*Executor)(nil)
	_ odbc.StreamExecutor = (*Executor)(nil)
)
