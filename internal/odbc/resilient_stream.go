package odbc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"

	"hyperq/internal/trace"
	"hyperq/internal/wire/cwp"
)

// ExecStream opens a fault-tolerant result stream. Retry semantics are
// deliberately asymmetric around the first event: until something has been
// received, no result has been observed by anyone, so the usual ExecContext
// rules apply (transient failures retried with backoff, sent writes never
// re-executed, breaker accounting identical). From the first event on, rows
// may already have left the gateway toward the frontend — a re-execution
// would silently duplicate or reorder delivered data — so mid-stream
// failures are NEVER retried: they surface to the caller, the dead
// connection is discarded, and the breaker records the connection failure.
func (e *resilientExecutor) ExecStream(ctx context.Context, sql string) (ResultStream, error) {
	d := e.d
	d.init()
	// The cancel is owned by the returned stream (released in Close); a
	// deferred cancel here would kill the stream before it is consumed.
	rctx, cancel := d.reqContext(ctx)
	readOnly := isReadOnly(sql)
	for attempt := 0; ; attempt++ {
		if e.inner == nil {
			if err := e.reconnect(rctx); err != nil {
				cancel()
				return nil, err
			}
		}
		st, err := OpenStream(rctx, e.inner, sql)
		if err == nil {
			// Peek the first event so pre-result failures (backend rejected
			// the request, connection died before any data) keep buffered
			// retry semantics.
			ev, perr := st.Next(rctx)
			if perr == nil {
				d.brk.Success()
				return &resilientStream{e: e, inner: st, cancel: cancel, peeked: &ev, real: realStream(st)}, nil
			}
			_ = st.Close()
			if errors.Is(perr, io.EOF) {
				// Empty request (no statements): clean immediate end.
				d.brk.Success()
				return &resilientStream{e: e, cancel: cancel, done: true, err: io.EOF}, nil
			}
			err = perr
		}
		if !ConnectionError(err) {
			// The backend answered: the connection is healthy.
			d.brk.Success()
			if !Transient(err) || attempt >= d.maxRetries() {
				cancel()
				return nil, err
			}
			d.Metrics.addRetry()
			trace.FromContext(rctx).Event("retry", "op", "exec-stream", "class", "retryable-abort", "attempt", strconv.Itoa(attempt+1))
			d.backoff(rctx, attempt+1)
			if rctx.Err() != nil {
				cancel()
				return nil, err
			}
			continue
		}
		// Connection-level failure before any event: the session is unusable.
		d.brk.Failure()
		_ = e.inner.Close()
		e.inner = nil
		if !readOnly {
			cancel()
			return nil, fmt.Errorf("%w (%v)", ErrMaybeApplied, err)
		}
		if attempt >= d.maxRetries() || rctx.Err() != nil {
			cancel()
			return nil, err
		}
		d.Metrics.addRetry()
		trace.FromContext(rctx).Event("retry", "op", "exec-stream", "class", "connection-lost", "attempt", strconv.Itoa(attempt+1))
		d.backoff(rctx, attempt+1)
	}
}

// realStream reports whether st is backed by a live connection (as opposed
// to the slice-backed buffered fallback, which has no connection to poison).
func realStream(st ResultStream) bool {
	_, buffered := st.(*bufferedStream)
	return !buffered
}

// resilientStream forwards an inner stream while keeping the driver's
// breaker and connection bookkeeping correct at termination. It never
// retries: by construction it exists only after the first event arrived.
type resilientStream struct {
	e      *resilientExecutor
	inner  ResultStream
	cancel context.CancelFunc
	peeked *cwp.StreamEvent
	real   bool

	done bool
	err  error
}

func (s *resilientStream) Next(ctx context.Context) (cwp.StreamEvent, error) {
	if s.peeked != nil {
		ev := *s.peeked
		s.peeked = nil
		return ev, nil
	}
	if s.done {
		if s.err != nil {
			return cwp.StreamEvent{}, s.err
		}
		return cwp.StreamEvent{}, io.EOF
	}
	ev, err := s.inner.Next(ctx)
	if err == nil {
		return ev, nil
	}
	s.done = true
	s.err = err
	d := s.e.d
	switch {
	case errors.Is(err, io.EOF):
		d.brk.Success()
	case ConnectionError(err):
		// Mid-stream connection death. Rows may already be with the
		// frontend, so this is terminal — no retry — but the breaker and
		// pool must learn the connection is gone.
		d.brk.Failure()
		s.dropInner()
	case ctx.Err() != nil && err == ctx.Err():
		// Consumer cancellation (client disconnect): not a backend fault —
		// the breaker is untouched — but aborting mid-result broke the
		// connection's protocol state.
		if s.real {
			s.dropInner()
		}
	default:
		// Backend SQL failure mid-request: the connection answered and
		// stays healthy.
		d.brk.Success()
	}
	return cwp.StreamEvent{}, err
}

// dropInner discards the executor's dead connection so the next request
// reconnects instead of reusing a broken session.
func (s *resilientStream) dropInner() {
	if s.e.inner != nil {
		_ = s.e.inner.Close()
		s.e.inner = nil
	}
}

// Close releases the stream. Closing before the terminal event abandons the
// in-flight request: a live connection cannot be re-synchronized mid-result,
// so it is discarded (the breaker is untouched — abandonment is a consumer
// decision, not a backend failure).
func (s *resilientStream) Close() error {
	defer s.cancel()
	if !s.done {
		s.done = true
		s.err = fmt.Errorf("odbc: stream abandoned")
		if s.real {
			if s.inner != nil {
				_ = s.inner.Close()
			}
			s.dropInner()
			return nil
		}
	}
	if s.inner != nil {
		return s.inner.Close()
	}
	return nil
}

var _ StreamExecutor = (*resilientExecutor)(nil)
