// Package odbc is Hyper-Q's ODBC Server abstraction (§4.5): a uniform API
// over backend connectivity that "allows Hyper-Q to communicate with
// different target database systems using their corresponding drivers". Two
// base drivers exist: a network driver speaking the backend wire protocol
// (cwp) and an in-process driver that calls the engine directly, used by
// benchmarks to isolate gateway overhead from network noise. Composing
// drivers add fault tolerance (ResilientDriver) and replica scale-out
// (ReplicatedDriver) on top of any base driver.
package odbc

import (
	"context"
	"fmt"

	"hyperq/internal/engine"
	"hyperq/internal/tdf"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/xtra"
)

// Executor submits requests to one backend session and retrieves results in
// TDF batches. Executors are not safe for concurrent use; the gateway pairs
// each frontend session with its own executor.
type Executor interface {
	// Exec runs a (possibly multi-statement) SQL request.
	Exec(sql string) ([]*cwp.StatementResult, error)
	// ExecContext is Exec bounded by the context's deadline: a stalled or
	// dead backend surfaces as a timeout instead of hanging the session.
	ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error)
	// Close releases the backend session.
	Close() error
}

// Driver creates backend sessions.
type Driver interface {
	Connect() (Executor, error)
}

// ContextDriver is implemented by drivers whose session establishment can
// be bounded by a context deadline.
type ContextDriver interface {
	Driver
	ConnectContext(ctx context.Context) (Executor, error)
}

// ConnectContext connects via d, honouring ctx when the driver supports it.
func ConnectContext(ctx context.Context, d Driver) (Executor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cd, ok := d.(ContextDriver); ok {
		return cd.ConnectContext(ctx)
	}
	return d.Connect()
}

// ReconnectAware is implemented by executors that can transparently replace
// their backend connection. The registered restore hook runs against every
// replacement session before any statement, rebuilding gateway-managed
// session state (the session SET overlay's backend footprint: volatile and
// temporary table DDL) so the frontend session survives a backend bounce.
type ReconnectAware interface {
	OnReconnect(restore func(Executor) error)
}

// NetworkDriver connects over the backend wire protocol.
type NetworkDriver struct {
	Addr     string
	User     string
	Password string
}

// Connect opens a backend session.
func (d *NetworkDriver) Connect() (Executor, error) {
	return d.ConnectContext(context.Background())
}

// ConnectContext opens a backend session, bounding the TCP connect and the
// logon handshake by the context's deadline.
func (d *NetworkDriver) ConnectContext(ctx context.Context) (Executor, error) {
	c, err := cwp.DialContext(ctx, d.Addr, d.User, d.Password)
	if err != nil {
		return nil, fmt.Errorf("odbc: connect %s: %w", d.Addr, err)
	}
	return &netExecutor{c: c}, nil
}

type netExecutor struct {
	c *cwp.Client
}

func (e *netExecutor) Exec(sql string) ([]*cwp.StatementResult, error) { return e.c.Exec(sql) }
func (e *netExecutor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	return e.c.ExecContext(ctx, sql)
}
func (e *netExecutor) Close() error { return e.c.Close() }

// LocalDriver executes against an in-process engine.
type LocalDriver struct {
	Engine *engine.Engine
	User   string
}

// Connect opens an in-process session.
func (d *LocalDriver) Connect() (Executor, error) {
	s := d.Engine.NewSession()
	if d.User != "" {
		s.SetUser(d.User)
	}
	return &localExecutor{s: s}, nil
}

type localExecutor struct {
	s *engine.Session
}

func (e *localExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	return e.exec(sql)
}

func (e *localExecutor) ExecContext(ctx context.Context, sql string) ([]*cwp.StatementResult, error) {
	// In-process execution cannot be interrupted mid-statement; honour the
	// deadline at the request boundary.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.exec(sql)
}

func (e *localExecutor) exec(sql string) ([]*cwp.StatementResult, error) {
	results, err := e.s.ExecSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*cwp.StatementResult, len(results))
	for i, r := range results {
		sr := &cwp.StatementResult{Command: r.Command, Affected: r.RowsAffected}
		if r.Cols != nil {
			sr.Cols = metaFromCols(r.Cols)
			// Batch the rows like the network driver would.
			for off := 0; off < len(r.Rows); off += cwp.BatchRows {
				end := off + cwp.BatchRows
				if end > len(r.Rows) {
					end = len(r.Rows)
				}
				sr.Batches = append(sr.Batches, &tdf.Batch{Cols: sr.Cols, Rows: r.Rows[off:end]})
			}
			if len(r.Rows) == 0 {
				sr.Batches = append(sr.Batches, &tdf.Batch{Cols: sr.Cols})
			}
		}
		out[i] = sr
	}
	return out, nil
}

func (e *localExecutor) Close() error { return nil }

func metaFromCols(cols []xtra.Col) []tdf.ColumnMeta {
	out := make([]tdf.ColumnMeta, len(cols))
	for i, c := range cols {
		out[i] = tdf.ColumnMeta{Name: c.Name, Type: c.Type}
	}
	return out
}

var (
	_ Driver        = (*NetworkDriver)(nil)
	_ ContextDriver = (*NetworkDriver)(nil)
	_ Driver        = (*LocalDriver)(nil)
)
