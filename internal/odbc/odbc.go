// Package odbc is Hyper-Q's ODBC Server abstraction (§4.5): a uniform API
// over backend connectivity that "allows Hyper-Q to communicate with
// different target database systems using their corresponding drivers". Two
// drivers exist: a network driver speaking the backend wire protocol (cwp)
// and an in-process driver that calls the engine directly, used by
// benchmarks to isolate gateway overhead from network noise.
package odbc

import (
	"fmt"

	"hyperq/internal/engine"
	"hyperq/internal/tdf"
	"hyperq/internal/wire/cwp"
	"hyperq/internal/xtra"
)

// Executor submits requests to one backend session and retrieves results in
// TDF batches.
type Executor interface {
	// Exec runs a (possibly multi-statement) SQL request.
	Exec(sql string) ([]*cwp.StatementResult, error)
	// Close releases the backend session.
	Close() error
}

// NetworkDriver connects over the backend wire protocol.
type NetworkDriver struct {
	Addr     string
	User     string
	Password string
}

// Connect opens a backend session.
func (d *NetworkDriver) Connect() (Executor, error) {
	c, err := cwp.Dial(d.Addr, d.User, d.Password)
	if err != nil {
		return nil, fmt.Errorf("odbc: connect %s: %w", d.Addr, err)
	}
	return &netExecutor{c: c}, nil
}

type netExecutor struct {
	c *cwp.Client
}

func (e *netExecutor) Exec(sql string) ([]*cwp.StatementResult, error) { return e.c.Exec(sql) }
func (e *netExecutor) Close() error                                    { return e.c.Close() }

// LocalDriver executes against an in-process engine.
type LocalDriver struct {
	Engine *engine.Engine
	User   string
}

// Connect opens an in-process session.
func (d *LocalDriver) Connect() (Executor, error) {
	s := d.Engine.NewSession()
	if d.User != "" {
		s.SetUser(d.User)
	}
	return &localExecutor{s: s}, nil
}

type localExecutor struct {
	s *engine.Session
}

func (e *localExecutor) Exec(sql string) ([]*cwp.StatementResult, error) {
	results, err := e.s.ExecSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*cwp.StatementResult, len(results))
	for i, r := range results {
		sr := &cwp.StatementResult{Command: r.Command, Affected: r.RowsAffected}
		if r.Cols != nil {
			sr.Cols = metaFromCols(r.Cols)
			// Batch the rows like the network driver would.
			for off := 0; off < len(r.Rows); off += cwp.BatchRows {
				end := off + cwp.BatchRows
				if end > len(r.Rows) {
					end = len(r.Rows)
				}
				sr.Batches = append(sr.Batches, &tdf.Batch{Cols: sr.Cols, Rows: r.Rows[off:end]})
			}
			if len(r.Rows) == 0 {
				sr.Batches = append(sr.Batches, &tdf.Batch{Cols: sr.Cols})
			}
		}
		out[i] = sr
	}
	return out, nil
}

func (e *localExecutor) Close() error { return nil }

func metaFromCols(cols []xtra.Col) []tdf.ColumnMeta {
	out := make([]tdf.ColumnMeta, len(cols))
	for i, c := range cols {
		out[i] = tdf.ColumnMeta{Name: c.Name, Type: c.Type}
	}
	return out
}

// Driver creates backend sessions.
type Driver interface {
	Connect() (Executor, error)
}

var (
	_ Driver = (*NetworkDriver)(nil)
	_ Driver = (*LocalDriver)(nil)
)
