package odbc

import (
	"context"
	"io"

	"hyperq/internal/wire/cwp"
)

// ResultStream yields one request's results incrementally, in wire order.
// Next returns io.EOF after the request's final statement completed; any
// other error is terminal too (a backend SQL failure or a transport fault).
// Close releases the stream; closing before the terminal event abandons the
// in-flight request, which marks the underlying connection broken — streams
// cannot be re-synchronized mid-result. Streams are not safe for concurrent
// use.
type ResultStream interface {
	Next(ctx context.Context) (cwp.StreamEvent, error)
	Close() error
}

// StreamExecutor is an Executor that can additionally yield results
// incrementally, so a slow consumer exerts backpressure on the backend
// instead of forcing full materialization.
type StreamExecutor interface {
	Executor
	ExecStream(ctx context.Context, sql string) (ResultStream, error)
}

// OpenStream opens a result stream via ex, falling back to buffered
// execution behind a slice-backed stream when the executor has no native
// streaming support. The fallback preserves the streaming contract exactly
// (event order, io.EOF terminal) but not its memory profile.
func OpenStream(ctx context.Context, ex Executor, sql string) (ResultStream, error) {
	if se, ok := ex.(StreamExecutor); ok {
		return se.ExecStream(ctx, sql)
	}
	results, err := ex.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return BufferStream(results), nil
}

// BufferStream adapts materialized statement results to the ResultStream
// interface, replaying them as the event sequence a native stream would
// have produced. It is the adapter behind OpenStream's fallback and the
// faultdriver's stream shim.
func BufferStream(results []*cwp.StatementResult) ResultStream {
	return &bufferedStream{results: results}
}

type bufferedStream struct {
	results []*cwp.StatementResult
	stmt    int
	// phase within the current statement: 0 = meta pending, 1..len(Batches)
	// = batch i-1 delivered next, len+1 = complete pending.
	phase int
}

func (b *bufferedStream) Next(ctx context.Context) (cwp.StreamEvent, error) {
	if err := ctx.Err(); err != nil {
		return cwp.StreamEvent{}, err
	}
	for b.stmt < len(b.results) {
		r := b.results[b.stmt]
		if r.Cols == nil {
			// Row-less statement: a single Complete event.
			b.stmt++
			b.phase = 0
			return cwp.StreamEvent{Kind: cwp.StreamComplete, Command: r.Command, Affected: r.Affected}, nil
		}
		switch {
		case b.phase == 0:
			b.phase = 1
			return cwp.StreamEvent{Kind: cwp.StreamMeta, Cols: r.Cols}, nil
		case b.phase <= len(r.Batches):
			batch := r.Batches[b.phase-1]
			b.phase++
			return cwp.StreamEvent{Kind: cwp.StreamBatch, Batch: batch}, nil
		default:
			b.stmt++
			b.phase = 0
			return cwp.StreamEvent{Kind: cwp.StreamComplete, Command: r.Command, Affected: r.Affected}, nil
		}
	}
	return cwp.StreamEvent{}, io.EOF
}

func (b *bufferedStream) Close() error { return nil }

// ExecStream yields the request's results batch by batch straight off the
// wire; the network driver is the path where streaming actually bounds
// memory and propagates backpressure to the backend.
func (e *netExecutor) ExecStream(ctx context.Context, sql string) (ResultStream, error) {
	return e.c.ExecStreamContext(ctx, sql)
}

// ExecStream on the in-process driver executes eagerly (the engine has no
// incremental API) and replays the materialized result as a stream.
func (e *localExecutor) ExecStream(ctx context.Context, sql string) (ResultStream, error) {
	results, err := e.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return BufferStream(results), nil
}

var (
	_ StreamExecutor = (*netExecutor)(nil)
	_ StreamExecutor = (*localExecutor)(nil)
	_ ResultStream   = (*cwp.Stream)(nil)
)
