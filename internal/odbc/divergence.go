package odbc

import (
	"fmt"
	"strconv"

	"hyperq/internal/fingerprint"
	"hyperq/internal/types"
	"hyperq/internal/wire/cwp"
)

// Divergence kinds, ordered roughly by how early in result comparison each
// is detected. A divergence record always carries the earliest difference
// found: comparing stops at the first differing cell so the report can cite
// it precisely.
const (
	// DivStatementCount: the replicas answered a request with different
	// numbers of statement results.
	DivStatementCount = "statement-count"
	// DivError: one replica failed the statement while the other succeeded,
	// or both failed with different errors.
	DivError = "error"
	// DivCommand: the command tags differ (e.g. SELECT vs INSERT).
	DivCommand = "command"
	// DivAffected: the affected-row counts of a non-result statement differ.
	DivAffected = "affected"
	// DivColumnCount: the result sets have different column counts.
	DivColumnCount = "column-count"
	// DivColumnMeta: a column's name or type differs.
	DivColumnMeta = "column-meta"
	// DivRowCount: the result sets have different row counts.
	DivRowCount = "row-count"
	// DivCell: a cell value differs; Row and Col locate it.
	DivCell = "cell"
	// DivWritePartial: a fanned-out write landed on some replicas but not
	// others — the replicas' contents have truly diverged and the executor
	// is poisoned (ErrReplicaDivergent) after this record is taken.
	DivWritePartial = "write-partial"
)

// Divergence is one detected difference between two replicas' answers to the
// same statement: the shadow-migration evidence record. Replica identifies
// the disagreeing replica (the baseline is always the lowest-indexed healthy
// replica); Stmt the statement index within the request; Row/Col the first
// differing cell (-1 when the difference is not row- or column-specific).
// Baseline and Observed are rendered values — a cell's SQL literal, an error
// text, a count — chosen by Kind.
type Divergence struct {
	// SQL is the backend statement text both replicas executed.
	SQL string `json:"sql"`
	// Fingerprint is the statement-shape id of SQL (the redacted template
	// hash), the join key against query logs and the /statements registry.
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Replica     int    `json:"replica"`
	Stmt        int    `json:"stmt"`
	Row         int    `json:"row"`
	Col         int    `json:"col"`
	Baseline    string `json:"baseline"`
	Observed    string `json:"observed"`
}

// String renders the divergence as one human-readable line.
func (d *Divergence) String() string {
	loc := fmt.Sprintf("replica %d stmt %d", d.Replica, d.Stmt)
	if d.Row >= 0 {
		loc += fmt.Sprintf(" row %d", d.Row)
	}
	if d.Col >= 0 {
		loc += fmt.Sprintf(" col %d", d.Col)
	}
	return fmt.Sprintf("%s at %s: baseline %s, observed %s [%s]", d.Kind, loc, d.Baseline, d.Observed, d.Fingerprint)
}

// CompareFunc diffs two replicas' results for one statement, returning the
// first difference or nil when they are equivalent. The replay harness
// installs a tolerance-aware comparator here; the default is StrictCompare.
// Implementations fill SQL/Kind/Stmt/Row/Col/Baseline/Observed; the
// replicated executor stamps Replica and Fingerprint.
type CompareFunc func(sql string, baseline, observed []*cwp.StatementResult) *Divergence

// DivergenceSource is implemented by executors that record result
// divergences (the replicated executor in compare mode). TakeDivergences
// drains the records accumulated since the last call; because an executor
// serves one request at a time, draining after each request attributes every
// record to the statement that produced it.
type DivergenceSource interface {
	TakeDivergences() []*Divergence
}

// StrictCompare is the default comparator: exact equality on statement
// count, command tags, affected counts, column metadata, row order, and cell
// values. The replay differ relaxes it with type-aware tolerances and
// unordered-set semantics.
func StrictCompare(sql string, baseline, observed []*cwp.StatementResult) *Divergence {
	if len(baseline) != len(observed) {
		return &Divergence{SQL: sql, Kind: DivStatementCount, Stmt: -1, Row: -1, Col: -1,
			Baseline: strconv.Itoa(len(baseline)) + " statements", Observed: strconv.Itoa(len(observed)) + " statements"}
	}
	for si := range baseline {
		b, o := baseline[si], observed[si]
		if d := strictCompareStatement(b, o); d != nil {
			d.SQL = sql
			d.Stmt = si
			return d
		}
	}
	return nil
}

func strictCompareStatement(b, o *cwp.StatementResult) *Divergence {
	if b.Command != o.Command {
		return &Divergence{Kind: DivCommand, Row: -1, Col: -1, Baseline: b.Command, Observed: o.Command}
	}
	if b.Cols == nil && o.Cols == nil {
		if b.Affected != o.Affected {
			return &Divergence{Kind: DivAffected, Row: -1, Col: -1,
				Baseline: strconv.FormatInt(b.Affected, 10) + " rows", Observed: strconv.FormatInt(o.Affected, 10) + " rows"}
		}
		return nil
	}
	if (b.Cols == nil) != (o.Cols == nil) {
		return &Divergence{Kind: DivColumnCount, Row: -1, Col: -1,
			Baseline: colCountText(b), Observed: colCountText(o)}
	}
	if len(b.Cols) != len(o.Cols) {
		return &Divergence{Kind: DivColumnCount, Row: -1, Col: -1,
			Baseline: colCountText(b), Observed: colCountText(o)}
	}
	for ci := range b.Cols {
		if b.Cols[ci] != o.Cols[ci] {
			return &Divergence{Kind: DivColumnMeta, Row: -1, Col: ci,
				Baseline: b.Cols[ci].Name + " " + b.Cols[ci].Type.String(),
				Observed: o.Cols[ci].Name + " " + o.Cols[ci].Type.String()}
		}
	}
	brows, orows := b.Rows(), o.Rows()
	if len(brows) != len(orows) {
		return &Divergence{Kind: DivRowCount, Row: -1, Col: -1,
			Baseline: strconv.Itoa(len(brows)) + " rows", Observed: strconv.Itoa(len(orows)) + " rows"}
	}
	for ri := range brows {
		for ci := range brows[ri] {
			if ci >= len(orows[ri]) {
				return &Divergence{Kind: DivColumnCount, Row: ri, Col: ci,
					Baseline: strconv.Itoa(len(brows[ri])) + " cells", Observed: strconv.Itoa(len(orows[ri])) + " cells"}
			}
			if !datumEqual(brows[ri][ci], orows[ri][ci]) {
				return &Divergence{Kind: DivCell, Row: ri, Col: ci,
					Baseline: brows[ri][ci].SQLLiteral(), Observed: orows[ri][ci].SQLLiteral()}
			}
		}
	}
	return nil
}

func colCountText(r *cwp.StatementResult) string {
	if r.Cols == nil {
		return "no result set"
	}
	return strconv.Itoa(len(r.Cols)) + " columns"
}

// datumEqual is exact value equality: same kind, same null-ness, same value.
// Two NULLs of the same kind are equal regardless of payload residue.
func datumEqual(a, b types.Datum) bool {
	if a.Null || b.Null {
		return a.Null == b.Null && a.K == b.K
	}
	return a == b
}

// stampDivergence fills the fields the comparator leaves to the executor.
func stampDivergence(d *Divergence, sql string, replica int) *Divergence {
	if d.SQL == "" {
		d.SQL = sql
	}
	d.Replica = replica
	d.Fingerprint = fingerprint.ShortID(fingerprint.TemplateHash(d.SQL))
	return d
}
