package odbc_test

import (
	"errors"
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
)

// compareReplicas builds n same-schema replicas (empty table r) behind a
// ReplicatedDriver with CompareReads on and returns the engines for
// per-replica perturbation.
func compareReplicas(t *testing.T, n int) ([]*engine.Engine, *odbc.ReplicatedDriver) {
	t.Helper()
	engines := make([]*engine.Engine, n)
	drivers := make([]odbc.Driver, n)
	for i := range engines {
		engines[i] = engine.New(dialect.CloudA())
		if _, err := engines[i].NewSession().ExecSQL("CREATE TABLE r (x INT)"); err != nil {
			t.Fatal(err)
		}
		drivers[i] = &odbc.LocalDriver{Engine: engines[i]}
	}
	d := &odbc.ReplicatedDriver{Replicas: drivers}
	d.CompareReads = true
	return engines, d
}

func takeDivs(t *testing.T, ex odbc.Executor) []*odbc.Divergence {
	t.Helper()
	ds, ok := ex.(odbc.DivergenceSource)
	if !ok {
		t.Fatalf("%T does not implement DivergenceSource", ex)
	}
	return ds.TakeDivergences()
}

func TestCompareReadsCleanReplicasReportNothing(t *testing.T) {
	_, d := compareReplicas(t, 2)
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exec("SELECT x FROM r ORDER BY x"); err != nil {
		t.Fatal(err)
	}
	if divs := takeDivs(t, ex); len(divs) != 0 {
		t.Fatalf("identical replicas produced divergences: %v", divs)
	}
}

func TestCompareReadsPinpointsDifferingCell(t *testing.T) {
	engines, d := compareReplicas(t, 2)
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	takeDivs(t, ex)
	// Perturb replica 1 behind the driver's back: row with x=2 becomes 99.
	if _, err := engines[1].NewSession().ExecSQL("UPDATE r SET x = 99 WHERE x = 2"); err != nil {
		t.Fatal(err)
	}
	res, err := ex.Exec("SELECT x FROM r ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	// The baseline (replica 0) answer is returned untouched.
	if rows := res[0].Rows(); len(rows) != 3 || rows[1][0].I != 2 {
		t.Fatalf("baseline answer not returned: %v", rows)
	}
	divs := takeDivs(t, ex)
	if len(divs) != 1 {
		t.Fatalf("want 1 divergence, got %d: %v", len(divs), divs)
	}
	dv := divs[0]
	if dv.Kind != odbc.DivCell || dv.Replica != 1 || dv.Stmt != 0 || dv.Col != 0 {
		t.Fatalf("wrong location: %+v", dv)
	}
	// ORDER BY x sorts 99 last on replica 1, so the first differing row under
	// strict ordered comparison is row 1 (2 vs 3).
	if dv.Row != 1 || dv.Baseline != "2" || dv.Observed != "3" {
		t.Fatalf("wrong cell detail: %+v", dv)
	}
	if dv.Fingerprint == "" || dv.SQL == "" {
		t.Fatalf("missing fingerprint/sql: %+v", dv)
	}
	// Divergences report; they must not poison the session.
	if _, err := ex.Exec("SELECT COUNT(*) FROM r"); err != nil {
		t.Fatalf("session poisoned after read divergence: %v", err)
	}
}

func TestCompareReadsRowCountAndErrorDivergences(t *testing.T) {
	engines, d := compareReplicas(t, 2)
	var seen []*odbc.Divergence
	d.OnDivergence = func(dv *odbc.Divergence) { seen = append(seen, dv) }
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := engines[1].NewSession().ExecSQL("DELETE FROM r WHERE x = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exec("SELECT x FROM r"); err != nil {
		t.Fatal(err)
	}
	divs := takeDivs(t, ex)
	if len(divs) != 1 || divs[0].Kind != odbc.DivRowCount {
		t.Fatalf("want row-count divergence, got %v", divs)
	}
	if len(seen) != 1 || seen[0] != divs[0] {
		t.Fatalf("OnDivergence not invoked with the record: %v", seen)
	}
	// A table present on the baseline only: replica 1 errors, baseline
	// succeeds -> error divergence, baseline result still served.
	if _, err := engines[0].NewSession().ExecSQL("CREATE TABLE only0 (y INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Exec("SELECT y FROM only0"); err != nil {
		t.Fatal(err)
	}
	divs = takeDivs(t, ex)
	if len(divs) != 1 || divs[0].Kind != odbc.DivError || divs[0].Baseline != "ok" {
		t.Fatalf("want error divergence with ok baseline, got %v", divs)
	}
}

func TestCompareWritesDiffAffectedCounts(t *testing.T) {
	engines, d := compareReplicas(t, 2)
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	takeDivs(t, ex)
	if _, err := engines[1].NewSession().ExecSQL("DELETE FROM r WHERE x = 3"); err != nil {
		t.Fatal(err)
	}
	// The fanned-out UPDATE touches 3 rows on replica 0 but 2 on replica 1.
	if _, err := ex.Exec("UPDATE r SET x = x + 10"); err != nil {
		t.Fatal(err)
	}
	divs := takeDivs(t, ex)
	if len(divs) != 1 || divs[0].Kind != odbc.DivAffected || divs[0].Replica != 1 {
		t.Fatalf("want affected divergence on replica 1, got %v", divs)
	}
	if !strings.Contains(divs[0].Baseline, "3") || !strings.Contains(divs[0].Observed, "2") {
		t.Fatalf("wrong counts: %+v", divs[0])
	}
}

func TestPartialWriteCarriesDivergenceDetail(t *testing.T) {
	engines, _ := compareReplicas(t, 2)
	fd := faultdriver.New(&odbc.LocalDriver{Engine: engines[1]})
	d := &odbc.ReplicatedDriver{Replicas: []odbc.Driver{&odbc.LocalDriver{Engine: engines[0]}, fd}}
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	// Replica 1 rejects the next exec with a non-connection SQL error: the
	// write lands on replica 0 only.
	fd.QueueExecErrors(errors.New("disk quota exceeded"))
	_, err = ex.Exec("INSERT INTO r (x) VALUES (1)")
	if !errors.Is(err, odbc.ErrReplicaDivergent) {
		t.Fatalf("want ErrReplicaDivergent, got %v", err)
	}
	if !strings.Contains(err.Error(), "write-partial") || !strings.Contains(err.Error(), "replica 1") {
		t.Fatalf("poisoning error lacks divergence detail: %v", err)
	}
	divs := takeDivs(t, ex)
	if len(divs) != 1 || divs[0].Kind != odbc.DivWritePartial || divs[0].Replica != 1 {
		t.Fatalf("want write-partial record for replica 1, got %v", divs)
	}
	if !strings.Contains(divs[0].Observed, "disk quota exceeded") {
		t.Fatalf("record lacks the failing error: %+v", divs[0])
	}
}

func TestCompareReadsBaselineDeathPromotesNextReplica(t *testing.T) {
	engines, _ := compareReplicas(t, 3)
	fd0 := faultdriver.New(&odbc.LocalDriver{Engine: engines[0]})
	d := &odbc.ReplicatedDriver{
		Replicas: []odbc.Driver{fd0, &odbc.LocalDriver{Engine: engines[1]}, &odbc.LocalDriver{Engine: engines[2]}},
		Metrics:  &odbc.ResilienceMetrics{},
	}
	d.CompareReads = true
	ex, err := d.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if _, err := ex.Exec("INSERT INTO r (x) VALUES (5)"); err != nil {
		t.Fatal(err)
	}
	takeDivs(t, ex)
	// Kill the baseline replica's session: the read must fail over to
	// replica 1 as the new baseline and still compare against replica 2.
	fd0.DropActiveSessions()
	res, err := ex.Exec("SELECT x FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if rows := res[0].Rows(); len(rows) != 1 || rows[0][0].I != 5 {
		t.Fatalf("failover answer wrong: %v", rows)
	}
	if divs := takeDivs(t, ex); len(divs) != 0 {
		t.Fatalf("infrastructure loss reported as divergence: %v", divs)
	}
	if got := d.Metrics.ReplicaQuarantined(); got != 1 {
		t.Fatalf("want 1 quarantine, got %d", got)
	}
}
