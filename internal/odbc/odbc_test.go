package odbc

import (
	"net"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/wire/cwp"
)

func loadedEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New(dialect.TeradataProfile())
	s := eng.NewSession()
	for _, sql := range []string{
		"CREATE TABLE t (a INT, b VARCHAR(5))",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y')",
	} {
		if _, err := s.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// Both drivers must behave identically for the same requests.
func TestDriversEquivalent(t *testing.T) {
	eng := loadedEngine(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = cwp.Serve(ln, eng) }()

	drivers := []Driver{
		&LocalDriver{Engine: eng, User: "u"},
		&NetworkDriver{Addr: ln.Addr().String(), User: "u", Password: "p"},
	}
	for i, d := range drivers {
		ex, err := d.Connect()
		if err != nil {
			t.Fatalf("driver %d: %v", i, err)
		}
		results, err := ex.Exec("SELECT a, b FROM t ORDER BY a; SELECT COUNT(*) FROM t;")
		if err != nil {
			t.Fatalf("driver %d: %v", i, err)
		}
		if len(results) != 2 {
			t.Fatalf("driver %d: results = %d", i, len(results))
		}
		rows := results[0].Rows()
		if len(rows) != 2 || rows[0][0].I != 1 || rows[1][1].S != "y" {
			t.Fatalf("driver %d: rows = %v", i, rows)
		}
		if results[1].Rows()[0][0].I != 2 {
			t.Fatalf("driver %d: count = %v", i, results[1].Rows()[0][0])
		}
		if err := ex.Close(); err != nil {
			t.Fatalf("driver %d close: %v", i, err)
		}
	}
}

func TestLocalDriverBatches(t *testing.T) {
	eng := loadedEngine(t)
	ex, err := (&LocalDriver{Engine: eng}).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	results, err := ex.Exec("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Batches) == 0 {
		t.Fatal("no batches for non-empty result")
	}
	if results[0].Cols[0].Name == "" {
		t.Fatal("column metadata missing")
	}
}

func TestLocalDriverErrors(t *testing.T) {
	eng := loadedEngine(t)
	ex, _ := (&LocalDriver{Engine: eng}).Connect()
	defer ex.Close()
	if _, err := ex.Exec("SELECT nope FROM t"); err == nil {
		t.Error("error not propagated")
	}
}

func TestNetworkDriverConnectFailure(t *testing.T) {
	d := &NetworkDriver{Addr: "127.0.0.1:1", User: "u", Password: "p"}
	if _, err := d.Connect(); err == nil {
		t.Error("connect to closed port succeeded")
	}
}
