package odbc_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/odbc/faultdriver"
	"hyperq/internal/wire/cwp"
)

// replicaSet builds n engine-backed replicas, each behind its own fault
// driver, fronted by one ReplicatedDriver.
func replicaSet(t *testing.T, n int) ([]*engine.Engine, []*faultdriver.Driver, *odbc.ReplicatedDriver, *odbc.ResilienceMetrics) {
	t.Helper()
	engines := make([]*engine.Engine, n)
	fds := make([]*faultdriver.Driver, n)
	drivers := make([]odbc.Driver, n)
	for i := range engines {
		engines[i] = resilienceEngine(t)
		fds[i] = faultdriver.New(&odbc.LocalDriver{Engine: engines[i], User: "u"})
		drivers[i] = fds[i]
	}
	met := &odbc.ResilienceMetrics{}
	return engines, fds, &odbc.ReplicatedDriver{Replicas: drivers, Metrics: met}, met
}

func replicaCount(t *testing.T, eng *engine.Engine) int64 {
	t.Helper()
	res, err := eng.NewSession().ExecSQL("SELECT COUNT(*) FROM rt")
	if err != nil {
		t.Fatal(err)
	}
	return res[0].Rows[0][0].I
}

// A replica whose connection dies is quarantined out of the read rotation;
// reads fail over and keep succeeding on the survivors.
func TestReplicatedReadQuarantineFailover(t *testing.T) {
	_, fds, rd, met := replicaSet(t, 3)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	// Kill replica 0's backend session mid-flight.
	fds[0].DropActiveSessions()
	for i := 0; i < 6; i++ {
		res, err := ex.Exec("SELECT COUNT(*) FROM rt")
		if err != nil {
			t.Fatalf("read %d after replica loss: %v", i, err)
		}
		if res[0].Rows()[0][0].I != 3 {
			t.Fatalf("read %d: count = %v", i, res[0].Rows()[0][0])
		}
	}
	if met.ReplicaQuarantined() != 1 {
		t.Errorf("ReplicaQuarantined = %d, want 1", met.ReplicaQuarantined())
	}
	// Writes keep working, fanned out to the surviving replicas only.
	if _, err := ex.Exec("INSERT INTO rt VALUES (4)"); err != nil {
		t.Fatalf("write after replica loss: %v", err)
	}
}

// A SQL error on a read surfaces immediately — replicas hold identical
// contents, so failing over would just repeat the same error.
func TestReplicatedReadSQLErrorNoFailover(t *testing.T) {
	_, fds, rd, _ := replicaSet(t, 2)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	before := fds[0].Execs() + fds[1].Execs()
	if _, err := ex.Exec("SELECT nope FROM rt"); err == nil {
		t.Fatal("SQL error not surfaced")
	}
	if got := fds[0].Execs() + fds[1].Execs() - before; got != 1 {
		t.Errorf("exec attempts = %d, want 1 (no failover on SQL errors)", got)
	}
}

// A write that lands on some replicas but fails on others leaves the
// contents diverged: the executor is poisoned and every subsequent request
// fails with ErrReplicaDivergent instead of serving inconsistent reads.
func TestReplicatedPartialWriteMarksDivergent(t *testing.T) {
	engines, fds, rd, _ := replicaSet(t, 2)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	// Replica 1 rejects the write with a permanent backend error while
	// replica 0 applies it.
	fds[1].QueueExecErrors(&cwp.BackendError{Code: 2644, Message: "no more room in database"})
	_, err = ex.Exec("INSERT INTO rt VALUES (4)")
	if !errors.Is(err, odbc.ErrReplicaDivergent) {
		t.Fatalf("partial write: err = %v, want ErrReplicaDivergent", err)
	}
	if a, b := replicaCount(t, engines[0]), replicaCount(t, engines[1]); a == b {
		t.Fatalf("test premise broken: replica contents did not diverge (%d == %d)", a, b)
	}
	// Poisoned: even a plain read now refuses.
	if _, err := ex.Exec("SELECT COUNT(*) FROM rt"); !errors.Is(err, odbc.ErrReplicaDivergent) {
		t.Fatalf("read after divergence: err = %v, want ErrReplicaDivergent", err)
	}
}

// closeFailExec is an Executor whose Close fails but must still be called.
type closeFailExec struct {
	closed *int
	fail   bool
}

func (e *closeFailExec) Exec(string) ([]*cwp.StatementResult, error) { return nil, nil }
func (e *closeFailExec) ExecContext(context.Context, string) ([]*cwp.StatementResult, error) {
	return nil, nil
}
func (e *closeFailExec) Close() error {
	*e.closed++
	if e.fail {
		return errors.New("flush failed")
	}
	return nil
}

type staticDriver struct{ ex odbc.Executor }

func (d staticDriver) Connect() (odbc.Executor, error) { return d.ex, nil }

// Close must close every replica even when one of them fails, and report
// the aggregate.
func TestReplicatedCloseClosesAllAndAggregates(t *testing.T) {
	var closed int
	rd := &odbc.ReplicatedDriver{Replicas: []odbc.Driver{
		staticDriver{&closeFailExec{closed: &closed, fail: true}},
		staticDriver{&closeFailExec{closed: &closed}},
		staticDriver{&closeFailExec{closed: &closed, fail: true}},
	}}
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	err = ex.Close()
	if err == nil {
		t.Fatal("aggregate close error lost")
	}
	if closed != 3 {
		t.Errorf("closed %d replicas, want 3 (failure mid-slice must not leak sessions)", closed)
	}
	if n := strings.Count(err.Error(), "flush failed"); n != 2 {
		t.Errorf("aggregate error reports %d failures, want 2: %v", n, err)
	}
}

// With every replica down, reads report the outage rather than spinning.
func TestReplicatedAllReplicasDown(t *testing.T) {
	_, fds, rd, met := replicaSet(t, 2)
	ex, err := rd.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fds[0].DropActiveSessions()
	fds[1].DropActiveSessions()
	_, err = ex.Exec("SELECT COUNT(*) FROM rt")
	if err == nil || !strings.Contains(err.Error(), "all replicas unavailable") {
		t.Fatalf("err = %v, want all-replicas-unavailable", err)
	}
	if met.ReplicaQuarantined() != 2 {
		t.Errorf("ReplicaQuarantined = %d, want 2", met.ReplicaQuarantined())
	}
}
