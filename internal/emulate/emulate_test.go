package emulate

import (
	"strings"
	"testing"

	"hyperq/internal/parser"
	"hyperq/internal/sqlast"
)

func parseQuery(t *testing.T, sql string) *sqlast.QueryExpr {
	t.Helper()
	stmt, err := parser.ParseOne(sql, parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sqlast.SelectStmt).Query
}

func TestRenameTables(t *testing.T) {
	q := parseQuery(t, `
	  SELECT r.a FROM reports r, emp
	  WHERE emp.x = r.a
	    AND EXISTS (SELECT 1 FROM reports WHERE reports.a = emp.x)`)
	out := RenameTables(q, "reports", "hq_work")
	core := out.Body.(*sqlast.SelectCore)
	tr := core.From[0].(*sqlast.TableRef)
	if tr.Name != "hq_work" || tr.Alias != "r" {
		t.Fatalf("from[0] = %+v", tr)
	}
	if core.From[1].(*sqlast.TableRef).Name != "emp" {
		t.Fatal("unrelated table renamed")
	}
	// The nested EXISTS reference is renamed with the original name kept as
	// alias so qualified columns still resolve.
	and := core.Where.(*sqlast.BinExpr)
	ex := and.R.(*sqlast.ExistsExpr)
	inner := ex.Query.Body.(*sqlast.SelectCore).From[0].(*sqlast.TableRef)
	if inner.Name != "hq_work" || inner.Alias != "reports" {
		t.Fatalf("nested ref = %+v", inner)
	}
	// Original AST untouched.
	if q.Body.(*sqlast.SelectCore).From[0].(*sqlast.TableRef).Name != "reports" {
		t.Fatal("rename mutated the input")
	}
}

func TestPlanRecursiveExample4(t *testing.T) {
	q := parseQuery(t, `
	  WITH RECURSIVE reports (empno, mgrno) AS (
	    SELECT empno, mgrno FROM emp WHERE mgrno = 10
	    UNION ALL
	    SELECT emp.empno, emp.mgrno FROM emp, reports WHERE reports.empno = emp.mgrno
	  )
	  SELECT empno FROM reports ORDER BY empno`)
	plan, err := PlanRecursive(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan for recursive query")
	}
	if plan.CTEName != "reports" || len(plan.Columns) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Seed == nil || plan.Recursive == nil || plan.Main == nil {
		t.Fatal("incomplete decomposition")
	}
	if len(plan.Main.OrderBy) != 1 {
		t.Error("main query lost ORDER BY")
	}
}

func TestPlanRecursiveNonRecursive(t *testing.T) {
	q := parseQuery(t, "WITH c AS (SELECT 1 AS x) SELECT x FROM c")
	plan, err := PlanRecursive(q)
	if err != nil || plan != nil {
		t.Fatalf("plan = %v, err = %v", plan, err)
	}
	// RECURSIVE keyword without self-reference also yields no plan.
	q2 := parseQuery(t, "WITH RECURSIVE c (x) AS (SELECT 1 UNION ALL SELECT 2) SELECT x FROM c")
	plan, err = PlanRecursive(q2)
	if err != nil || plan != nil {
		t.Fatalf("plan = %v, err = %v", plan, err)
	}
}

func TestPlanRecursiveRejectsBadShapes(t *testing.T) {
	q := parseQuery(t, `
	  WITH RECURSIVE r (x) AS (
	    SELECT a FROM t UNION SELECT a FROM r
	  ) SELECT x FROM r`)
	if _, err := PlanRecursive(q); err == nil {
		t.Error("UNION (not ALL) accepted")
	}
	q2 := parseQuery(t, `
	  WITH RECURSIVE r (x) AS (
	    SELECT a FROM r UNION ALL SELECT a FROM t
	  ) SELECT x FROM r`)
	if _, err := PlanRecursive(q2); err == nil {
		t.Error("self-referencing seed accepted")
	}
}

func TestDecomposeMergeFull(t *testing.T) {
	stmt, err := parser.ParseOne(`
	  MERGE INTO tgt USING src ON tgt.k = src.k
	  WHEN MATCHED THEN UPDATE SET v = src.v
	  WHEN NOT MATCHED THEN INSERT (k, v) VALUES (src.k, src.v)`, parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := DecomposeMerge(stmt.(*sqlast.MergeStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	upd, ok := stmts[0].(*sqlast.UpdateStmt)
	if !ok || upd.Table != "tgt" || len(upd.From) != 1 {
		t.Fatalf("update = %+v", stmts[0])
	}
	ins, ok := stmts[1].(*sqlast.InsertStmt)
	if !ok || ins.Table != "tgt" || ins.Query == nil {
		t.Fatalf("insert = %+v", stmts[1])
	}
	// The insert's anti-join must reference the target.
	core := ins.Query.Body.(*sqlast.SelectCore)
	ex, ok := core.Where.(*sqlast.ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("anti-join = %#v", core.Where)
	}
}

func TestDecomposeMergeDelete(t *testing.T) {
	stmt, err := parser.ParseOne(`
	  MERGE INTO tgt USING src ON tgt.k = src.k
	  WHEN MATCHED THEN DELETE`, parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := DecomposeMerge(stmt.(*sqlast.MergeStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	del, ok := stmts[0].(*sqlast.DeleteStmt)
	if !ok || del.Table != "tgt" {
		t.Fatalf("delete = %+v", stmts[0])
	}
	if _, ok := del.Where.(*sqlast.ExistsExpr); !ok {
		t.Fatalf("delete pred = %#v", del.Where)
	}
}

func TestDeduplicateInsertValues(t *testing.T) {
	stmt, err := parser.ParseOne("INSERT INTO st (a, b) VALUES (1, 2), (1, 2), (3, 4)", parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DeduplicateInsert(stmt.(*sqlast.InsertStmt), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Query == nil {
		t.Fatal("rewritten insert lost its query")
	}
	core := out.Query.Body.(*sqlast.SelectCore)
	if !core.Distinct {
		t.Error("DISTINCT missing")
	}
	ex, ok := core.Where.(*sqlast.ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("anti-join = %#v", core.Where)
	}
	dt, ok := core.From[0].(*sqlast.DerivedTable)
	if !ok || len(dt.ColAliases) != 2 {
		t.Fatalf("source = %#v", core.From[0])
	}
	// Union of the three value rows.
	if _, ok := dt.Query.Body.(*sqlast.SetOpBody); !ok {
		t.Fatalf("values body = %T", dt.Query.Body)
	}
}

func TestDeduplicateInsertQuery(t *testing.T) {
	stmt, err := parser.ParseOne("INSERT INTO st SELECT a, b FROM src", parser.Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DeduplicateInsert(stmt.(*sqlast.InsertStmt), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Columns) != 2 {
		t.Fatalf("columns = %v", out.Columns)
	}
}

func TestRenameTablePreservesText(t *testing.T) {
	// A query with every clause shape survives the rewrite structurally.
	q := parseQuery(t, `
	  SELECT a, COUNT(*) FROM r JOIN s ON r.a = s.a
	  WHERE r.a IN (SELECT a FROM r)
	  GROUP BY a HAVING COUNT(*) > 1 ORDER BY a`)
	out := RenameTables(q, "r", "w")
	if !strings.Contains(renderedTables(out), "w") {
		t.Error("rename missed")
	}
}

func renderedTables(q *sqlast.QueryExpr) string {
	var names []string
	var walkBody func(sqlast.QueryBody)
	var walkTE func(sqlast.TableExpr)
	walkTE = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableRef:
			names = append(names, t.Name)
		case *sqlast.JoinExpr:
			walkTE(t.L)
			walkTE(t.R)
		case *sqlast.DerivedTable:
			walkBody(t.Query.Body)
		}
	}
	walkBody = func(b sqlast.QueryBody) {
		if core, ok := b.(*sqlast.SelectCore); ok {
			for _, te := range core.From {
				walkTE(te)
			}
		}
	}
	walkBody(q.Body)
	return strings.Join(names, ",")
}
