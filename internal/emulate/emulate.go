// Package emulate implements the paper's Emulation class (§6): features
// "completely missing in the target database" are broken down "into smaller
// units such that running these units in combination gives the application
// exactly the same behavior of the main feature". The helpers here produce
// the decomposed statement sequences; the gateway drives their execution and
// maintains the mid-tier state.
package emulate

import (
	"fmt"
	"strings"

	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

// RenameTables returns a deep-rewritten copy of q in which every reference
// to table `from` is replaced by `to`. It is the substitution step of the
// recursive-query emulation (Figure 7, step 5: "Substitute references of
// REPORTS with WorkTable in main query").
func RenameTables(q *sqlast.QueryExpr, from, to string) *sqlast.QueryExpr {
	if q == nil {
		return nil
	}
	out := &sqlast.QueryExpr{OrderBy: renameOrderItems(q.OrderBy, from, to), Limit: q.Limit}
	if q.With != nil {
		w := &sqlast.WithClause{Recursive: q.With.Recursive}
		for _, cte := range q.With.CTEs {
			w.CTEs = append(w.CTEs, sqlast.CTE{
				Name:    cte.Name,
				Columns: cte.Columns,
				Query:   RenameTables(cte.Query, from, to),
			})
		}
		out.With = w
	}
	out.Body = renameBody(q.Body, from, to)
	return out
}

func renameBody(b sqlast.QueryBody, from, to string) sqlast.QueryBody {
	switch t := b.(type) {
	case *sqlast.SelectCore:
		core := *t
		core.From = nil
		for _, te := range t.From {
			core.From = append(core.From, renameTableExpr(te, from, to))
		}
		core.Where = renameExpr(t.Where, from, to)
		core.Having = renameExpr(t.Having, from, to)
		core.Qualify = renameExpr(t.Qualify, from, to)
		core.Items = nil
		for _, it := range t.Items {
			core.Items = append(core.Items, sqlast.SelectItem{Expr: renameExpr(it.Expr, from, to), Alias: it.Alias})
		}
		core.GroupBy = nil
		for _, g := range t.GroupBy {
			core.GroupBy = append(core.GroupBy, renameExpr(g, from, to))
		}
		return &core
	case *sqlast.SetOpBody:
		return &sqlast.SetOpBody{Op: t.Op, All: t.All, L: renameBody(t.L, from, to), R: renameBody(t.R, from, to)}
	case *sqlast.QueryExpr:
		return RenameTables(t, from, to)
	}
	return b
}

func renameTableExpr(te sqlast.TableExpr, from, to string) sqlast.TableExpr {
	switch t := te.(type) {
	case *sqlast.TableRef:
		if strings.EqualFold(t.Name, from) {
			alias := t.Alias
			if alias == "" {
				alias = t.Name // keep the original name addressable
			}
			return &sqlast.TableRef{Name: to, Alias: alias, ColAliases: t.ColAliases}
		}
		return t
	case *sqlast.DerivedTable:
		return &sqlast.DerivedTable{Query: RenameTables(t.Query, from, to), Alias: t.Alias, ColAliases: t.ColAliases}
	case *sqlast.JoinExpr:
		return &sqlast.JoinExpr{
			Kind: t.Kind,
			L:    renameTableExpr(t.L, from, to),
			R:    renameTableExpr(t.R, from, to),
			On:   renameExpr(t.On, from, to),
		}
	}
	return te
}

func renameOrderItems(items []sqlast.OrderItem, from, to string) []sqlast.OrderItem {
	var out []sqlast.OrderItem
	for _, it := range items {
		out = append(out, sqlast.OrderItem{Expr: renameExpr(it.Expr, from, to), Desc: it.Desc, NullsFirst: it.NullsFirst})
	}
	return out
}

// renameExpr rewrites table references inside subqueries nested in an
// expression. Column qualifiers keep the original correlation name (the
// rewritten TableRef retains the old name as its alias).
func renameExpr(e sqlast.Expr, from, to string) sqlast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlast.Subquery:
		return &sqlast.Subquery{Query: RenameTables(x.Query, from, to)}
	case *sqlast.ExistsExpr:
		return &sqlast.ExistsExpr{Not: x.Not, Query: RenameTables(x.Query, from, to)}
	case *sqlast.InExpr:
		out := *x
		if x.Query != nil {
			out.Query = RenameTables(x.Query, from, to)
		}
		return &out
	case *sqlast.QuantifiedCmp:
		out := *x
		out.Query = RenameTables(x.Query, from, to)
		return &out
	case *sqlast.BinExpr:
		return &sqlast.BinExpr{Op: x.Op, L: renameExpr(x.L, from, to), R: renameExpr(x.R, from, to)}
	case *sqlast.UnaryExpr:
		return &sqlast.UnaryExpr{Op: x.Op, X: renameExpr(x.X, from, to)}
	case *sqlast.FuncCall:
		out := *x
		out.Args = nil
		for _, a := range x.Args {
			out.Args = append(out.Args, renameExpr(a, from, to))
		}
		return &out
	case *sqlast.CaseExpr:
		out := &sqlast.CaseExpr{Operand: renameExpr(x.Operand, from, to), Else: renameExpr(x.Else, from, to)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sqlast.CaseWhen{Cond: renameExpr(w.Cond, from, to), Then: renameExpr(w.Then, from, to)})
		}
		return out
	case *sqlast.CastExpr:
		return &sqlast.CastExpr{X: renameExpr(x.X, from, to), To: x.To}
	case *sqlast.ExtractExpr:
		return &sqlast.ExtractExpr{Field: x.Field, X: renameExpr(x.X, from, to)}
	}
	return e
}

// RecursivePlan describes the decomposition of one WITH RECURSIVE query
// into the temporary-table protocol of Figure 7.
type RecursivePlan struct {
	// CTEName is the recursive common table expression's name.
	CTEName string
	// Columns are the declared CTE column names.
	Columns []string
	// Seed is the non-recursive branch.
	Seed *sqlast.QueryExpr
	// Recursive is the self-referencing branch.
	Recursive *sqlast.QueryExpr
	// Main is the outer query still referencing CTEName.
	Main *sqlast.QueryExpr
}

// PlanRecursive analyzes a query with a recursive WITH clause and extracts
// the seed/recursive/main decomposition. It returns (nil, nil) when the
// query has no recursive CTE (no emulation needed).
func PlanRecursive(q *sqlast.QueryExpr) (*RecursivePlan, error) {
	if q.With == nil || !q.With.Recursive {
		return nil, nil
	}
	var plan *RecursivePlan
	var rest []sqlast.CTE
	for _, cte := range q.With.CTEs {
		if !queryReferences(cte.Query, cte.Name) {
			rest = append(rest, cte)
			continue
		}
		if plan != nil {
			return nil, fmt.Errorf("emulate: multiple recursive CTEs are not supported")
		}
		body, ok := cte.Query.Body.(*sqlast.SetOpBody)
		if !ok || body.Op != sqlast.SetUnion || !body.All {
			return nil, fmt.Errorf("emulate: recursive CTE %s must be 'seed UNION ALL recursive'", cte.Name)
		}
		if bodyReferences(body.L, cte.Name) {
			return nil, fmt.Errorf("emulate: recursive CTE %s references itself in the seed", cte.Name)
		}
		if !bodyReferences(body.R, cte.Name) {
			rest = append(rest, cte)
			continue
		}
		plan = &RecursivePlan{
			CTEName:   cte.Name,
			Columns:   cte.Columns,
			Seed:      &sqlast.QueryExpr{Body: body.L},
			Recursive: &sqlast.QueryExpr{Body: body.R},
		}
	}
	if plan == nil {
		return nil, nil
	}
	main := &sqlast.QueryExpr{Body: q.Body, OrderBy: q.OrderBy, Limit: q.Limit}
	if len(rest) > 0 {
		main.With = &sqlast.WithClause{CTEs: rest}
	}
	plan.Main = main
	return plan, nil
}

func queryReferences(q *sqlast.QueryExpr, name string) bool {
	return bodyReferences(q.Body, name)
}

func bodyReferences(b sqlast.QueryBody, name string) bool {
	switch t := b.(type) {
	case *sqlast.SelectCore:
		for _, te := range t.From {
			if tableExprReferences(te, name) {
				return true
			}
		}
		return false
	case *sqlast.SetOpBody:
		return bodyReferences(t.L, name) || bodyReferences(t.R, name)
	case *sqlast.QueryExpr:
		return bodyReferences(t.Body, name)
	}
	return false
}

func tableExprReferences(te sqlast.TableExpr, name string) bool {
	switch t := te.(type) {
	case *sqlast.TableRef:
		return strings.EqualFold(t.Name, name)
	case *sqlast.DerivedTable:
		return bodyReferences(t.Query.Body, name)
	case *sqlast.JoinExpr:
		return tableExprReferences(t.L, name) || tableExprReferences(t.R, name)
	}
	return false
}

// DecomposeMerge lowers a MERGE statement into an UPDATE (or DELETE) for the
// matched branch plus an INSERT ... SELECT ... WHERE NOT EXISTS for the
// not-matched branch — the paper's "decomposed into UPDATE + INSERT"
// emulation. The returned statements must execute in order.
func DecomposeMerge(m *sqlast.MergeStmt) ([]sqlast.Statement, error) {
	targetAlias := m.TargetAlias
	if targetAlias == "" {
		targetAlias = m.Target
	}
	var out []sqlast.Statement
	if len(m.Matched) > 0 {
		// UPDATE target FROM source SET ... WHERE on — the binder rewrites
		// the FROM form into correlated subqueries per assignment.
		out = append(out, &sqlast.UpdateStmt{
			Table: m.Target,
			Alias: targetAlias,
			From:  []sqlast.TableExpr{m.Source},
			Set:   m.Matched,
			Where: m.On,
		})
	}
	if m.MatchedDelete {
		out = append(out, &sqlast.DeleteStmt{
			Table: m.Target,
			Alias: targetAlias,
			Where: &sqlast.ExistsExpr{Query: selectOneFrom(m.Source, m.On)},
		})
	}
	if m.HasNotMatched {
		// INSERT INTO target (cols) SELECT vals FROM source
		// WHERE NOT EXISTS (SELECT 1 FROM target AS alias WHERE on).
		antiJoin := &sqlast.ExistsExpr{
			Not: true,
			Query: selectOneFrom(
				&sqlast.TableRef{Name: m.Target, Alias: targetAlias},
				m.On,
			),
		}
		var items []sqlast.SelectItem
		for _, v := range m.NotMatchedVals {
			items = append(items, sqlast.SelectItem{Expr: v})
		}
		sel := &sqlast.QueryExpr{Body: &sqlast.SelectCore{
			Items: items,
			From:  []sqlast.TableExpr{m.Source},
			Where: antiJoin,
		}}
		out = append(out, &sqlast.InsertStmt{
			Table:   m.Target,
			Columns: m.NotMatchedCols,
			Query:   sel,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("emulate: MERGE has no actionable branches")
	}
	return out, nil
}

// selectOneFrom builds SELECT 1 FROM te WHERE cond.
func selectOneFrom(te sqlast.TableExpr, cond sqlast.Expr) *sqlast.QueryExpr {
	return &sqlast.QueryExpr{Body: &sqlast.SelectCore{
		Items: []sqlast.SelectItem{{Expr: &sqlast.Const{Val: oneDatum}}},
		From:  []sqlast.TableExpr{te},
		Where: cond,
	}}
}

// DeduplicateInsert rewrites an INSERT into a SET table so duplicate rows
// are eliminated mid-tier (Table 2: SET tables): the source becomes a
// DISTINCT selection anti-joined against the existing table contents on all
// target columns.
func DeduplicateInsert(ins *sqlast.InsertStmt, allColumns []string) (*sqlast.InsertStmt, error) {
	cols := ins.Columns
	if len(cols) == 0 {
		cols = allColumns
	}
	// Build the source as a derived table.
	var src *sqlast.QueryExpr
	switch {
	case ins.Query != nil:
		src = ins.Query
	case len(ins.Rows) > 0:
		// VALUES rows become a UNION ALL of single-row selects.
		var body sqlast.QueryBody
		for _, row := range ins.Rows {
			var items []sqlast.SelectItem
			for i, e := range row {
				items = append(items, sqlast.SelectItem{Expr: e, Alias: cols[i]})
			}
			core := &sqlast.SelectCore{Items: items}
			if body == nil {
				body = core
			} else {
				body = &sqlast.SetOpBody{Op: sqlast.SetUnion, All: true, L: body, R: core}
			}
		}
		src = &sqlast.QueryExpr{Body: body}
	default:
		return nil, fmt.Errorf("emulate: INSERT without source")
	}
	derivedAlias := "hq_src"
	var eqs sqlast.Expr
	for _, c := range cols {
		eq := sqlast.Expr(&sqlast.BinExpr{
			Op: sqlast.BinEQ,
			L:  &sqlast.Ident{Parts: []string{"hq_existing", c}},
			R:  &sqlast.Ident{Parts: []string{derivedAlias, c}},
		})
		if eqs == nil {
			eqs = eq
		} else {
			eqs = &sqlast.BinExpr{Op: sqlast.BinAnd, L: eqs, R: eq}
		}
	}
	anti := &sqlast.ExistsExpr{
		Not:   true,
		Query: selectOneFrom(&sqlast.TableRef{Name: ins.Table, Alias: "hq_existing"}, eqs),
	}
	var items []sqlast.SelectItem
	for _, c := range cols {
		items = append(items, sqlast.SelectItem{Expr: &sqlast.Ident{Parts: []string{derivedAlias, c}}})
	}
	dedup := &sqlast.QueryExpr{Body: &sqlast.SelectCore{
		Distinct: true,
		Items:    items,
		From:     []sqlast.TableExpr{&sqlast.DerivedTable{Query: src, Alias: derivedAlias, ColAliases: cols}},
		Where:    anti,
	}}
	return &sqlast.InsertStmt{Table: ins.Table, Columns: cols, Query: dedup}, nil
}

var oneDatum = oneValue()

// oneValue builds the constant 1 used by SELECT 1 subqueries.
func oneValue() types.Datum { return types.NewInt(1) }
