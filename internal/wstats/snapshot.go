package wstats

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"hyperq/internal/feature"
)

// Stat is one statement shape's accumulated statistics, JSON-shaped for the
// /statements debug endpoint. Fingerprint carries the redacted template id,
// Template the redacted text — raw request text never appears here.
type Stat struct {
	Fingerprint string `json:"fp"`
	Template    string `json:"template"`

	Calls      int64            `json:"calls"`
	Errors     int64            `json:"errors,omitempty"`
	ErrorCodes map[string]int64 `json:"errorCodes,omitempty"`

	TotalNs int64 `json:"totalNs"`
	MeanNs  int64 `json:"meanNs"`
	P50Ns   int64 `json:"p50Ns"`
	P95Ns   int64 `json:"p95Ns"`
	P99Ns   int64 `json:"p99Ns"`

	StageNs    map[string]int64 `json:"stageNs,omitempty"`
	CacheTiers map[string]int64 `json:"cacheTiers,omitempty"`

	RowsOut  int64 `json:"rowsOut"`
	BytesOut int64 `json:"bytesOut"`
	BytesIn  int64 `json:"bytesIn"`
	Streamed int64 `json:"streamed,omitempty"`

	Retries    int64 `json:"retries,omitempty"`
	Reconnects int64 `json:"reconnects,omitempty"`

	Features []string `json:"features,omitempty"`

	// Exemplar is the trace id of the slowest request of this shape still
	// retained by the trace ring ("/traces?id=<Exemplar>").
	Exemplar string `json:"exemplar,omitempty"`

	SLOBreaches int64 `json:"sloBreaches,omitempty"`
	// BurnRate is the shape's error-budget burn rate: breach ratio divided by
	// the budget (1-objective). 1.0 means burning exactly the budget.
	BurnRate float64 `json:"burnRate,omitempty"`
	// Violating marks shapes whose breach ratio exceeds the budget.
	Violating bool `json:"violating,omitempty"`
}

// SLOSummary is the registry-wide latency-SLO state.
type SLOSummary struct {
	SLOMs     int64    `json:"sloMs"`
	Objective float64  `json:"objective"`
	Calls     int64    `json:"calls"`
	Breaches  int64    `json:"breaches"`
	BurnRate  float64  `json:"burnRate"`
	Violating []string `json:"violating,omitempty"`
}

// Summary is the /statements payload.
type Summary struct {
	// Entries is the tracked shape count; MaxEntries the cardinality bound.
	Entries    int `json:"entries"`
	MaxEntries int `json:"maxEntries"`
	// Observed counts every request recorded since the last reset. Exactness
	// invariant: sum of Statements[].Calls + Other.Calls == Observed, no
	// matter how many shapes were evicted (Statements may be truncated by the
	// limit parameter; Truncated reports how many shapes the limit hid).
	Observed  int64  `json:"observed"`
	Truncated int    `json:"truncated,omitempty"`
	SortedBy  string `json:"sortedBy"`

	Statements []Stat `json:"statements"`
	// Other is the fold bucket of evicted shapes; nil when nothing was ever
	// evicted.
	Other *Stat `json:"other,omitempty"`

	SLO *SLOSummary `json:"slo,omitempty"`
}

func (e *entry) stat(sloNs int64, objective float64) Stat {
	lat := e.lat.Snapshot()
	s := Stat{
		Fingerprint: e.id,
		Template:    e.template,
		Calls:       atomic.LoadInt64(&e.calls),
		Errors:      atomic.LoadInt64(&e.errors),
		TotalNs:     atomic.LoadInt64(&e.totalNs),
		MeanNs:      int64(lat.Mean()),
		P50Ns:       int64(lat.Quantile(0.50)),
		P95Ns:       int64(lat.Quantile(0.95)),
		P99Ns:       int64(lat.Quantile(0.99)),
		RowsOut:     atomic.LoadInt64(&e.rowsOut),
		BytesOut:    atomic.LoadInt64(&e.bytesOut),
		BytesIn:     atomic.LoadInt64(&e.bytesIn),
		Streamed:    atomic.LoadInt64(&e.streamed),
		Retries:     atomic.LoadInt64(&e.retries),
		Reconnects:  atomic.LoadInt64(&e.reconns),
		SLOBreaches: atomic.LoadInt64(&e.sloMiss),
	}
	for i, code := range errorCodes {
		if n := atomic.LoadInt64(&e.errByCode[i]); n != 0 {
			if s.ErrorCodes == nil {
				s.ErrorCodes = make(map[string]int64)
			}
			s.ErrorCodes[strconv.Itoa(code)] = n
		}
	}
	if n := atomic.LoadInt64(&e.errByCode[len(errorCodes)]); n != 0 {
		if s.ErrorCodes == nil {
			s.ErrorCodes = make(map[string]int64)
		}
		s.ErrorCodes["other"] = n
	}
	for i := range e.stageNs {
		if n := atomic.LoadInt64(&e.stageNs[i]); n != 0 {
			if s.StageNs == nil {
				s.StageNs = make(map[string]int64)
			}
			s.StageNs[stageNames[i]] = n
		}
	}
	for i := range e.tiers {
		if n := atomic.LoadInt64(&e.tiers[i]); n != 0 {
			if s.CacheTiers == nil {
				s.CacheTiers = make(map[string]int64)
			}
			s.CacheTiers[tierNames[i]] = n
		}
	}
	if fs := feature.Set(atomic.LoadUint32(&e.feats)); !fs.Empty() {
		for _, id := range fs.IDs() {
			s.Features = append(s.Features, feature.Lookup(id).Name)
		}
	}
	e.exMu.Lock()
	s.Exemplar = e.exID
	e.exMu.Unlock()
	if sloNs > 0 && s.Calls > 0 {
		budget := 1 - objective
		ratio := float64(s.SLOBreaches) / float64(s.Calls)
		if budget > 0 {
			s.BurnRate = ratio / budget
		}
		s.Violating = ratio > budget
	}
	return s
}

// Snapshot returns a point-in-time view, sorted by sortBy ("calls", "total",
// "p99", or "bytes"; anything else selects calls) descending, truncated to
// limit shapes (limit <= 0 means all). Safe on a nil registry.
func (r *Registry) Snapshot(sortBy string, limit int) Summary {
	if r == nil {
		return Summary{}
	}
	sum := Summary{
		MaxEntries: r.MaxEntries(),
		Observed:   atomic.LoadInt64(&r.observed),
	}
	var stats []Stat
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			stats = append(stats, e.stat(r.sloNs, r.cfg.Objective))
		}
		sh.mu.RUnlock()
	}
	sum.Entries = len(stats)
	var key func(s *Stat) int64
	switch sortBy {
	case "total":
		key = func(s *Stat) int64 { return s.TotalNs }
	case "p99":
		key = func(s *Stat) int64 { return s.P99Ns }
	case "bytes":
		key = func(s *Stat) int64 { return s.BytesOut }
	default:
		sortBy = "calls"
		key = func(s *Stat) int64 { return s.Calls }
	}
	sum.SortedBy = sortBy
	sort.Slice(stats, func(i, j int) bool {
		if a, b := key(&stats[i]), key(&stats[j]); a != b {
			return a > b
		}
		return stats[i].Fingerprint < stats[j].Fingerprint
	})
	if limit > 0 && len(stats) > limit {
		sum.Truncated = len(stats) - limit
		stats = stats[:limit]
	}
	sum.Statements = stats
	if atomic.LoadInt64(&r.other.calls) != 0 {
		o := r.other.stat(r.sloNs, r.cfg.Objective)
		sum.Other = &o
	}
	if r.sloNs > 0 {
		sum.SLO = r.sloSummary(stats)
	}
	return sum
}

func (r *Registry) sloSummary(stats []Stat) *SLOSummary {
	s := &SLOSummary{
		SLOMs:     r.sloNs / int64(time.Millisecond),
		Objective: r.cfg.Objective,
		Calls:     atomic.LoadInt64(&r.observed),
		Breaches:  atomic.LoadInt64(&r.sloBreaches),
	}
	if budget := 1 - r.cfg.Objective; budget > 0 && s.Calls > 0 {
		s.BurnRate = (float64(s.Breaches) / float64(s.Calls)) / budget
	}
	for i := range stats {
		if stats[i].Violating {
			s.Violating = append(s.Violating, stats[i].Fingerprint)
		}
	}
	sort.Strings(s.Violating)
	return s
}

// SLOBreaches reports the registry-wide breach count (0 when no SLO is set).
func (r *Registry) SLOBreaches() int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.sloBreaches)
}

// SLOConfigured reports whether a latency SLO is active.
func (r *Registry) SLOConfigured() bool { return r != nil && r.sloNs > 0 }

// FeatureCount is one tracked rewrite feature's workload-wide occurrence.
type FeatureCount struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Shapes counts tracked statement shapes using the feature; Calls the
	// total calls of those shapes. (A shape's whole call count attributes to
	// each of its features, mirroring the distinct-query counting of §7.1 at
	// per-shape granularity.)
	Shapes int   `json:"shapes"`
	Calls  int64 `json:"calls"`
}

// FeatureView is the /statements?view=features payload: the live Figure 8.
type FeatureView struct {
	// Queries is every request recorded since reset (evictions included).
	Queries int64 `json:"queries"`
	// Approximate flags that shapes were evicted into _other, whose calls
	// cannot be attributed to individual features; per-feature counts are
	// then lower bounds (presence still includes _other's feature set).
	Approximate bool `json:"approximate,omitempty"`

	Features []FeatureCount `json:"features"`
	// ClassQueryPct is the percentage of tracked calls whose shape uses at
	// least one feature of the class (Figure 8b); ClassPresencePct the
	// percentage of the class's 9 tracked features seen at all (Figure 8a).
	ClassQueries     map[string]int64   `json:"classQueries"`
	ClassQueryPct    map[string]float64 `json:"classQueryPct"`
	ClassPresencePct map[string]float64 `json:"classPresencePct"`
}

// Features aggregates the per-shape feature bit-sets into the Figure 8 view.
// Safe on a nil registry.
func (r *Registry) Features() FeatureView {
	if r == nil {
		return FeatureView{}
	}
	v := FeatureView{
		Queries:          atomic.LoadInt64(&r.observed),
		ClassQueries:     make(map[string]int64, 3),
		ClassQueryPct:    make(map[string]float64, 3),
		ClassPresencePct: make(map[string]float64, 3),
	}
	var shapes [feature.Count]int
	var calls [feature.Count]int64
	var classCalls [3]int64
	var tracked int64
	var present feature.Set
	collect := func(e *entry) {
		fs := feature.Set(atomic.LoadUint32(&e.feats))
		n := atomic.LoadInt64(&e.calls)
		tracked += n
		present.Union(fs)
		for _, id := range fs.IDs() {
			shapes[id]++
			calls[id] += n
		}
		for i, c := range feature.Classes {
			if fs.HasClass(c) {
				classCalls[i] += n
			}
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			collect(e)
		}
		sh.mu.RUnlock()
	}
	if atomic.LoadInt64(&r.other.calls) != 0 {
		// _other's calls cannot be attributed per feature (the bit-set is the
		// union over evicted shapes), so only presence folds in.
		v.Approximate = true
		present.Union(feature.Set(atomic.LoadUint32(&r.other.feats)))
	}
	for id := 0; id < feature.Count; id++ {
		info := feature.Lookup(feature.ID(id))
		v.Features = append(v.Features, FeatureCount{
			Name:   info.Name,
			Class:  info.Class.String(),
			Shapes: shapes[id],
			Calls:  calls[id],
		})
	}
	for i, c := range feature.Classes {
		v.ClassQueries[c.String()] = classCalls[i]
		if tracked > 0 {
			v.ClassQueryPct[c.String()] = 100 * float64(classCalls[i]) / float64(tracked)
		} else {
			v.ClassQueryPct[c.String()] = 0
		}
		n := 0
		for _, f := range feature.ByClass(c) {
			if present.Has(f.ID) {
				n++
			}
		}
		v.ClassPresencePct[c.String()] = 100 * float64(n) / float64(feature.PerClass)
	}
	return v
}
