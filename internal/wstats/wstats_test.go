package wstats

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperq/internal/feature"
	"hyperq/internal/fingerprint"
	"hyperq/internal/trace"
	"hyperq/internal/wire/tdp"
)

// obsMs builds a successful observation with the given wall time.
func obsMs(ms int64) *Obs {
	return &Obs{DurNs: ms * int64(time.Millisecond)}
}

// recordingPinner is a thread-safe fake Pinner tracking the live pin set and
// every pin/unpin event.
type recordingPinner struct {
	mu     sync.Mutex
	live   map[string]bool
	pins   []string
	unpins []string
}

func newRecordingPinner() *recordingPinner {
	return &recordingPinner{live: make(map[string]bool)}
}

func (p *recordingPinner) Pin(t *trace.Trace) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.live[t.ID] = true
	p.pins = append(p.pins, t.ID)
}

func (p *recordingPinner) Unpin(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.live, id)
	p.unpins = append(p.unpins, id)
}

func (p *recordingPinner) liveSet() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(p.live))
	for k := range p.live {
		out[k] = true
	}
	return out
}

func TestObserveAccumulatesPerShape(t *testing.T) {
	r := New(Config{MaxEntries: 8})
	sql := "SELECT a FROM t WHERE id = 42"
	hash := fingerprint.TemplateHash(sql)

	var feats feature.Set
	feats.Add(feature.Qualify)
	feats.Add(feature.SelAbbrev)

	o := &Obs{
		DurNs:      int64(5 * time.Millisecond),
		Tier:       TierMiss,
		RowsOut:    10,
		BytesOut:   400,
		BytesIn:    int64(len(sql)),
		Streamed:   true,
		Retries:    2,
		Reconnects: 1,
		Feats:      feats,
	}
	o.StageNs[StageParse] = 100
	o.StageNs[StageExecute] = 900
	r.Observe(hash, sql, o)
	r.Observe(hash, sql, &Obs{DurNs: int64(1 * time.Millisecond), Tier: TierExactHit})
	r.Observe(hash, sql, &Obs{
		DurNs: int64(2 * time.Millisecond), Tier: TierNone,
		Failed: true, ErrCode: tdp.CodeSyntaxError,
	})
	r.Observe(hash, sql, &Obs{
		DurNs: int64(2 * time.Millisecond), Tier: TierNone,
		Failed: true, ErrCode: 9999, // not a registry code: "other" slot
	})

	sum := r.Snapshot("calls", 0)
	if sum.Entries != 1 || len(sum.Statements) != 1 {
		t.Fatalf("want 1 entry, got %d (%d statements)", sum.Entries, len(sum.Statements))
	}
	if sum.Observed != 4 {
		t.Fatalf("observed = %d, want 4", sum.Observed)
	}
	if sum.Other != nil {
		t.Fatalf("no eviction happened, Other should be nil, got %+v", sum.Other)
	}
	s := sum.Statements[0]
	if s.Fingerprint != fingerprint.ShortID(hash) {
		t.Errorf("fingerprint = %q, want %q", s.Fingerprint, fingerprint.ShortID(hash))
	}
	if want := fingerprint.TemplateText(sql); s.Template != want {
		t.Errorf("template = %q, want %q (raw literal must be redacted)", s.Template, want)
	}
	if s.Calls != 4 || s.Errors != 2 {
		t.Errorf("calls/errors = %d/%d, want 4/2", s.Calls, s.Errors)
	}
	if got := s.ErrorCodes[fmt.Sprint(tdp.CodeSyntaxError)]; got != 1 {
		t.Errorf("errorCodes[syntax] = %d, want 1", got)
	}
	if got := s.ErrorCodes["other"]; got != 1 {
		t.Errorf("errorCodes[other] = %d, want 1", got)
	}
	if want := int64(10 * time.Millisecond); s.TotalNs != want {
		t.Errorf("totalNs = %d, want %d", s.TotalNs, want)
	}
	if s.RowsOut != 10 || s.BytesOut != 400 || s.BytesIn != int64(len(sql)) {
		t.Errorf("rows/bytesOut/bytesIn = %d/%d/%d", s.RowsOut, s.BytesOut, s.BytesIn)
	}
	if s.Streamed != 1 || s.Retries != 2 || s.Reconnects != 1 {
		t.Errorf("streamed/retries/reconnects = %d/%d/%d", s.Streamed, s.Retries, s.Reconnects)
	}
	if s.StageNs["parse"] != 100 || s.StageNs["execute"] != 900 {
		t.Errorf("stageNs = %v", s.StageNs)
	}
	if s.CacheTiers["miss"] != 1 || s.CacheTiers["exact-hit"] != 1 || s.CacheTiers["none"] != 2 {
		t.Errorf("cacheTiers = %v", s.CacheTiers)
	}
	wantFeats := map[string]bool{
		feature.Lookup(feature.SelAbbrev).Name: true,
		feature.Lookup(feature.Qualify).Name:   true,
	}
	if len(s.Features) != 2 || !wantFeats[s.Features[0]] || !wantFeats[s.Features[1]] {
		t.Errorf("features = %v, want %v", s.Features, wantFeats)
	}
	if s.MeanNs <= 0 || s.P99Ns < s.P50Ns {
		t.Errorf("latency stats mean=%d p50=%d p99=%d", s.MeanNs, s.P50Ns, s.P99Ns)
	}
}

// TestCardinalityBoundExactTotals is the core exactness guarantee: with far
// more shapes than MaxEntries, the tracked count stays bounded while
// sum(tracked calls) + _other calls == observed, always.
func TestCardinalityBoundExactTotals(t *testing.T) {
	const maxEntries = 4
	r := New(Config{MaxEntries: maxEntries})
	total := int64(0)
	for i := 0; i < 40; i++ {
		calls := int64(i%5 + 1)
		for c := int64(0); c < calls; c++ {
			r.Observe(uint64(i+1), fmt.Sprintf("select c%d from t", i), obsMs(1))
		}
		total += calls
	}
	if n := r.Entries(); n > maxEntries {
		t.Fatalf("entries = %d, exceeds bound %d", n, maxEntries)
	}
	sum := r.Snapshot("calls", 0)
	if sum.MaxEntries != maxEntries {
		t.Errorf("maxEntries = %d, want %d", sum.MaxEntries, maxEntries)
	}
	if sum.Other == nil {
		t.Fatal("evictions occurred but Other is nil")
	}
	var tracked int64
	for _, s := range sum.Statements {
		tracked += s.Calls
	}
	if got := tracked + sum.Other.Calls; got != total || sum.Observed != total {
		t.Fatalf("tracked %d + other %d = %d, observed %d, want %d",
			tracked, sum.Other.Calls, got, sum.Observed, total)
	}
}

// TestSpaceSavingKeepsHotShape: a shape with a large accumulated weight must
// survive a burst of one-off shapes (each one-off only displaces the lightest
// slot; the churn slot's weight climbs 2 per one-off, well below the hot
// weight here). With enough churn AND decay the hot shape would eventually
// age out — that is the intended behavior, not what this test pins.
func TestSpaceSavingKeepsHotShape(t *testing.T) {
	r := New(Config{MaxEntries: 4})
	const hot = uint64(1)
	for i := 0; i < 100; i++ {
		r.Observe(hot, "select hot from t", obsMs(1))
	}
	for i := 0; i < 10; i++ {
		r.Observe(uint64(1000+i), fmt.Sprintf("select cold%d from t", i), obsMs(1))
	}
	sh := &r.shards[hot%uint64(len(r.shards))]
	sh.mu.RLock()
	_, present := sh.m[hot]
	sh.mu.RUnlock()
	if !present {
		t.Fatal("hot shape was evicted by one-off churn")
	}
}

// TestDecayHalvesAdmissionWeights: after decayPeriod*maxPerShard observations
// on one shard, every weight in the shard halves, so stale-hot shapes become
// evictable.
func TestDecayHalvesAdmissionWeights(t *testing.T) {
	r := New(Config{MaxEntries: 2}) // single shard, maxPerShard=2, decay at 16 obs
	const h = uint64(7)
	threshold := decayPeriod * r.maxPerShard
	for i := 0; i < threshold; i++ {
		r.Observe(h, "select a from t", obsMs(1))
	}
	sh := &r.shards[h%uint64(len(r.shards))]
	sh.mu.RLock()
	w := atomic.LoadInt64(&sh.m[h].admit)
	sh.mu.RUnlock()
	if want := int64(threshold) / 2; w != want {
		t.Fatalf("post-decay weight = %d, want %d", w, want)
	}
}

func TestSLOBurnAndViolating(t *testing.T) {
	// Objective 0.75 so the budget (0.25) is exact in floating point: a shape
	// breaching at exactly the budget must read as burn 1.0, not violating.
	r := New(Config{MaxEntries: 8, SLO: time.Millisecond, Objective: 0.75})
	// Shape A: 1 breach in 4 calls — ratio equals the budget, not violating.
	for i := 0; i < 3; i++ {
		r.Observe(1, "select fast", &Obs{DurNs: int64(100 * time.Microsecond)})
	}
	r.Observe(1, "select fast", obsMs(2))
	// Shape B: every call breaches — violating.
	for i := 0; i < 4; i++ {
		r.Observe(2, "select slow", obsMs(5))
	}

	if got := r.SLOBreaches(); got != 5 {
		t.Fatalf("registry breaches = %d, want 5", got)
	}
	if !r.SLOConfigured() {
		t.Fatal("SLOConfigured = false with SLO set")
	}
	sum := r.Snapshot("calls", 0)
	if sum.SLO == nil {
		t.Fatal("Summary.SLO nil with SLO configured")
	}
	if sum.SLO.SLOMs != 1 || sum.SLO.Objective != 0.75 {
		t.Errorf("slo summary = %+v", sum.SLO)
	}
	if sum.SLO.Calls != 8 || sum.SLO.Breaches != 5 {
		t.Errorf("slo calls/breaches = %d/%d, want 8/5", sum.SLO.Calls, sum.SLO.Breaches)
	}
	// Burn: (5/8)/0.25 = 2.5.
	if sum.SLO.BurnRate < 2.49 || sum.SLO.BurnRate > 2.51 {
		t.Errorf("burn rate = %f", sum.SLO.BurnRate)
	}
	slowFP := fingerprint.ShortID(2)
	if len(sum.SLO.Violating) != 1 || sum.SLO.Violating[0] != slowFP {
		t.Errorf("violating = %v, want [%s]", sum.SLO.Violating, slowFP)
	}
	for _, s := range sum.Statements {
		switch s.Fingerprint {
		case fingerprint.ShortID(1):
			if s.Violating || s.SLOBreaches != 1 {
				t.Errorf("fast shape violating=%v breaches=%d", s.Violating, s.SLOBreaches)
			}
			// ratio 0.25 / budget 0.25 = burn 1.0: at, not over, budget.
			if s.BurnRate < 0.99 || s.BurnRate > 1.01 {
				t.Errorf("fast shape burn = %f, want 1.0", s.BurnRate)
			}
		case slowFP:
			if !s.Violating || s.SLOBreaches != 4 {
				t.Errorf("slow shape violating=%v breaches=%d", s.Violating, s.SLOBreaches)
			}
		}
	}
}

func TestExemplarPinsSlowestTrace(t *testing.T) {
	p := newRecordingPinner()
	r := New(Config{MaxEntries: 8, Pinner: p})
	h := uint64(1)
	mk := func(id string, ms int64) *Obs {
		o := obsMs(ms)
		o.Trace = &trace.Trace{ID: id}
		return o
	}
	r.Observe(h, "select a", mk("t-1", 5))
	r.Observe(h, "select a", mk("t-2", 2)) // faster: not an exemplar
	r.Observe(h, "select a", mk("t-3", 9)) // new slowest: replaces t-1

	sum := r.Snapshot("calls", 0)
	if got := sum.Statements[0].Exemplar; got != "t-3" {
		t.Fatalf("exemplar = %q, want t-3", got)
	}
	live := p.liveSet()
	if !live["t-3"] || live["t-1"] || live["t-2"] {
		t.Fatalf("live pins = %v, want exactly {t-3}", live)
	}

	// Eviction unpins the victim's exemplar.
	r2 := New(Config{MaxEntries: 1, Pinner: p})
	r2.Observe(1, "select a", mk("e-1", 5))
	r2.Observe(2, "select b", obsMs(1)) // evicts shape 1
	if p.liveSet()["e-1"] {
		t.Fatal("evicted shape's exemplar still pinned")
	}

	// Reset unpins everything.
	r.Reset()
	if l := p.liveSet(); len(l) != 0 {
		t.Fatalf("pins survive Reset: %v", l)
	}
}

func TestResetClearsEverything(t *testing.T) {
	r := New(Config{MaxEntries: 2, SLO: time.Millisecond})
	for i := 0; i < 10; i++ {
		r.Observe(uint64(i+1), fmt.Sprintf("select c%d", i), obsMs(5))
	}
	if r.Entries() == 0 || r.Observed() == 0 || r.SLOBreaches() == 0 {
		t.Fatal("setup did not populate registry")
	}
	r.Reset()
	if n := r.Entries(); n != 0 {
		t.Errorf("entries after reset = %d", n)
	}
	if n := r.Observed(); n != 0 {
		t.Errorf("observed after reset = %d", n)
	}
	if n := r.SLOBreaches(); n != 0 {
		t.Errorf("slo breaches after reset = %d", n)
	}
	sum := r.Snapshot("calls", 0)
	if sum.Other != nil {
		t.Errorf("_other survives reset: %+v", sum.Other)
	}
	// Registry remains usable after reset.
	r.Observe(1, "select a", obsMs(1))
	if r.Observed() != 1 || r.Entries() != 1 {
		t.Error("registry unusable after reset")
	}
}

func TestSnapshotSortAndLimit(t *testing.T) {
	r := New(Config{MaxEntries: 8})
	// Shape 1: 3 calls, cheap. Shape 2: 1 call, slow, big. Shape 3: 2 calls.
	for i := 0; i < 3; i++ {
		r.Observe(1, "a", obsMs(1))
	}
	r.Observe(2, "b", &Obs{DurNs: int64(50 * time.Millisecond), BytesOut: 1 << 20})
	for i := 0; i < 2; i++ {
		r.Observe(3, "c", obsMs(2))
	}
	fp := func(h uint64) string { return fingerprint.ShortID(h) }

	cases := []struct {
		sortBy string
		first  string
	}{
		{"calls", fp(1)},
		{"total", fp(2)},
		{"p99", fp(2)},
		{"bytes", fp(2)},
		{"bogus", fp(1)}, // falls back to calls
	}
	for _, tc := range cases {
		sum := r.Snapshot(tc.sortBy, 0)
		if sum.Statements[0].Fingerprint != tc.first {
			t.Errorf("sort %q: first = %s, want %s", tc.sortBy, sum.Statements[0].Fingerprint, tc.first)
		}
	}
	sum := r.Snapshot("calls", 2)
	if len(sum.Statements) != 2 || sum.Truncated != 1 {
		t.Errorf("limit=2: %d statements, truncated=%d, want 2/1", len(sum.Statements), sum.Truncated)
	}
	if sum.Entries != 3 {
		t.Errorf("entries = %d, want 3 (limit must not hide the count)", sum.Entries)
	}
}

func TestFeaturesView(t *testing.T) {
	r := New(Config{MaxEntries: 8})
	var fsA, fsB feature.Set
	fsA.Add(feature.SelAbbrev) // translation
	fsA.Add(feature.Qualify)   // transformation
	fsB.Add(feature.Macro)     // emulation
	for i := 0; i < 3; i++ {
		r.Observe(1, "a", &Obs{DurNs: 1, Feats: fsA})
	}
	r.Observe(2, "b", &Obs{DurNs: 1, Feats: fsB})
	r.Observe(3, "c", &Obs{DurNs: 1}) // no features

	v := r.Features()
	if v.Queries != 5 || v.Approximate {
		t.Fatalf("queries=%d approximate=%v, want 5/false", v.Queries, v.Approximate)
	}
	byName := map[string]FeatureCount{}
	for _, f := range v.Features {
		byName[f.Name] = f
	}
	if f := byName[feature.Lookup(feature.SelAbbrev).Name]; f.Shapes != 1 || f.Calls != 3 {
		t.Errorf("SelAbbrev = %+v, want shapes=1 calls=3", f)
	}
	if f := byName[feature.Lookup(feature.Macro).Name]; f.Shapes != 1 || f.Calls != 1 {
		t.Errorf("Macro = %+v, want shapes=1 calls=1", f)
	}
	tr := feature.ClassTranslation.String()
	em := feature.ClassEmulation.String()
	if v.ClassQueries[tr] != 3 || v.ClassQueries[em] != 1 {
		t.Errorf("classQueries = %v", v.ClassQueries)
	}
	// 3 of 5 tracked calls use a translation feature.
	if pct := v.ClassQueryPct[tr]; pct < 59.9 || pct > 60.1 {
		t.Errorf("translation classQueryPct = %f, want 60", pct)
	}
	// 1 of the 9 tracked features per class present.
	want := 100.0 / float64(feature.PerClass)
	if pct := v.ClassPresencePct[tr]; pct < want-0.1 || pct > want+0.1 {
		t.Errorf("translation presencePct = %f, want %f", pct, want)
	}

	// Eviction folds presence into _other and flags the view approximate.
	r2 := New(Config{MaxEntries: 1})
	r2.Observe(1, "a", &Obs{DurNs: 1, Feats: fsB})
	r2.Observe(2, "b", &Obs{DurNs: 1}) // evicts shape 1 into _other
	v2 := r2.Features()
	if !v2.Approximate {
		t.Fatal("eviction did not flag the feature view approximate")
	}
	if pct := v2.ClassPresencePct[em]; pct < want-0.1 {
		t.Errorf("evicted shape's feature presence lost: emulation pct = %f", pct)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Observe(1, "select a", obsMs(1)) // must not panic
	r.Reset()
	if r.Entries() != 0 || r.Observed() != 0 || r.MaxEntries() != 0 || r.SLOBreaches() != 0 {
		t.Error("nil registry accessors not zero")
	}
	if r.SLOConfigured() {
		t.Error("nil registry claims SLO")
	}
	if sum := r.Snapshot("calls", 0); sum.Statements != nil {
		t.Error("nil registry snapshot non-empty")
	}
	if v := r.Features(); v.Queries != 0 {
		t.Error("nil registry feature view non-empty")
	}
}

// TestConcurrentObserveExactTotals hammers a tiny registry from 16 goroutines
// with far more shapes than slots, then verifies the exactness invariant: not
// one observation may be lost to an admit/evict race.
func TestConcurrentObserveExactTotals(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
		shapes     = 64
	)
	r := New(Config{MaxEntries: 8, SLO: time.Microsecond, Objective: 0.99})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var fs feature.Set
			fs.Add(feature.ID(g % feature.Count))
			for i := 0; i < perG; i++ {
				h := uint64(g*perG+i)%shapes + 1
				o := &Obs{
					DurNs:    int64(i%10+1) * int64(time.Millisecond),
					Tier:     Tier(i % int(numTiers)),
					RowsOut:  1,
					BytesOut: 10,
					Feats:    fs,
				}
				if i%7 == 0 {
					o.Failed = true
					o.ErrCode = tdp.CodeBackendUnavailable
				}
				r.Observe(h, "select x from t", o)
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := r.Observed(); got != total {
		t.Fatalf("observed = %d, want %d", got, total)
	}
	if n := r.Entries(); n > 8 {
		t.Fatalf("entries = %d, exceeds bound 8", n)
	}
	sum := r.Snapshot("calls", 0)
	var calls, rows, bytes, errs int64
	for _, s := range sum.Statements {
		calls += s.Calls
		rows += s.RowsOut
		bytes += s.BytesOut
		errs += s.Errors
	}
	if sum.Other != nil {
		calls += sum.Other.Calls
		rows += sum.Other.RowsOut
		bytes += sum.Other.BytesOut
		errs += sum.Other.Errors
	}
	if calls != total {
		t.Fatalf("calls(tracked)+calls(_other) = %d, want %d — observations lost", calls, total)
	}
	if rows != total || bytes != total*10 {
		t.Fatalf("rows/bytes = %d/%d, want %d/%d", rows, bytes, total, total*10)
	}
	// Each goroutine fails ceil(perG/7) of its requests (i%7==0).
	wantErrs := int64(goroutines * ((perG + 6) / 7))
	if errs != wantErrs {
		t.Fatalf("errors = %d, want %d", errs, wantErrs)
	}
	// All requests are >= 1ms, so every one breaches the 1µs SLO.
	if b := r.SLOBreaches(); b != total {
		t.Fatalf("slo breaches = %d, want %d", b, total)
	}
}

// TestSteadyStateRecordingAllocationFree: once a shape is admitted, Observe
// must not allocate — the per-request stats tax is pure atomics.
func TestSteadyStateRecordingAllocationFree(t *testing.T) {
	r := New(Config{MaxEntries: 64, SLO: time.Second, Objective: 0.99})
	const sql = "SELECT a, b FROM t WHERE id = 7"
	hash := fingerprint.TemplateHash(sql)
	var fs feature.Set
	fs.Add(feature.Qualify)
	o := &Obs{DurNs: int64(time.Millisecond), Tier: TierFingerprintHit, RowsOut: 3, BytesOut: 120, Feats: fs}
	o.StageNs[StageParse] = 50
	r.Observe(hash, sql, o) // admission: allowed to allocate

	if avg := testing.AllocsPerRun(1000, func() {
		r.Observe(hash, sql, o)
	}); avg != 0 {
		t.Fatalf("steady-state Observe allocates %.1f per call, want 0", avg)
	}
}
