// Package wstats implements the gateway's per-fingerprint workload
// statistics registry — a pg_stat_statements for the ADV gateway. Every
// request is keyed by the lexical redaction hash of its SQL text
// (fingerprint.TemplateHash: literal values never enter the registry) and
// folded into a per-shape entry accumulating call/error counts (errors
// broken down by frontend code), a compact latency histogram with
// p50/p95/p99, the per-stage time split, cache-tier outcomes, rows and bytes
// in/out (streamed results included), retry/reconnect counts, the §4 rewrite
// feature bit-set, and an optional latency-SLO breach count — the live
// version of the paper's Table 1 / Figure 8 workload characterization.
//
// Cardinality is bounded: the registry holds at most MaxEntries shapes,
// admitted with a space-saving policy. When a shard is full, the entry with
// the smallest admission weight is evicted and its counters fold into a
// distinguished "_other" bucket, so registry-wide totals stay exact no
// matter how many shapes the workload has; the newcomer inherits the
// victim's weight + 1, so a genuinely hot new shape can displace incumbents
// while a stream of one-off shapes churns only the bottom slot. Weights
// decay (halve) periodically so formerly hot shapes age out.
//
// Recording is lock-free on the steady-state path: a shard read-lock for the
// map lookup, then atomic adds into the entry — no allocations after a
// shape's first occurrence. Admission, eviction, decay and snapshots take
// the shard write lock.
package wstats

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperq/internal/feature"
	"hyperq/internal/fingerprint"
	"hyperq/internal/metrics"
	"hyperq/internal/trace"
	"hyperq/internal/wire/tdp"
)

// Pipeline stage indices of Obs.StageNs, in metrics.StageNames order.
const (
	StageParse = iota
	StageBind
	StageTransform
	StageSerialize
	StageCache
	StageExecute
	StageConvert
	NumStages
)

var stageNames = [NumStages]string{"parse", "bind", "transform", "serialize", "cache", "execute", "convert"}

// Tier is a request's translation-cache outcome.
type Tier uint8

// Cache tiers. TierExactHit is the request tier (byte-identical replay,
// "raw-hit" in traces); TierFingerprintHit the template tier; TierNone marks
// requests that never consulted the cache (DDL, emulation, parse errors,
// cache disabled).
const (
	TierNone Tier = iota
	TierExactHit
	TierFingerprintHit
	TierMiss
	TierBypass
	numTiers
)

var tierNames = [numTiers]string{"none", "exact-hit", "fingerprint-hit", "miss", "bypass"}

// errorCodes are the frontend failure codes broken out per shape; everything
// else lands in a final "other" slot. Kept in sync with the tdp registry by
// construction — the values are the registry constants themselves.
var errorCodes = [...]int{
	tdp.CodeWriteStateUnknown,
	tdp.CodeBackendUnavailable,
	tdp.CodeGatewaySaturated,
	tdp.CodeClientTooSlow,
	tdp.CodeResultInterrupted,
	tdp.CodeSyntaxError,
	tdp.CodeSemanticError,
	tdp.CodeObjectExists,
	tdp.CodeObjectNotFound,
	tdp.CodeBadMacroArgument,
	tdp.CodeMacroNotFound,
}

const numErrSlots = len(errorCodes) + 1

func errSlot(code int) int {
	for i, c := range errorCodes {
		if c == code {
			return i
		}
	}
	return len(errorCodes)
}

// Obs is one request's observation, assembled by the session pipeline and
// recorded exactly once per request.
type Obs struct {
	// DurNs is the whole-request wall time.
	DurNs int64
	// StageNs is the per-stage time split (Stage* indices).
	StageNs [NumStages]int64
	// Tier is the translation-cache outcome.
	Tier Tier
	// Failed marks a request that returned an error; ErrCode its frontend
	// failure code (0 when the failure carried none).
	Failed  bool
	ErrCode int
	// RowsOut/BytesOut measure the result delivered to the client (bytes in
	// the backend TDF wire encoding, streamed and buffered paths alike);
	// BytesIn the request text size.
	RowsOut  int64
	BytesOut int64
	BytesIn  int64
	// Streamed marks results delivered through the streaming pipeline.
	Streamed bool
	// Retries/Reconnects count the resilient driver's recovery actions during
	// this request (0 when tracing is off — they are derived from the trace).
	Retries    int64
	Reconnects int64
	// Feats is the request's rewrite-feature bit-set.
	Feats feature.Set
	// Trace, when non-nil, is the finished request trace — the exemplar
	// candidate pinned when this is the shape's slowest request so far.
	Trace *trace.Trace
}

// entry accumulates one statement shape. All counters are updated atomically
// so steady-state recording takes no locks; admit is the space-saving
// eviction weight (an eviction priority, not a call count — it is inherited
// across evictions and decayed).
type entry struct {
	hash     uint64
	id       string
	template string
	admit    int64
	// evicted flips once when the entry is folded into _other; active counts
	// in-flight recorders. The evictor sets evicted, then waits for active to
	// drain before reading counters, so no observation is ever lost between a
	// shape's entry and the _other bucket.
	evicted int32
	active  int64

	calls     int64
	errors    int64
	errByCode [numErrSlots]int64
	totalNs   int64
	lat       metrics.Compact
	stageNs   [NumStages]int64
	tiers     [numTiers]int64
	rowsOut   int64
	bytesOut  int64
	bytesIn   int64
	streamed  int64
	retries   int64
	reconns   int64
	feats     uint32
	sloMiss   int64

	exMu    sync.Mutex
	exID    string
	exDurNs int64
}

// record folds one observation into the entry; false means the entry was
// evicted concurrently and the caller must re-resolve the shape.
func (e *entry) record(o *Obs, sloNs int64) bool {
	atomic.AddInt64(&e.active, 1)
	if atomic.LoadInt32(&e.evicted) != 0 {
		atomic.AddInt64(&e.active, -1)
		return false
	}
	atomic.AddInt64(&e.calls, 1)
	atomic.AddInt64(&e.totalNs, o.DurNs)
	e.lat.Observe(time.Duration(o.DurNs))
	for i, ns := range o.StageNs {
		if ns != 0 {
			atomic.AddInt64(&e.stageNs[i], ns)
		}
	}
	atomic.AddInt64(&e.tiers[o.Tier], 1)
	if o.Failed {
		atomic.AddInt64(&e.errors, 1)
		atomic.AddInt64(&e.errByCode[errSlot(o.ErrCode)], 1)
	}
	if o.RowsOut != 0 {
		atomic.AddInt64(&e.rowsOut, o.RowsOut)
	}
	if o.BytesOut != 0 {
		atomic.AddInt64(&e.bytesOut, o.BytesOut)
	}
	if o.BytesIn != 0 {
		atomic.AddInt64(&e.bytesIn, o.BytesIn)
	}
	if o.Streamed {
		atomic.AddInt64(&e.streamed, 1)
	}
	if o.Retries != 0 {
		atomic.AddInt64(&e.retries, o.Retries)
	}
	if o.Reconnects != 0 {
		atomic.AddInt64(&e.reconns, o.Reconnects)
	}
	if o.Feats != 0 {
		orUint32(&e.feats, uint32(o.Feats))
	}
	if sloNs > 0 && o.DurNs > sloNs {
		atomic.AddInt64(&e.sloMiss, 1)
	}
	atomic.AddInt64(&e.admit, 1)
	atomic.AddInt64(&e.active, -1)
	return true
}

func orUint32(p *uint32, v uint32) {
	for {
		old := atomic.LoadUint32(p)
		if old&v == v || atomic.CompareAndSwapUint32(p, old, old|v) {
			return
		}
	}
}

// Pinner retains exemplar traces against ring churn. *trace.Ring implements
// it; a nil Pinner disables exemplars.
type Pinner interface {
	Pin(t *trace.Trace)
	Unpin(id string)
}

// Config configures a Registry.
type Config struct {
	// MaxEntries bounds the tracked shape count; past it the space-saving
	// policy folds cold shapes into _other. 0 selects 1024.
	MaxEntries int
	// SLO, when positive, is the per-request latency objective: requests
	// slower than it count as SLO breaches per shape and registry-wide.
	SLO time.Duration
	// Objective is the target fraction of requests meeting the SLO (the
	// error budget is 1-Objective); used for burn rates and the violating
	// flag. 0 selects 0.99.
	Objective float64
	// Pinner retains each shape's slowest trace as an exemplar.
	Pinner Pinner
}

type shard struct {
	mu         sync.RWMutex
	m          map[uint64]*entry
	sinceDecay int64
}

// Registry is the sharded, bounded statement-statistics store.
type Registry struct {
	cfg         Config
	sloNs       int64
	shards      []shard
	maxPerShard int
	// other is the fold bucket: evicted shapes' counters accumulate here so
	// totals over the registry stay exact.
	other entry
	// observed counts every recorded request; sloBreaches every request over
	// the SLO — both survive eviction by construction.
	observed    int64
	sloBreaches int64
}

// decayPeriod is the per-shard observation count between weight halvings,
// as a multiple of the shard's entry bound.
const decayPeriod = 8

// New creates a registry.
func New(cfg Config) *Registry {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1024
	}
	if cfg.Objective == 0 {
		cfg.Objective = 0.99
	}
	// Small bounds use a single shard so MaxEntries stays an exact bound;
	// production-sized bounds spread over 16 shards for lock spreading.
	nShards := 16
	if cfg.MaxEntries < 64 {
		nShards = 1
	}
	r := &Registry{
		cfg:         cfg,
		sloNs:       int64(cfg.SLO),
		shards:      make([]shard, nShards),
		maxPerShard: cfg.MaxEntries / nShards,
	}
	if r.maxPerShard < 1 {
		r.maxPerShard = 1
	}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*entry)
	}
	r.other.id = "_other"
	r.other.template = "_other"
	return r
}

// MaxEntries reports the configured cardinality bound.
func (r *Registry) MaxEntries() int {
	if r == nil {
		return 0
	}
	return r.maxPerShard * len(r.shards)
}

// Observed reports the total requests recorded since the last reset.
func (r *Registry) Observed() int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.observed)
}

// Entries reports the tracked shape count (excluding _other).
func (r *Registry) Entries() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Observe records one request. sql is the raw request text, used only to
// materialize the redacted template on a shape's first admission. Safe on a
// nil registry.
func (r *Registry) Observe(hash uint64, sql string, o *Obs) {
	if r == nil {
		return
	}
	atomic.AddInt64(&r.observed, 1)
	if r.sloNs > 0 && o.DurNs > r.sloNs {
		atomic.AddInt64(&r.sloBreaches, 1)
	}
	sh := &r.shards[hash%uint64(len(r.shards))]
	for {
		sh.mu.RLock()
		e := sh.m[hash]
		sh.mu.RUnlock()
		if e == nil {
			e = r.admit(sh, hash, sql)
		}
		if e.record(o, r.sloNs) {
			r.noteExemplar(e, o)
			if atomic.AddInt64(&sh.sinceDecay, 1) >= int64(decayPeriod*r.maxPerShard) {
				r.decay(sh)
			}
			return
		}
		// Lost the race against eviction: re-resolve (the retry re-admits the
		// shape or lands on its replacement), so no observation is dropped.
	}
}

// admit inserts the shape, evicting the lightest incumbent into _other when
// the shard is full (the space-saving step).
func (r *Registry) admit(sh *shard, hash uint64, sql string) *entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.m[hash]; e != nil {
		return e
	}
	e := &entry{
		hash:     hash,
		id:       fingerprint.ShortID(hash),
		template: fingerprint.TemplateText(sql),
		admit:    1,
	}
	if len(sh.m) >= r.maxPerShard {
		var victim *entry
		for _, cand := range sh.m {
			if victim == nil || atomic.LoadInt64(&cand.admit) < atomic.LoadInt64(&victim.admit) {
				victim = cand
			}
		}
		delete(sh.m, victim.hash)
		r.fold(victim)
		// Space-saving inheritance: the newcomer starts at the victim's
		// weight + 1, so it cannot itself be displaced by the next one-off
		// shape, yet a truly hot shape accumulates weight and stays.
		e.admit = atomic.LoadInt64(&victim.admit) + 1
	}
	sh.m[hash] = e
	return e
}

// fold drains the victim's in-flight recorders, then moves its counters into
// the _other bucket. Called with the victim already unreachable (deleted
// from the shard map, evicted flag set below), so after the active count
// drains no new observation can land on it and the fold is exact.
func (r *Registry) fold(victim *entry) {
	atomic.StoreInt32(&victim.evicted, 1)
	for atomic.LoadInt64(&victim.active) > 0 {
		runtime.Gosched()
	}
	o := &r.other
	atomic.AddInt64(&o.calls, atomic.LoadInt64(&victim.calls))
	atomic.AddInt64(&o.errors, atomic.LoadInt64(&victim.errors))
	for i := range victim.errByCode {
		if n := atomic.LoadInt64(&victim.errByCode[i]); n != 0 {
			atomic.AddInt64(&o.errByCode[i], n)
		}
	}
	atomic.AddInt64(&o.totalNs, atomic.LoadInt64(&victim.totalNs))
	o.lat.Merge(&victim.lat)
	for i := range victim.stageNs {
		if n := atomic.LoadInt64(&victim.stageNs[i]); n != 0 {
			atomic.AddInt64(&o.stageNs[i], n)
		}
	}
	for i := range victim.tiers {
		if n := atomic.LoadInt64(&victim.tiers[i]); n != 0 {
			atomic.AddInt64(&o.tiers[i], n)
		}
	}
	atomic.AddInt64(&o.rowsOut, atomic.LoadInt64(&victim.rowsOut))
	atomic.AddInt64(&o.bytesOut, atomic.LoadInt64(&victim.bytesOut))
	atomic.AddInt64(&o.bytesIn, atomic.LoadInt64(&victim.bytesIn))
	atomic.AddInt64(&o.streamed, atomic.LoadInt64(&victim.streamed))
	atomic.AddInt64(&o.retries, atomic.LoadInt64(&victim.retries))
	atomic.AddInt64(&o.reconns, atomic.LoadInt64(&victim.reconns))
	atomic.AddInt64(&o.sloMiss, atomic.LoadInt64(&victim.sloMiss))
	orUint32(&o.feats, atomic.LoadUint32(&victim.feats))
	victim.exMu.Lock()
	if victim.exID != "" && r.cfg.Pinner != nil {
		r.cfg.Pinner.Unpin(victim.exID)
	}
	victim.exID = ""
	victim.exMu.Unlock()
}

// decay halves every admission weight in the shard, so shapes hot long ago
// eventually become evictable.
func (r *Registry) decay(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if atomic.LoadInt64(&sh.sinceDecay) < int64(decayPeriod*r.maxPerShard) {
		return // another goroutine decayed first
	}
	atomic.StoreInt64(&sh.sinceDecay, 0)
	for _, e := range sh.m {
		for {
			w := atomic.LoadInt64(&e.admit)
			if atomic.CompareAndSwapInt64(&e.admit, w, w/2) {
				break
			}
		}
	}
}

// noteExemplar pins the trace as the shape's exemplar when it is the slowest
// request seen for the shape.
func (r *Registry) noteExemplar(e *entry, o *Obs) {
	if o.Trace == nil || o.DurNs <= atomic.LoadInt64(&e.exDurNs) {
		return
	}
	e.exMu.Lock()
	defer e.exMu.Unlock()
	if atomic.LoadInt32(&e.evicted) != 0 || o.DurNs <= atomic.LoadInt64(&e.exDurNs) {
		return
	}
	if r.cfg.Pinner != nil {
		r.cfg.Pinner.Pin(o.Trace)
		if e.exID != "" {
			r.cfg.Pinner.Unpin(e.exID)
		}
	}
	e.exID = o.Trace.ID
	atomic.StoreInt64(&e.exDurNs, o.DurNs)
}

// Reset drops every tracked shape, the _other bucket, and the SLO counters,
// unpinning all exemplars. Safe on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			atomic.StoreInt32(&e.evicted, 1)
			for atomic.LoadInt64(&e.active) > 0 {
				runtime.Gosched()
			}
			e.exMu.Lock()
			if e.exID != "" && r.cfg.Pinner != nil {
				r.cfg.Pinner.Unpin(e.exID)
			}
			e.exID = ""
			e.exMu.Unlock()
		}
		sh.m = make(map[uint64]*entry)
		atomic.StoreInt64(&sh.sinceDecay, 0)
		sh.mu.Unlock()
	}
	o := &r.other
	atomic.StoreInt64(&o.calls, 0)
	atomic.StoreInt64(&o.errors, 0)
	for i := range o.errByCode {
		atomic.StoreInt64(&o.errByCode[i], 0)
	}
	atomic.StoreInt64(&o.totalNs, 0)
	o.lat.Reset()
	for i := range o.stageNs {
		atomic.StoreInt64(&o.stageNs[i], 0)
	}
	for i := range o.tiers {
		atomic.StoreInt64(&o.tiers[i], 0)
	}
	atomic.StoreInt64(&o.rowsOut, 0)
	atomic.StoreInt64(&o.bytesOut, 0)
	atomic.StoreInt64(&o.bytesIn, 0)
	atomic.StoreInt64(&o.streamed, 0)
	atomic.StoreInt64(&o.retries, 0)
	atomic.StoreInt64(&o.reconns, 0)
	atomic.StoreInt64(&o.sloMiss, 0)
	atomic.StoreUint32(&o.feats, 0)
	atomic.StoreInt64(&r.observed, 0)
	atomic.StoreInt64(&r.sloBreaches, 0)
}
