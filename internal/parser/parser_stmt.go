package parser

import (
	"strings"

	"hyperq/internal/feature"
	"hyperq/internal/sqlast"
)

// DML and DDL statement parsing.

func (p *Parser) parseInsert() (sqlast.Statement, error) {
	if p.peekKW() == "INS" {
		if p.dialect != Teradata {
			return nil, p.errorf("INS abbreviation is not ANSI SQL")
		}
		p.rec.Record(feature.SelAbbrev)
	}
	p.i++
	p.acceptKW("INTO")
	table, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.InsertStmt{Table: table}

	// Optional parenthesized list: a column list when followed by VALUES or
	// a query; in the Teradata dialect a bare trailing list is the
	// abbreviated single-row VALUES form (INS t (1, 2)).
	if p.cur().kind == tokOp && p.cur().text == "(" {
		save := p.i
		p.i++
		if p.looksLikeNameList() {
			cols, err := p.parseNameList()
			if err == nil && p.acceptOp(")") {
				switch p.peekKW() {
				case "VALUES", "SELECT", "SEL", "WITH":
					stmt.Columns = cols
				default:
					// Trailing list of bare identifiers without a source:
					// invalid in ANSI, values-form in Teradata only if the
					// statement ends here — but identifiers are not values,
					// so reject for clarity.
					return nil, p.errorf("expected VALUES or query after column list")
				}
			} else {
				p.i = save
			}
		}
		if stmt.Columns == nil {
			// Teradata abbreviated VALUES form.
			if p.dialect != Teradata {
				return nil, p.errorf("expected column list")
			}
			p.i = save
			p.i++ // "("
			row, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.Rows = [][]sqlast.Expr{row}
			return stmt, nil
		}
	}
	switch p.peekKW() {
	case "VALUES":
		p.i++
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			row, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.Rows = append(stmt.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
	case "SELECT", "SEL", "WITH":
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		stmt.Query = q
	default:
		return nil, p.errorf("expected VALUES or query in INSERT")
	}
	return stmt, nil
}

// looksLikeNameList reports whether the upcoming tokens form
// ident (, ident)* ")" — used to disambiguate INSERT column lists.
func (p *Parser) looksLikeNameList() bool {
	j := p.i
	for {
		if j >= len(p.toks) {
			return false
		}
		t := p.toks[j]
		if !(t.kind == tokQuotedIdent || (t.kind == tokIdent && !reservedWords[t.up])) {
			return false
		}
		j++
		if j < len(p.toks) && p.toks[j].kind == tokOp {
			switch p.toks[j].text {
			case ",":
				j++
				continue
			case ")":
				return true
			}
		}
		return false
	}
}

func (p *Parser) parseQualifiedName() (string, error) {
	name, err := p.parseIdentName()
	if err != nil {
		return "", err
	}
	if p.acceptOp(".") {
		return p.parseIdentName()
	}
	return name, nil
}

func (p *Parser) parseUpdate() (sqlast.Statement, error) {
	if p.peekKW() == "UPD" {
		if p.dialect != Teradata {
			return nil, p.errorf("UPD abbreviation is not ANSI SQL")
		}
		p.rec.Record(feature.SelAbbrev)
	}
	p.i++
	table, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.UpdateStmt{Table: table}
	if p.acceptKW("AS") {
		a, err := p.parseIdentName()
		if err != nil {
			return nil, err
		}
		stmt.Alias = a
	} else if p.cur().kind == tokIdent && !reservedWords[p.cur().up] {
		stmt.Alias = p.cur().text
		p.i++
	}
	if p.acceptKW("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, te)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKW("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdentName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, sqlast.Assignment{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKW("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (sqlast.Statement, error) {
	if p.peekKW() == "DEL" {
		if p.dialect != Teradata {
			return nil, p.errorf("DEL abbreviation is not ANSI SQL")
		}
		p.rec.Record(feature.SelAbbrev)
	}
	p.i++
	p.acceptKW("FROM")
	table, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.DeleteStmt{Table: table}
	if p.cur().kind == tokIdent && !reservedWords[p.cur().up] {
		stmt.Alias = p.cur().text
		p.i++
	}
	switch {
	case p.acceptKW("WHERE"):
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	case p.acceptKW("ALL"):
		stmt.All = true
	}
	return stmt, nil
}

func (p *Parser) parseMerge() (sqlast.Statement, error) {
	p.i++ // MERGE
	p.rec.Record(feature.Merge)
	if err := p.expectKW("INTO"); err != nil {
		return nil, err
	}
	target, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.MergeStmt{Target: target}
	if p.acceptKW("AS") {
		a, err := p.parseIdentName()
		if err != nil {
			return nil, err
		}
		stmt.TargetAlias = a
	} else if p.cur().kind == tokIdent && p.peekKW() != "USING" {
		stmt.TargetAlias = p.cur().text
		p.i++
	}
	if err := p.expectKW("USING"); err != nil {
		return nil, err
	}
	src, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	stmt.Source = src
	if err := p.expectKW("ON"); err != nil {
		return nil, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	stmt.On = on
	for p.acceptKW("WHEN") {
		not := p.acceptKW("NOT")
		if err := p.expectKW("MATCHED"); err != nil {
			return nil, err
		}
		if err := p.expectKW("THEN"); err != nil {
			return nil, err
		}
		if not {
			if err := p.expectKW("INSERT"); err != nil {
				return nil, err
			}
			stmt.HasNotMatched = true
			if p.cur().kind == tokOp && p.cur().text == "(" {
				p.i++
				cols, err := p.parseNameList()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				stmt.NotMatchedCols = cols
			}
			if err := p.expectKW("VALUES"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			vals, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.NotMatchedVals = vals
			continue
		}
		switch {
		case p.acceptKW("UPDATE"):
			if err := p.expectKW("SET"); err != nil {
				return nil, err
			}
			for {
				col, err := p.parseIdentName()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp("="); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				stmt.Matched = append(stmt.Matched, sqlast.Assignment{Column: col, Value: val})
				if !p.acceptOp(",") {
					break
				}
			}
		case p.acceptKW("DELETE"):
			stmt.MatchedDelete = true
		default:
			return nil, p.errorf("expected UPDATE or DELETE in WHEN MATCHED")
		}
	}
	if stmt.Matched == nil && !stmt.MatchedDelete && !stmt.HasNotMatched {
		return nil, p.errorf("MERGE requires at least one WHEN clause")
	}
	return stmt, nil
}

func (p *Parser) parseCreate() (sqlast.Statement, error) {
	replace := false
	if p.peekKW() == "REPLACE" {
		if p.dialect != Teradata {
			return nil, p.errorf("REPLACE statement is not ANSI SQL")
		}
		replace = true
		p.i++
	} else {
		p.i++ // CREATE
		if p.acceptKW("OR") {
			if err := p.expectKW("REPLACE"); err != nil {
				return nil, err
			}
			replace = true
		}
	}
	switch p.peekKW() {
	case "VIEW":
		return p.parseCreateView(replace)
	case "MACRO":
		if p.dialect != Teradata {
			return nil, p.errorf("CREATE MACRO is not ANSI SQL")
		}
		return p.parseCreateMacro(replace)
	}
	if replace {
		return nil, p.errorf("REPLACE applies to VIEW or MACRO")
	}
	return p.parseCreateTable()
}

func (p *Parser) parseCreateTable() (sqlast.Statement, error) {
	stmt := &sqlast.CreateTableStmt{}
	switch p.peekKW() {
	case "SET":
		if p.dialect != Teradata {
			return nil, p.errorf("SET tables are not ANSI SQL")
		}
		stmt.Set = true
		p.rec.Record(feature.SetTable)
		p.i++
	case "MULTISET":
		p.i++
	}
	switch p.peekKW() {
	case "VOLATILE":
		if p.dialect != Teradata {
			return nil, p.errorf("VOLATILE tables are not ANSI SQL")
		}
		stmt.Volatile = true
		p.i++
	case "GLOBAL":
		p.i++
		if err := p.expectKW("TEMPORARY"); err != nil {
			return nil, err
		}
		stmt.GlobalTemporary = true
		p.rec.Record(feature.GlobalTempTable)
	case "TEMPORARY", "TEMP":
		p.i++
		stmt.Volatile = true
	}
	if err := p.expectKW("TABLE"); err != nil {
		return nil, err
	}
	if p.acceptKW("IF") {
		if err := p.expectKW("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKW("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if p.acceptKW("AS") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.AsQuery = q
		if p.acceptKW("WITH") {
			switch {
			case p.acceptKW("DATA"):
				stmt.WithData = true
			case p.acceptKW("NO"):
				if err := p.expectKW("DATA"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errorf("expected DATA or NO DATA")
			}
		}
		return stmt, p.parseTableSuffix(stmt)
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		cd, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, cd)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, p.parseTableSuffix(stmt)
}

func (p *Parser) parseTableSuffix(stmt *sqlast.CreateTableStmt) error {
	for {
		switch p.peekKW() {
		case "PRIMARY":
			p.i++
			if err := p.expectKW("INDEX"); err != nil {
				return err
			}
			if err := p.expectOp("("); err != nil {
				return err
			}
			cols, err := p.parseNameList()
			if err != nil {
				return err
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			stmt.PrimaryIndex = cols
		case "UNIQUE":
			p.i++
			if err := p.expectKW("PRIMARY"); err != nil {
				return err
			}
			if err := p.expectKW("INDEX"); err != nil {
				return err
			}
			if err := p.expectOp("("); err != nil {
				return err
			}
			cols, err := p.parseNameList()
			if err != nil {
				return err
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			stmt.PrimaryIndex = cols
		case "ON":
			p.i++
			if err := p.expectKW("COMMIT"); err != nil {
				return err
			}
			if p.acceptKW("PRESERVE") {
				stmt.OnCommitPreserve = true
			} else if !p.acceptKW("DELETE") {
				return p.errorf("expected PRESERVE or DELETE")
			}
			if err := p.expectKW("ROWS"); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *Parser) parseColumnDef() (sqlast.ColumnDef, error) {
	name, err := p.parseIdentName()
	if err != nil {
		return sqlast.ColumnDef{}, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return sqlast.ColumnDef{}, err
	}
	cd := sqlast.ColumnDef{Name: name, Type: tn}
	for {
		switch p.peekKW() {
		case "NOT":
			switch p.peekKWAt(1) {
			case "NULL":
				p.i += 2
				cd.NotNull = true
			case "CASESPECIFIC":
				if p.dialect != Teradata {
					return sqlast.ColumnDef{}, p.errorf("NOT CASESPECIFIC is not ANSI SQL")
				}
				p.i += 2
				cd.CaseInsensitive = true
			default:
				return sqlast.ColumnDef{}, p.errorf("expected NULL or CASESPECIFIC after NOT")
			}
		case "DEFAULT":
			p.i++
			e, err := p.parseUnary()
			if err != nil {
				return sqlast.ColumnDef{}, err
			}
			cd.Default = e
		case "CASESPECIFIC":
			p.i++
		default:
			return cd, nil
		}
	}
}

func (p *Parser) parseCreateView(replace bool) (sqlast.Statement, error) {
	p.i++ // VIEW
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.CreateViewStmt{Name: name, Replace: replace}
	if p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if err := p.expectKW("AS"); err != nil {
		return nil, err
	}
	start := p.cur().pos
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	stmt.Query = q
	end := p.cur().pos
	if p.atEOF() {
		end = len(p.src)
	}
	stmt.SQL = strings.TrimSpace(p.src[start:end])
	return stmt, nil
}

func (p *Parser) parseCreateMacro(replace bool) (sqlast.Statement, error) {
	p.i++ // MACRO
	p.rec.Record(feature.Macro)
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.CreateMacroStmt{Name: name, Replace: replace}
	if p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		for {
			pn, err := p.parseIdentName()
			if err != nil {
				return nil, err
			}
			tn, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			stmt.Params = append(stmt.Params, sqlast.MacroParamDef{Name: pn, Type: tn})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKW("AS"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	// Capture the raw body text up to the matching close paren.
	bodyStart := p.cur().pos
	depth := 1
	bodyEnd := bodyStart
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, p.errorf("unterminated macro body")
		}
		if t.kind == tokOp {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					bodyEnd = t.pos
					p.i++
					stmt.Body = strings.TrimSpace(p.src[bodyStart:bodyEnd])
					return stmt, nil
				}
			}
		}
		p.i++
	}
}

func (p *Parser) parseDrop() (sqlast.Statement, error) {
	p.i++ // DROP
	switch p.peekKW() {
	case "TABLE":
		p.i++
		ifExists := false
		if p.acceptKW("IF") {
			if err := p.expectKW("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropTableStmt{Name: name, IfExists: ifExists}, nil
	case "VIEW":
		p.i++
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropViewStmt{Name: name}, nil
	case "MACRO":
		if p.dialect != Teradata {
			return nil, p.errorf("DROP MACRO is not ANSI SQL")
		}
		p.i++
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropMacroStmt{Name: name}, nil
	}
	return nil, p.errorf("expected TABLE, VIEW or MACRO after DROP")
}

func (p *Parser) parseExec() (sqlast.Statement, error) {
	p.i++ // EXEC
	p.rec.Record(feature.Macro)
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.ExecStmt{Macro: name}
	if p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		args, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Args = args
	}
	return stmt, nil
}

func (p *Parser) parseHelp() (sqlast.Statement, error) {
	p.i++ // HELP
	switch p.peekKW() {
	case "SESSION":
		p.i++
		p.rec.Record(feature.HelpSession)
		return &sqlast.HelpStmt{What: "SESSION"}, nil
	case "TABLE":
		p.i++
		p.rec.Record(feature.HelpTable)
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		return &sqlast.HelpStmt{What: "TABLE", Name: name}, nil
	}
	return nil, p.errorf("expected SESSION or TABLE after HELP")
}

func (p *Parser) parseCollectStats() (sqlast.Statement, error) {
	p.i++ // COLLECT
	switch p.peekKW() {
	case "STATISTICS", "STATS", "STAT":
		p.i++
	default:
		return nil, p.errorf("expected STATISTICS after COLLECT")
	}
	p.rec.Record(feature.CollectStats)
	p.acceptKW("ON")
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	stmt := &sqlast.CollectStatsStmt{Table: name}
	if p.acceptKW("COLUMN") {
		if p.acceptOp("(") {
			cols, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.Columns = cols
		} else {
			col, err := p.parseIdentName()
			if err != nil {
				return nil, err
			}
			stmt.Columns = []string{col}
		}
	}
	return stmt, nil
}

func (p *Parser) parseSetSession() (sqlast.Statement, error) {
	p.i += 2 // SET SESSION
	opt, err := p.parseIdentName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	t := p.cur()
	var val string
	switch t.kind {
	case tokIdent, tokNumber, tokString:
		val = t.text
		p.i++
	default:
		return nil, p.errorf("expected session option value")
	}
	return &sqlast.SetSessionStmt{Option: opt, Value: val}, nil
}
