package parser

import (
	"fmt"
	"strings"

	"hyperq/internal/feature"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

// Dialect selects the accepted SQL surface.
type Dialect uint8

// Dialects.
const (
	// Teradata accepts the full vendor surface: SEL abbreviations, QUALIFY,
	// flexible clause order, TOP, vector subqueries, macros, MERGE, BT/ET.
	Teradata Dialect = iota
	// ANSI is the strict surface of the modeled cloud targets; vendor
	// constructs are syntax errors, exactly as they would be on the real
	// system (the paper's motivation: queries "would be almost certainly
	// broken if executed without changes on a new database").
	ANSI
)

func (d Dialect) String() string {
	if d == ANSI {
		return "ansi"
	}
	return "teradata"
}

// Parser parses one source string.
type Parser struct {
	src     string
	toks    []token
	i       int
	dialect Dialect
	rec     *feature.Recorder
	sc      *Scratch
}

// New prepares a parser over src. rec may be nil.
func New(src string, d Dialect, rec *feature.Recorder) (*Parser, error) {
	return NewWith(src, d, rec, nil)
}

// NewWith prepares a parser over src using a per-session scratch arena. sc
// may be nil, in which case every path allocates fresh (the reference build
// the differential tests compare against).
func NewWith(src string, d Dialect, rec *feature.Recorder, sc *Scratch) (*Parser, error) {
	toks, err := lex(src, sc)
	if err != nil {
		return nil, err
	}
	return &Parser{src: src, toks: toks, dialect: d, rec: rec, sc: sc}, nil
}

// Parse parses a script: one or more semicolon-separated statements.
func Parse(src string, d Dialect, rec *feature.Recorder) ([]sqlast.Statement, error) {
	return ParseWith(src, d, rec, nil)
}

// ParseWith parses a script using a per-session scratch arena. The returned
// AST aliases the arena: it is valid only until the next sc.Reset. Nested
// parses (macro bodies, view definitions) must not share the scratch of a
// parse still in progress — pass nil for those.
func ParseWith(src string, d Dialect, rec *feature.Recorder, sc *Scratch) ([]sqlast.Statement, error) {
	p, err := NewWith(src, d, rec, sc)
	if err != nil {
		return nil, err
	}
	return p.Script()
}

// ParseOne parses exactly one statement.
func ParseOne(src string, d Dialect, rec *feature.Recorder) (sqlast.Statement, error) {
	stmts, err := Parse(src, d, rec)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("parser: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExprString parses a standalone scalar expression (used by tests and
// the macro expander).
func ParseExprString(src string, d Dialect) (sqlast.Expr, error) {
	p, err := New(src, d, nil)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after expression")
	}
	return e, nil
}

// Script parses all statements until EOF.
func (p *Parser) Script() ([]sqlast.Statement, error) {
	var out []sqlast.Statement
	for {
		for p.acceptOp(";") {
		}
		if p.atEOF() {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.atEOF() && !p.acceptOp(";") {
			return nil, p.errorf("expected ';' between statements")
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("parser: empty request")
	}
	return out, nil
}

// --- token helpers -------------------------------------------------------

func (p *Parser) cur() token  { return p.toks[p.i] }
func (p *Parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *Parser) peekKW() string {
	t := p.cur()
	if t.kind != tokIdent {
		return ""
	}
	return t.up
}

func (p *Parser) peekKWAt(n int) string {
	j := p.i + n
	if j >= len(p.toks) || p.toks[j].kind != tokIdent {
		return ""
	}
	return p.toks[j].up
}

func (p *Parser) peekOpAt(n int) string {
	j := p.i + n
	if j >= len(p.toks) || p.toks[j].kind != tokOp {
		return ""
	}
	return p.toks[j].text
}

// acceptKW consumes the next token when it is the given keyword.
func (p *Parser) acceptKW(kw string) bool {
	if p.peekKW() == kw {
		p.i++
		return true
	}
	return false
}

// expectKW consumes the keyword or fails.
func (p *Parser) expectKW(kw string) error {
	if !p.acceptKW(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	t := p.cur()
	if t.kind == tokOp && t.text == op {
		p.i++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q", op)
	}
	return nil
}

// parseError defers all formatting — fmt.Sprintf, line counting, the near
// snippet — to Error(), so constructing one on an error return costs a single
// allocation and successful parses never pay for message rendering.
type parseError struct {
	src     string
	dialect Dialect
	near    string
	eof     bool
	pos     int
	format  string
	args    []any
}

func (e *parseError) Error() string {
	near := e.near
	if e.eof {
		near = "<end of input>"
	}
	line := 1 + strings.Count(e.src[:minInt(e.pos, len(e.src))], "\n")
	return fmt.Sprintf("parser(%s): %s near %q (line %d)", e.dialect, fmt.Sprintf(e.format, e.args...), near, line)
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &parseError{
		src:     p.src,
		dialect: p.dialect,
		near:    t.text,
		eof:     t.kind == tokEOF,
		pos:     t.pos,
		format:  format,
		args:    args,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parseIdentName reads one identifier (bare or quoted).
func (p *Parser) parseIdentName() (string, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		if reservedWords[t.up] {
			return "", p.errorf("reserved word %s used as identifier", t.up)
		}
		p.i++
		return t.text, nil
	case tokQuotedIdent:
		p.i++
		return t.text, nil
	}
	return "", p.errorf("expected identifier")
}

// reservedWords cannot appear as bare identifiers.
var reservedWords = map[string]bool{
	"SELECT": true, "SEL": true, "FROM": true, "WHERE": true, "GROUP": true,
	"HAVING": true, "ORDER": true, "QUALIFY": true, "UNION": true, "INTERSECT": true,
	"EXCEPT": true, "MINUS": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "FULL": true, "CROSS": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "AS": true, "IN": true, "EXISTS": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "DISTINCT": true, "ALL": true, "ANY": true, "SOME": true, "INSERT": true,
	"UPDATE": true, "DELETE": true, "MERGE": true, "CREATE": true, "DROP": true,
	"TABLE": true, "VIEW": true, "INTO": true, "VALUES": true, "SET": true,
	"WITH": true, "RECURSIVE": true, "BY": true, "ASC": true, "DESC": true,
	"USING": true, "CAST": true, "EXTRACT": true, "INTERVAL": true, "TOP": true,
	"LIMIT": true, "MOD": true, "DEFAULT": true, "PRIMARY": true, "UNIQUE": true,
}

// --- statements ----------------------------------------------------------

func (p *Parser) parseStatement() (sqlast.Statement, error) {
	switch kw := p.peekKW(); kw {
	case "SELECT", "WITH":
		return p.parseSelectStatement()
	case "SEL":
		if p.dialect != Teradata {
			return nil, p.errorf("SEL abbreviation is not ANSI SQL")
		}
		return p.parseSelectStatement()
	case "INSERT", "INS":
		return p.parseInsert()
	case "UPDATE", "UPD":
		return p.parseUpdate()
	case "DELETE", "DEL":
		return p.parseDelete()
	case "MERGE":
		return p.parseMerge()
	case "CREATE", "REPLACE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "EXEC", "EXECUTE":
		if p.dialect != Teradata {
			return nil, p.errorf("EXEC is not ANSI SQL")
		}
		return p.parseExec()
	case "HELP":
		if p.dialect != Teradata {
			return nil, p.errorf("HELP is not ANSI SQL")
		}
		return p.parseHelp()
	case "COLLECT":
		if p.dialect != Teradata {
			return nil, p.errorf("COLLECT STATISTICS is not ANSI SQL")
		}
		return p.parseCollectStats()
	case "EXPLAIN":
		if p.dialect != Teradata {
			return nil, p.errorf("EXPLAIN is not supported by the target dialect")
		}
		p.i++
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &sqlast.ExplainStmt{Stmt: inner}, nil
	case "BT":
		if p.dialect != Teradata {
			return nil, p.errorf("BT is not ANSI SQL")
		}
		p.i++
		p.rec.Record(feature.BtEt)
		return &sqlast.TxnStmt{Kind: "BEGIN"}, nil
	case "ET":
		if p.dialect != Teradata {
			return nil, p.errorf("ET is not ANSI SQL")
		}
		p.i++
		p.rec.Record(feature.BtEt)
		return &sqlast.TxnStmt{Kind: "COMMIT"}, nil
	case "BEGIN":
		p.i++
		p.acceptKW("TRANSACTION")
		return &sqlast.TxnStmt{Kind: "BEGIN"}, nil
	case "COMMIT":
		p.i++
		p.acceptKW("WORK")
		return &sqlast.TxnStmt{Kind: "COMMIT"}, nil
	case "ROLLBACK":
		p.i++
		p.acceptKW("WORK")
		return &sqlast.TxnStmt{Kind: "ROLLBACK"}, nil
	case "SET":
		if p.peekKWAt(1) == "SESSION" {
			return p.parseSetSession()
		}
		return nil, p.errorf("unsupported SET statement")
	case "":
		if p.cur().kind == tokOp && p.cur().text == "(" {
			return p.parseSelectStatement()
		}
	}
	return nil, p.errorf("unsupported statement")
}

func (p *Parser) parseSelectStatement() (sqlast.Statement, error) {
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	return &sqlast.SelectStmt{Query: q}, nil
}

// parseQueryExpr parses [WITH ...] body [UNION ...] [ORDER BY ...].
func (p *Parser) parseQueryExpr() (*sqlast.QueryExpr, error) {
	q := &sqlast.QueryExpr{}
	if p.acceptKW("WITH") {
		w := &sqlast.WithClause{}
		if p.acceptKW("RECURSIVE") {
			w.Recursive = true
			p.rec.Record(feature.RecursiveQuery)
		}
		for {
			name, err := p.parseIdentName()
			if err != nil {
				return nil, err
			}
			cte := sqlast.CTE{Name: name}
			if p.acceptOp("(") {
				cols, err := p.parseNameList()
				if err != nil {
					return nil, err
				}
				cte.Columns = cols
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKW("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			cte.Query = sub
			w.CTEs = append(w.CTEs, cte)
			if !p.acceptOp(",") {
				break
			}
		}
		q.With = w
	}
	body, orderBy, err := p.parseSetOpTree()
	if err != nil {
		return nil, err
	}
	q.Body = body
	q.OrderBy = orderBy
	// An outer ORDER BY following the whole set-operation tree.
	if p.peekKW() == "ORDER" {
		ob, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		if q.OrderBy != nil {
			return nil, p.errorf("duplicate ORDER BY")
		}
		q.OrderBy = ob
	}
	// ANSI row limiting: LIMIT n, or FETCH FIRST n ROWS ONLY/WITH TIES.
	switch p.peekKW() {
	case "LIMIT":
		if p.dialect != ANSI {
			return nil, p.errorf("LIMIT is not Teradata SQL; use TOP")
		}
		p.i++
		n, err := p.parseIntToken("LIMIT")
		if err != nil {
			return nil, err
		}
		q.Limit = &sqlast.TopClause{N: n}
	case "FETCH":
		if p.dialect != ANSI {
			return nil, p.errorf("FETCH FIRST is not Teradata SQL; use TOP")
		}
		p.i++
		if !p.acceptKW("FIRST") && !p.acceptKW("NEXT") {
			return nil, p.errorf("expected FIRST or NEXT")
		}
		n, err := p.parseIntToken("FETCH FIRST")
		if err != nil {
			return nil, err
		}
		if !p.acceptKW("ROWS") && !p.acceptKW("ROW") {
			return nil, p.errorf("expected ROWS")
		}
		top := &sqlast.TopClause{N: n}
		switch {
		case p.acceptKW("ONLY"):
		case p.acceptKW("WITH"):
			if err := p.expectKW("TIES"); err != nil {
				return nil, err
			}
			top.WithTies = true
		default:
			return nil, p.errorf("expected ONLY or WITH TIES")
		}
		q.Limit = top
	}
	return q, nil
}

// parseIntToken reads a positive integer literal.
func (p *Parser) parseIntToken(clause string) (int64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errorf("expected row count after %s", clause)
	}
	d, err := numberDatum(t.text)
	if err != nil || d.K == types.KindFloat || d.K == types.KindDecimal {
		return 0, p.errorf("%s requires an integer", clause)
	}
	p.i++
	return d.I, nil
}

// parseSetOpTree parses body (UNION|INTERSECT|EXCEPT body)*, left-assoc with
// INTERSECT binding tighter, as in the standard.
func (p *Parser) parseSetOpTree() (sqlast.QueryBody, []sqlast.OrderItem, error) {
	l, ob, err := p.parseSetOpTerm()
	if err != nil {
		return nil, nil, err
	}
	for {
		var op sqlast.SetOp
		switch p.peekKW() {
		case "UNION":
			op = sqlast.SetUnion
		case "EXCEPT", "MINUS":
			op = sqlast.SetExcept
		default:
			return l, ob, nil
		}
		if ob != nil {
			return nil, nil, p.errorf("ORDER BY must follow the last set operand")
		}
		p.i++
		all := p.acceptKW("ALL")
		if !all {
			p.acceptKW("DISTINCT")
		}
		r, rob, err := p.parseSetOpTerm()
		if err != nil {
			return nil, nil, err
		}
		l = &sqlast.SetOpBody{Op: op, All: all, L: l, R: r}
		ob = rob
	}
}

func (p *Parser) parseSetOpTerm() (sqlast.QueryBody, []sqlast.OrderItem, error) {
	l, ob, err := p.parseSetOpPrimary()
	if err != nil {
		return nil, nil, err
	}
	for p.peekKW() == "INTERSECT" {
		if ob != nil {
			return nil, nil, p.errorf("ORDER BY must follow the last set operand")
		}
		p.i++
		all := p.acceptKW("ALL")
		if !all {
			p.acceptKW("DISTINCT")
		}
		r, rob, err := p.parseSetOpPrimary()
		if err != nil {
			return nil, nil, err
		}
		l = &sqlast.SetOpBody{Op: sqlast.SetIntersect, All: all, L: l, R: r}
		ob = rob
	}
	return l, ob, nil
}

func (p *Parser) parseSetOpPrimary() (sqlast.QueryBody, []sqlast.OrderItem, error) {
	if p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		sub, err := p.parseQueryExpr()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, nil, err
		}
		return sub, nil, nil
	}
	return p.parseSelectCore()
}

// parseSelectCore parses one SELECT block. In the Teradata dialect the
// clauses after FROM may appear in any order (Example 1 places ORDER BY
// before WHERE); the parser normalizes them into canonical positions. Any
// trailing ORDER BY is returned separately so it attaches to the enclosing
// QueryExpr.
func (p *Parser) parseSelectCore() (*sqlast.SelectCore, []sqlast.OrderItem, error) {
	kw := p.peekKW()
	if kw == "SEL" {
		if p.dialect != Teradata {
			return nil, nil, p.errorf("SEL abbreviation is not ANSI SQL")
		}
		p.rec.Record(feature.SelAbbrev)
		p.i++
	} else if kw == "SELECT" {
		p.i++
	} else {
		return nil, nil, p.errorf("expected SELECT")
	}
	core := &sqlast.SelectCore{}
	if p.acceptKW("DISTINCT") {
		core.Distinct = true
	} else {
		p.acceptKW("ALL")
	}
	if p.peekKW() == "TOP" {
		if p.dialect != Teradata {
			return nil, nil, p.errorf("TOP is not ANSI SQL")
		}
		p.i++
		t := p.cur()
		if t.kind != tokNumber {
			return nil, nil, p.errorf("expected number after TOP")
		}
		d, err := numberDatum(t.text)
		if err != nil || d.K == types.KindFloat || d.K == types.KindDecimal {
			return nil, nil, p.errorf("TOP requires an integer")
		}
		p.i++
		top := &sqlast.TopClause{N: d.I}
		if p.acceptKW("PERCENT") {
			top.Percent = true
		}
		if p.acceptKW("WITH") {
			if err := p.expectKW("TIES"); err != nil {
				return nil, nil, err
			}
			top.WithTies = true
		}
		core.Top = top
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, nil, err
		}
		core.Items = append(core.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKW("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, nil, err
			}
			core.From = append(core.From, te)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	// Post-FROM clauses: canonical order in ANSI; any order in Teradata.
	var orderBy []sqlast.OrderItem
	seen := map[string]bool{}
	stage := 0 // ANSI progress: WHERE=1, GROUP=2, HAVING=3, QUALIFY=4, ORDER=5
	for {
		kw := p.peekKW()
		var rank int
		switch kw {
		case "WHERE":
			rank = 1
		case "GROUP":
			rank = 2
		case "HAVING":
			rank = 3
		case "QUALIFY":
			rank = 4
		case "ORDER":
			rank = 5
		default:
			return core, orderBy, nil
		}
		if seen[kw] {
			return nil, nil, p.errorf("duplicate %s clause", kw)
		}
		seen[kw] = true
		if p.dialect == ANSI && rank < stage {
			return nil, nil, p.errorf("%s clause out of order", kw)
		}
		if rank > stage {
			stage = rank
		}
		switch kw {
		case "WHERE":
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			core.Where = e
		case "GROUP":
			if err := p.parseGroupBy(core); err != nil {
				return nil, nil, err
			}
		case "HAVING":
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			core.Having = e
		case "QUALIFY":
			if p.dialect != Teradata {
				return nil, nil, p.errorf("QUALIFY is not ANSI SQL")
			}
			p.i++
			p.rec.Record(feature.Qualify)
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			core.Qualify = e
		case "ORDER":
			ob, err := p.parseOrderBy()
			if err != nil {
				return nil, nil, err
			}
			orderBy = ob
		}
	}
}

func (p *Parser) parseGroupBy(core *sqlast.SelectCore) error {
	p.i++ // GROUP
	if err := p.expectKW("BY"); err != nil {
		return err
	}
	switch p.peekKW() {
	case "ROLLUP", "CUBE":
		kind := p.peekKW()
		p.i++
		p.rec.Record(feature.GroupingSets)
		if err := p.expectOp("("); err != nil {
			return err
		}
		exprs, err := p.parseExprList()
		if err != nil {
			return err
		}
		if err := p.expectOp(")"); err != nil {
			return err
		}
		core.GroupBy = exprs
		core.GroupingSets = expandRollupCube(kind, len(exprs))
		return nil
	case "GROUPING":
		p.i++
		if err := p.expectKW("SETS"); err != nil {
			return err
		}
		p.rec.Record(feature.GroupingSets)
		if err := p.expectOp("("); err != nil {
			return err
		}
		// Each set is a parenthesized list of expressions; collect the
		// union of expressions as GroupBy and indexes per set.
		var sets [][]int
		for {
			if err := p.expectOp("("); err != nil {
				return err
			}
			var idxs []int
			if !(p.cur().kind == tokOp && p.cur().text == ")") {
				exprs, err := p.parseExprList()
				if err != nil {
					return err
				}
				for _, e := range exprs {
					idxs = append(idxs, len(core.GroupBy))
					core.GroupBy = append(core.GroupBy, e)
				}
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			sets = append(sets, idxs)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return err
		}
		core.GroupingSets = sets
		return nil
	}
	exprs, err := p.parseExprList()
	if err != nil {
		return err
	}
	core.GroupBy = exprs
	return nil
}

// expandRollupCube lists the grouping sets of ROLLUP/CUBE over n columns.
func expandRollupCube(kind string, n int) [][]int {
	var sets [][]int
	if kind == "ROLLUP" {
		for k := n; k >= 0; k-- {
			set := make([]int, k)
			for i := 0; i < k; i++ {
				set[i] = i
			}
			sets = append(sets, set)
		}
		return sets
	}
	// CUBE: all subsets, from full set down to empty.
	for mask := (1 << n) - 1; mask >= 0; mask-- {
		var set []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		sets = append(sets, set)
	}
	return sets
}

func (p *Parser) parseOrderBy() ([]sqlast.OrderItem, error) {
	p.i++ // ORDER
	if err := p.expectKW("BY"); err != nil {
		return nil, err
	}
	var out []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := sqlast.OrderItem{Expr: e}
		if p.acceptKW("DESC") {
			item.Desc = true
		} else {
			p.acceptKW("ASC")
		}
		if p.acceptKW("NULLS") {
			switch {
			case p.acceptKW("FIRST"):
				v := true
				item.NullsFirst = &v
			case p.acceptKW("LAST"):
				v := false
				item.NullsFirst = &v
			default:
				return nil, p.errorf("expected FIRST or LAST")
			}
		}
		out = append(out, item)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

func (p *Parser) parseSelectItem() (sqlast.SelectItem, error) {
	// "*" and "t.*".
	if p.acceptOp("*") {
		return sqlast.SelectItem{Expr: &sqlast.Star{}}, nil
	}
	if (p.cur().kind == tokIdent && !reservedWords[p.cur().up] || p.cur().kind == tokQuotedIdent) &&
		p.peekOpAt(1) == "." && p.peekOpAt(2) == "*" {
		tbl := p.cur().text
		p.i += 3
		return sqlast.SelectItem{Expr: &sqlast.Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKW("AS") {
		name, err := p.parseIdentName()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = name
	} else if p.cur().kind == tokIdent && !reservedWords[p.cur().up] {
		item.Alias = p.cur().text
		p.i++
	} else if p.cur().kind == tokQuotedIdent {
		item.Alias = p.cur().text
		p.i++
	}
	return item, nil
}

func (p *Parser) parseNameList() ([]string, error) {
	var out []string
	for {
		n, err := p.parseIdentName()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

func (p *Parser) parseExprList() ([]sqlast.Expr, error) {
	var out []sqlast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptOp(",") {
			break
		}
	}
	return out, nil
}

// --- FROM clause ---------------------------------------------------------

func (p *Parser) parseTableExpr() (sqlast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind sqlast.JoinKind
		switch p.peekKW() {
		case "JOIN":
			kind = sqlast.JoinInner
			p.i++
		case "INNER":
			p.i++
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinInner
		case "LEFT":
			p.i++
			p.acceptKW("OUTER")
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinLeft
		case "RIGHT":
			p.i++
			p.acceptKW("OUTER")
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinRight
		case "FULL":
			p.i++
			p.acceptKW("OUTER")
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinFull
		case "CROSS":
			p.i++
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &sqlast.JoinExpr{Kind: kind, L: left, R: right}
		if kind != sqlast.JoinCross {
			if err := p.expectKW("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (sqlast.TableExpr, error) {
	if p.cur().kind == tokOp && p.cur().text == "(" {
		// Derived table or parenthesized join: skip nested parens to find
		// the first meaningful token (set operations may parenthesize each
		// branch: "((SELECT ...) UNION (SELECT ...)) AS a").
		j := 0
		for p.peekOpAt(j) == "(" {
			j++
		}
		if kw := p.peekKWAt(j); kw == "SELECT" || kw == "SEL" || kw == "WITH" {
			p.i++
			q, err := p.parseQueryExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			dt := &sqlast.DerivedTable{Query: q}
			alias, cols, err := p.parseTableAlias()
			if err != nil {
				return nil, err
			}
			if alias == "" {
				return nil, p.errorf("derived table requires an alias")
			}
			dt.Alias = alias
			dt.ColAliases = cols
			return dt, nil
		}
		p.i++
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.parseIdentName()
	if err != nil {
		return nil, err
	}
	// Optional database qualifier db.table — collapse to the table name.
	if p.acceptOp(".") {
		name2, err := p.parseIdentName()
		if err != nil {
			return nil, err
		}
		name = name2
	}
	tr := &sqlast.TableRef{Name: name}
	alias, cols, err := p.parseTableAlias()
	if err != nil {
		return nil, err
	}
	tr.Alias = alias
	tr.ColAliases = cols
	return tr, nil
}

// parseTableAlias parses [AS] alias [(col, ...)].
func (p *Parser) parseTableAlias() (string, []string, error) {
	alias := ""
	if p.acceptKW("AS") {
		n, err := p.parseIdentName()
		if err != nil {
			return "", nil, err
		}
		alias = n
	} else if p.cur().kind == tokIdent && !reservedWords[p.cur().up] {
		alias = p.cur().text
		p.i++
	} else if p.cur().kind == tokQuotedIdent {
		alias = p.cur().text
		p.i++
	}
	var cols []string
	if alias != "" && p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		cs, err := p.parseNameList()
		if err != nil {
			return "", nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return "", nil, err
		}
		cols = cs
	}
	return alias, cols, nil
}
