package parser

import (
	"strings"

	"hyperq/internal/sqlast"
)

// keywordList is every keyword the parser compares tokens against. The
// interned uppercase forms live in kwIntern so wrong-case keywords fold to a
// shared string instead of allocating one per lookup. Missing entries are not
// a correctness problem — unknown uppercase spellings fall through to the
// per-session identifier interner.
var keywordList = []string{
	"ADD_MONTHS", "ALL", "AND", "ANY", "AS", "ASC", "BEGIN", "BETWEEN", "BOTH",
	"BT", "BY", "CASE", "CASESPECIFIC", "CAST", "CHARACTERS", "CHARS",
	"COALESCE", "COLLECT", "COLUMN", "COMMIT", "COUNT", "CREATE", "CROSS",
	"CUBE", "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP", "DATA",
	"DATE", "DATEADD", "DAY", "DEFAULT", "DEL", "DELETE", "DENSE_RANK",
	"DESC", "DISTINCT", "DOUBLE", "DROP", "ELSE", "END", "ET", "EXCEPT",
	"EXEC", "EXECUTE", "EXISTS", "EXPLAIN", "EXTRACT", "FALSE", "FETCH",
	"FIRST", "FOR", "FROM", "FULL", "GLOBAL", "GROUP", "GROUPING", "HAVING",
	"HELP", "HOUR", "IF", "IN", "INDEX", "INNER", "INS", "INSERT",
	"INTERSECT", "INTERVAL", "INTO", "IS", "JOIN", "LAST", "LEADING", "LEFT",
	"LIKE", "LIMIT", "MACRO", "MATCHED", "MAX", "MERGE", "MIN", "MINUS",
	"MINUTE", "MOD", "MONTH", "MULTISET", "NEXT", "NO", "NOT", "NULL",
	"NULLIF", "NULLIFZERO", "NULLS", "ON", "ONLY", "OR", "ORDER", "OUTER",
	"OVER", "PARTITION", "PERCENT", "PERIOD", "POSITION", "PRECEDING",
	"PRECISION", "PRESERVE", "PRIMARY", "QUALIFY", "RANK", "RECURSIVE",
	"REPLACE", "RIGHT", "ROLLBACK", "ROLLUP", "ROW", "ROWS", "ROW_NUMBER",
	"SECOND", "SEL", "SELECT", "SESSION", "SESSION_USER", "SET", "SETS",
	"SOME", "STAT", "STATISTICS", "STATS", "SUBSTR", "SUBSTRING", "SUM",
	"TABLE", "TEMP", "TEMPORARY", "THEN", "TIES", "TIME", "TIMESTAMP", "TOP",
	"TRAILING", "TRANSACTION", "TRIM", "TRUE", "UNBOUNDED", "UNION",
	"UNIQUE", "UPD", "UPDATE", "USER", "USING", "VALUES", "VIEW", "VOLATILE",
	"WHEN", "WHERE", "WITH", "WORK", "YEAR", "ZEROIFNULL",
}

// kwIntern maps every uppercase keyword spelling to one shared string. It is
// built once at init and read-only afterwards, so concurrent sessions share
// it safely.
var kwIntern = make(map[string]string, len(keywordList))

func init() {
	for _, kw := range keywordList {
		kwIntern[kw] = kw
	}
}

// hasLowerASCII reports whether s contains a lowercase ASCII letter.
// Identifier tokens are ASCII by construction (isIdentStart/isIdentPart), so
// an ASCII-only fold is exactly equivalent to strings.ToUpper for them.
func hasLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'a' && c <= 'z' {
			return true
		}
	}
	return false
}

// upperIdent returns the uppercase form of an identifier token, avoiding
// allocation whenever possible: already-uppercase spellings are returned
// as-is (sub-slices of the request text), wrong-case keywords fold into a
// stack buffer and resolve to the shared interned keyword, and other
// identifiers resolve through the per-session interner when one is present.
func upperIdent(s string, sc *Scratch) string {
	if !hasLowerASCII(s) {
		return s
	}
	if len(s) <= 64 {
		var buf [64]byte
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			buf[i] = c
		}
		u := buf[:len(s)]
		// Map lookups keyed by string(u) do not allocate.
		if kw, ok := kwIntern[string(u)]; ok {
			return kw
		}
		if sc != nil {
			if id, ok := sc.idents[string(u)]; ok {
				return id
			}
			id := string(u)
			if sc.idents == nil {
				sc.idents = make(map[string]string)
			}
			sc.idents[id] = id
			return id
		}
		return string(u)
	}
	return strings.ToUpper(s)
}

// slab hands out values of T from a chunk reused across requests. Resetting
// rewinds to the start of the current chunk, so nodes from the previous
// request are overwritten — callers must only reset once the prior request's
// AST is dead.
type slab[T any] struct {
	cur []T
}

func (s *slab[T]) get() *T {
	if len(s.cur) == cap(s.cur) {
		s.cur = make([]T, 0, 64)
	}
	s.cur = s.cur[:len(s.cur)+1]
	return &s.cur[len(s.cur)-1]
}

func (s *slab[T]) reset() { s.cur = s.cur[:0] }

// Scratch is a per-session parser arena: the token slice, the identifier
// interner, and slabs for the hottest AST node types are reused across
// requests. A Scratch must not be shared between concurrently running
// parsers; sessions process one request at a time, which makes per-session
// reuse safe. The zero value is ready to use; a nil *Scratch degrades every
// path to fresh allocation (the differential-test reference build).
type Scratch struct {
	toks   []token
	idents map[string]string

	bins   slab[sqlast.BinExpr]
	consts slab[sqlast.Const]
	ids    slab[sqlast.Ident]
	funcs  slab[sqlast.FuncCall]
}

// Reset rewinds the arena at a request boundary. The AST produced by the
// previous request must no longer be referenced: its nodes will be
// overwritten by the next parse. The identifier interner is retained — it
// converges on the session's working set of identifiers.
func (sc *Scratch) Reset() {
	if sc == nil {
		return
	}
	sc.bins.reset()
	sc.consts.reset()
	sc.ids.reset()
	sc.funcs.reset()
}

// Node constructors: slab-allocated with a scratch, fresh otherwise. Each
// fully overwrites the slot so no state leaks from the node a prior request
// left there.

func (p *Parser) newBinExpr(op sqlast.BinOp, l, r sqlast.Expr) *sqlast.BinExpr {
	if p.sc == nil {
		return &sqlast.BinExpr{Op: op, L: l, R: r}
	}
	b := p.sc.bins.get()
	*b = sqlast.BinExpr{Op: op, L: l, R: r}
	return b
}

func (p *Parser) newConst(v sqlast.Const) *sqlast.Const {
	if p.sc == nil {
		c := v
		return &c
	}
	c := p.sc.consts.get()
	*c = v
	return c
}

func (p *Parser) newIdent(parts []string) *sqlast.Ident {
	if p.sc == nil {
		return &sqlast.Ident{Parts: parts}
	}
	id := p.sc.ids.get()
	*id = sqlast.Ident{Parts: parts}
	return id
}

func (p *Parser) newFuncCall(v sqlast.FuncCall) *sqlast.FuncCall {
	if p.sc == nil {
		f := v
		return &f
	}
	f := p.sc.funcs.get()
	*f = v
	return f
}
