package parser

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"hyperq/internal/feature"
)

// TestUpperIdentMatchesToUpper checks the ASCII fold against strings.ToUpper
// for identifier-shaped inputs, with and without a scratch interner.
func TestUpperIdentMatchesToUpper(t *testing.T) {
	cases := []string{
		"", "a", "A", "sel", "SEL", "Sel", "l_returnflag", "L_RETURNFLAG",
		"_x$9", "#tmp", "already_upper_ABC123", "sElEcT",
		strings.Repeat("ab", 40), // > 64 bytes: ToUpper fallback path
	}
	sc := &Scratch{}
	for _, in := range cases {
		want := strings.ToUpper(in)
		if got := upperIdent(in, nil); got != want {
			t.Errorf("upperIdent(%q, nil) = %q, want %q", in, got, want)
		}
		if got := upperIdent(in, sc); got != want {
			t.Errorf("upperIdent(%q, sc) = %q, want %q", in, got, want)
		}
	}
	// Interned results must be stable: same string value on repeat lookups.
	a := upperIdent("l_quantity", sc)
	b := upperIdent("L_Quantity", sc)
	if a != b || a != "L_QUANTITY" {
		t.Errorf("interner disagreement: %q vs %q", a, b)
	}
}

// TestScratchParseMatchesReference parses a statement mix with a reused
// scratch and with none, and requires structurally identical ASTs and
// identical error text. Queries repeat so slab reuse across Reset cycles is
// exercised.
func TestScratchParseMatchesReference(t *testing.T) {
	queries := []string{
		"SEL a, b FROM t WHERE x > 1 AND y < 2 QUALIFY RANK(a DESC) <= 10",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t GROUP BY 1",
		"INS t (1, 2, 'three')",
		"UPDATE t SET a = a + 1 WHERE b IN (SEL c FROM u)",
		"sel zeroifnull(amount), add_months(d, 3) from sales where region = 'WEST'",
		"CREATE VOLATILE TABLE vt AS (SEL * FROM t) WITH DATA",
		"SEL * FROM a, b WHERE a.k = b.k; DEL FROM t WHERE x = 1;",
		"THIS IS NOT SQL ((",
		"SEL FROM WHERE",
	}
	sc := &Scratch{}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			ref, refErr := Parse(q, Teradata, &feature.Recorder{})
			sc.Reset()
			got, gotErr := ParseWith(q, Teradata, &feature.Recorder{}, sc)
			if (refErr == nil) != (gotErr == nil) ||
				(refErr != nil && refErr.Error() != gotErr.Error()) {
				t.Fatalf("error divergence on %q: %v vs %v", q, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("AST divergence on %q:\nref: %#v\ngot: %#v", q, ref, got)
			}
		}
	}
}

// TestConcurrentScratchParse runs many parser goroutines, each with its own
// scratch, over a shared query mix. The shared state under test is the
// read-only keyword intern table; the race detector (scripts/check.sh runs
// the suite with -race) verifies no unsynchronized writes are reachable.
func TestConcurrentScratchParse(t *testing.T) {
	queries := []string{
		"sel l_returnflag, count(*) from lineitem where l_quantity < 30 group by l_returnflag",
		"SELECT Coalesce(NULLIFZERO(a), 0) FROM t WHERE d > DATE '2020-01-01'",
		"upd accounts set balance = balance - 10 where id = 7",
		"create macro m (x integer) as (select :x;)",
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sc := &Scratch{}
			for i := 0; i < 200; i++ {
				q := queries[(seed+i)%len(queries)]
				sc.Reset()
				if _, err := ParseWith(q, Teradata, &feature.Recorder{}, sc); err != nil {
					t.Errorf("parse %q: %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// FuzzScratchParseDifferential fuzzes the scratch-arena parser against the
// fresh-allocation reference: any input must produce the same AST or the
// same error from both builds.
func FuzzScratchParseDifferential(f *testing.F) {
	f.Add("SEL a FROM t WHERE x = 1")
	f.Add("select case when a then 'x' end from t")
	f.Add("ins t (1, 2); del from t;")
	f.Add("SEL 'unterminated")
	f.Add("qualify rank() over ()")
	f.Fuzz(func(t *testing.T, src string) {
		ref, refErr := Parse(src, Teradata, &feature.Recorder{})
		sc := &Scratch{}
		got, gotErr := ParseWith(src, Teradata, &feature.Recorder{}, sc)
		if (refErr == nil) != (gotErr == nil) ||
			(refErr != nil && refErr.Error() != gotErr.Error()) {
			t.Fatalf("error divergence: %v vs %v", refErr, gotErr)
		}
		if refErr == nil && !reflect.DeepEqual(ref, got) {
			t.Fatalf("AST divergence on %q", src)
		}
	})
}
