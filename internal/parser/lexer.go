// Package parser implements the dialect-aware SQL frontend: a lexer and a
// recursive-descent parser that accept either the Teradata dialect (the
// paper's SQL-A) or a strict ANSI dialect (used by the cloud-engine
// substrate to reject vendor constructs exactly like a real cloud target
// would). Simple "Translation"-class rewrites — SEL→SELECT, BT/ET,
// ZEROIFNULL — happen here, as the paper prescribes for features that exist
// only in the source language (§5.1, Table 2).
package parser

import (
	"fmt"
	"strings"

	"hyperq/internal/types"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokNumber
	tokString
	tokOp
	tokParam // :name or ?
)

type token struct {
	kind tokenKind
	text string // for idents: original spelling; for ops: the operator
	up   string // for idents: uppercase form, computed once at lex time
	pos  int    // byte offset for error reporting
}

type lexer struct {
	src    string
	pos    int
	tokens []token
	sc     *Scratch
}

// lex tokenizes src fully; it returns an error with position context on any
// invalid input. With a scratch the token slice is reused across requests
// and identifier uppercase forms intern through the session tables.
func lex(src string, sc *Scratch) ([]token, error) {
	l := &lexer{src: src, sc: sc}
	if sc != nil {
		l.tokens = sc.toks[:0]
		defer func() { sc.toks = l.tokens }()
	}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case c == '?':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokParam, text: "", pos: start})
		case c == ':':
			l.pos++
			if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
				s := l.pos
				for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
					l.pos++
				}
				l.tokens = append(l.tokens, token{kind: tokParam, text: l.src[s:l.pos], pos: start})
			} else {
				return nil, fmt.Errorf("parser: stray ':' at offset %d", start)
			}
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	l.tokens = append(l.tokens, token{kind: tokIdent, text: text, up: upperIdent(text, l.sc), pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// Do not swallow ".." or a trailing "."
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))):
			seenExp = true
			l.pos++
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
		default:
			l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
			return
		}
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokQuotedIdent, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated quoted identifier at offset %d", start)
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true, "**": true,
}

func (l *lexer) lexOp() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			return two, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '<', '>', '=', '(', ')', ',', '.', ';', '%':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
}

// numberDatum converts a numeric literal to a datum: integers stay integral
// (INT or BIGINT by range), a decimal point yields a DECIMAL with the written
// scale, an exponent yields FLOAT.
func numberDatum(text string) (types.Datum, error) {
	if strings.ContainsAny(text, "eE") {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return types.Datum{}, fmt.Errorf("parser: bad number %q", text)
		}
		return types.NewFloat(f), nil
	}
	if i := strings.IndexByte(text, '.'); i >= 0 {
		whole, frac := text[:i], text[i+1:]
		scale := len(frac)
		if scale > 12 {
			frac = frac[:12]
			scale = 12
		}
		var v int64
		for _, part := range []string{whole, frac} {
			for _, c := range []byte(part) {
				if !isDigit(c) {
					return types.Datum{}, fmt.Errorf("parser: bad number %q", text)
				}
				v = v*10 + int64(c-'0')
			}
		}
		return types.NewDecimal(v, scale), nil
	}
	var v int64
	for _, c := range []byte(text) {
		if !isDigit(c) {
			return types.Datum{}, fmt.Errorf("parser: bad number %q", text)
		}
		nv := v*10 + int64(c-'0')
		if nv < v {
			return types.Datum{}, fmt.Errorf("parser: integer literal %q overflows", text)
		}
		v = nv
	}
	if v > 1<<31-1 {
		return types.NewBigInt(v), nil
	}
	return types.NewInt(v), nil
}
