package parser

import (
	"strings"
	"testing"

	"hyperq/internal/feature"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

func parseTD(t *testing.T, sql string) (sqlast.Statement, feature.Set) {
	t.Helper()
	rec := &feature.Recorder{}
	s, err := ParseOne(sql, Teradata, rec)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return s, rec.Set()
}

func selectCore(t *testing.T, s sqlast.Statement) *sqlast.SelectCore {
	t.Helper()
	sel, ok := s.(*sqlast.SelectStmt)
	if !ok {
		t.Fatalf("not a select: %T", s)
	}
	core, ok := sel.Query.Body.(*sqlast.SelectCore)
	if !ok {
		t.Fatalf("body is %T", sel.Query.Body)
	}
	return core
}

// --- lexer ---------------------------------------------------------------

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a1, 'it''s', 1.5, \"Quoted Id\" -- comment\n FROM t /* block */ ;", nil)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{tokIdent, tokIdent, tokOp, tokString, tokOp, tokNumber, tokOp, tokQuotedIdent, tokIdent, tokIdent, tokOp, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d kind = %v, want %v (%+v)", i, kinds[i], want[i], toks[i])
		}
	}
	if toks[3].text != "it's" {
		t.Errorf("string literal = %q", toks[3].text)
	}
	if toks[7].text != "Quoted Id" {
		t.Errorf("quoted ident = %q", toks[7].text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a @ b", "a : b"} {
		if _, err := lex(src, nil); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestNumberDatum(t *testing.T) {
	d, err := numberDatum("42")
	if err != nil || d.K != types.KindInt || d.I != 42 {
		t.Errorf("42 -> %v %v", d, err)
	}
	d, _ = numberDatum("4200000000")
	if d.K != types.KindBigInt {
		t.Errorf("big literal kind = %v", d.K)
	}
	d, _ = numberDatum("0.85")
	if d.K != types.KindDecimal || d.String() != "0.85" {
		t.Errorf("0.85 -> %v", d)
	}
	d, _ = numberDatum("1e3")
	if d.K != types.KindFloat || d.F != 1000 {
		t.Errorf("1e3 -> %v", d)
	}
}

// --- paper examples ------------------------------------------------------

// Example 1 from the paper (§2.1): SEL abbreviation, named expression
// reference, QUALIFY, and ORDER BY placed before WHERE.
const example1 = `
SEL
    PRODUCT_NAME,
    SALES AS SALES_BASE,
    SALES_BASE + 100 AS SALES_OFFSET
FROM PRODUCT
QUALIFY
    10 < SUM(SALES) OVER (PARTITION BY STORE)
ORDER BY STORE, PRODUCT_NAME
WHERE CHARS(PRODUCT_NAME) > 4`

func TestParseExample1(t *testing.T) {
	s, fs := parseTD(t, example1)
	core := selectCore(t, s)
	if len(core.Items) != 3 {
		t.Fatalf("items = %d", len(core.Items))
	}
	if core.Items[1].Alias != "SALES_BASE" {
		t.Errorf("alias = %q", core.Items[1].Alias)
	}
	if core.Where == nil || core.Qualify == nil {
		t.Fatal("WHERE/QUALIFY missing despite reordering")
	}
	sel := s.(*sqlast.SelectStmt)
	if len(sel.Query.OrderBy) != 2 {
		t.Fatalf("order by = %d items", len(sel.Query.OrderBy))
	}
	// CHARS was normalized to CHAR_LENGTH.
	cmp, ok := core.Where.(*sqlast.BinExpr)
	if !ok || cmp.Op != sqlast.BinGT {
		t.Fatalf("where = %T", core.Where)
	}
	fc, ok := cmp.L.(*sqlast.FuncCall)
	if !ok || fc.Name != "CHAR_LENGTH" {
		t.Fatalf("CHARS not normalized: %#v", cmp.L)
	}
	for _, want := range []feature.ID{feature.SelAbbrev, feature.Qualify, feature.CharsFunc} {
		if !fs.Has(want) {
			t.Errorf("feature %v not recorded", feature.Lookup(want).Name)
		}
	}
}

// Example 2 from the paper (§5): date-int comparison, vector subquery,
// QUALIFY with the Teradata RANK(expr DESC) form.
const example2 = `
SEL *
FROM SALES
WHERE
  SALES_DATE > 1140101
  AND (AMOUNT, AMOUNT * 0.85) >
      ANY (SEL GROSS, NET FROM SALES_HISTORY)
QUALIFY RANK(AMOUNT DESC) <= 10`

func TestParseExample2(t *testing.T) {
	s, fs := parseTD(t, example2)
	core := selectCore(t, s)
	if _, ok := core.Items[0].Expr.(*sqlast.Star); !ok {
		t.Fatal("expected star select")
	}
	and, ok := core.Where.(*sqlast.BinExpr)
	if !ok || and.Op != sqlast.BinAnd {
		t.Fatalf("where = %#v", core.Where)
	}
	q, ok := and.R.(*sqlast.QuantifiedCmp)
	if !ok || q.Quant != sqlast.QuantAny || q.Op != sqlast.BinGT {
		t.Fatalf("vector subquery = %#v", and.R)
	}
	if len(q.Left) != 2 {
		t.Fatalf("vector arity = %d", len(q.Left))
	}
	qual, ok := core.Qualify.(*sqlast.BinExpr)
	if !ok || qual.Op != sqlast.BinLE {
		t.Fatalf("qualify = %#v", core.Qualify)
	}
	wf, ok := qual.L.(*sqlast.WindowFunc)
	if !ok || !wf.TdForm || wf.Func.Name != "RANK" {
		t.Fatalf("rank form = %#v", qual.L)
	}
	if len(wf.Over.OrderBy) != 1 || !wf.Over.OrderBy[0].Desc {
		t.Fatalf("rank order = %#v", wf.Over.OrderBy)
	}
	for _, want := range []feature.ID{feature.SelAbbrev, feature.Qualify, feature.TdRank, feature.VectorSubquery} {
		if !fs.Has(want) {
			t.Errorf("feature %v not recorded", feature.Lookup(want).Name)
		}
	}
}

// Example 4 from the paper (§6): recursive query.
const example4 = `
WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS
(
    SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
  UNION ALL
    SELECT EMP.EMPNO, EMP.MGRNO
    FROM EMP, REPORTS
    WHERE REPORTS.EMPNO = EMP.MGRNO
)
SELECT EMPNO FROM REPORTS ORDER BY EMPNO`

func TestParseExample4(t *testing.T) {
	s, fs := parseTD(t, example4)
	sel := s.(*sqlast.SelectStmt)
	if sel.Query.With == nil || !sel.Query.With.Recursive {
		t.Fatal("recursive WITH missing")
	}
	cte := sel.Query.With.CTEs[0]
	if cte.Name != "REPORTS" || len(cte.Columns) != 2 {
		t.Fatalf("cte = %+v", cte)
	}
	if _, ok := cte.Query.Body.(*sqlast.SetOpBody); !ok {
		t.Fatalf("cte body = %T", cte.Query.Body)
	}
	if !fs.Has(feature.RecursiveQuery) {
		t.Error("RecursiveQuery not recorded")
	}
}

// --- dialect enforcement -------------------------------------------------

func TestANSIRejectsVendorConstructs(t *testing.T) {
	vendorOnly := []string{
		"SEL 1",
		"SELECT 1 FROM t QUALIFY RANK() OVER (ORDER BY a) = 1",
		"SELECT TOP 5 a FROM t",
		"BT",
		"ET",
		"EXEC m",
		"HELP SESSION",
		"COLLECT STATISTICS ON t",
		"CREATE MACRO m AS (SEL 1;)",
		"CREATE SET TABLE t (a INT)",
		"CREATE VOLATILE TABLE t (a INT)",
		"SELECT CHARS(a) FROM t",
		"SELECT a FROM t ORDER BY a WHERE a > 1",
		"INS t (1,2)",
		"DEL FROM t",
		"UPD t SET a = 1",
	}
	for _, sql := range vendorOnly {
		if _, err := Parse(sql, ANSI, nil); err == nil {
			t.Errorf("ANSI dialect accepted vendor construct: %s", sql)
		}
		if _, err := Parse(sql, Teradata, nil); err != nil {
			t.Errorf("Teradata dialect rejected: %s: %v", sql, err)
		}
	}
}

func TestANSIAcceptsStandardSQL(t *testing.T) {
	std := []string{
		"SELECT a, b FROM t WHERE a > 1 GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a",
		"SELECT * FROM t1 JOIN t2 ON t1.a = t2.a LEFT JOIN t3 ON t2.b = t3.b",
		"SELECT RANK() OVER (PARTITION BY a ORDER BY b DESC) FROM t",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1 WHERE b = 2",
		"DELETE FROM t WHERE a IS NOT NULL",
		"SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END FROM t",
		"SELECT CAST(a AS DECIMAL(10,2)) FROM t",
		"SELECT EXTRACT(YEAR FROM d) FROM t",
		"SELECT * FROM (SELECT a FROM t) AS sub WHERE a IN (SELECT a FROM u)",
		"SELECT a FROM t UNION ALL SELECT b FROM u INTERSECT SELECT c FROM v",
		"WITH c AS (SELECT 1 AS x) SELECT x FROM c",
		"SELECT SUM(a) OVER (PARTITION BY b ORDER BY c ROWS UNBOUNDED PRECEDING) FROM t",
		"SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%'",
		"CREATE TABLE t (a INT NOT NULL, b VARCHAR(20) DEFAULT 'x')",
		"DROP TABLE IF EXISTS t",
	}
	for _, sql := range std {
		if _, err := Parse(sql, ANSI, nil); err != nil {
			t.Errorf("ANSI dialect rejected standard SQL %q: %v", sql, err)
		}
	}
}

// --- specific constructs -------------------------------------------------

func TestInsertForms(t *testing.T) {
	s, _ := parseTD(t, "INSERT INTO t (a, b) VALUES (1, 'x')")
	ins := s.(*sqlast.InsertStmt)
	if len(ins.Columns) != 2 || len(ins.Rows) != 1 {
		t.Fatalf("insert = %+v", ins)
	}
	s, fs := parseTD(t, "INS t (1, 2)")
	ins = s.(*sqlast.InsertStmt)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 || len(ins.Rows[0]) != 2 {
		t.Fatalf("abbreviated insert = %+v", ins)
	}
	if !fs.Has(feature.SelAbbrev) {
		t.Error("INS abbreviation not recorded")
	}
	s, _ = parseTD(t, "INSERT INTO t SELECT a FROM u")
	ins = s.(*sqlast.InsertStmt)
	if ins.Query == nil {
		t.Fatal("insert-select missing query")
	}
}

func TestMergeParse(t *testing.T) {
	s, fs := parseTD(t, `
	  MERGE INTO tgt USING src ON tgt.k = src.k
	  WHEN MATCHED THEN UPDATE SET v = src.v
	  WHEN NOT MATCHED THEN INSERT (k, v) VALUES (src.k, src.v)`)
	m := s.(*sqlast.MergeStmt)
	if m.Target != "tgt" || len(m.Matched) != 1 || !m.HasNotMatched || len(m.NotMatchedCols) != 2 {
		t.Fatalf("merge = %+v", m)
	}
	if !fs.Has(feature.Merge) {
		t.Error("Merge feature not recorded")
	}
	if _, err := Parse("MERGE INTO t USING s ON t.a = s.a", Teradata, nil); err == nil {
		t.Error("MERGE without WHEN accepted")
	}
}

func TestCreateMacroAndExec(t *testing.T) {
	s, fs := parseTD(t, "CREATE MACRO rep (mon INTEGER, lim INTEGER) AS (SEL * FROM sales WHERE m = :mon QUALIFY RANK(v DESC) <= :lim;)")
	m := s.(*sqlast.CreateMacroStmt)
	if m.Name != "rep" || len(m.Params) != 2 {
		t.Fatalf("macro = %+v", m)
	}
	if !strings.Contains(m.Body, "QUALIFY RANK(v DESC) <= :lim") {
		t.Errorf("body = %q", m.Body)
	}
	if !fs.Has(feature.Macro) {
		t.Error("Macro feature not recorded")
	}
	s, fs = parseTD(t, "EXEC rep(7, 10)")
	e := s.(*sqlast.ExecStmt)
	if e.Macro != "rep" || len(e.Args) != 2 {
		t.Fatalf("exec = %+v", e)
	}
	if !fs.Has(feature.Macro) {
		t.Error("Macro feature not recorded for EXEC")
	}
}

func TestReplaceMacro(t *testing.T) {
	s, _ := parseTD(t, "REPLACE MACRO m AS (SEL 1;)")
	if !s.(*sqlast.CreateMacroStmt).Replace {
		t.Error("REPLACE flag not set")
	}
}

func TestCreateTableVariants(t *testing.T) {
	s, fs := parseTD(t, `CREATE SET TABLE emp (
	    id INTEGER NOT NULL,
	    name VARCHAR(30) NOT CASESPECIFIC,
	    dept INTEGER DEFAULT 10,
	    span PERIOD(DATE)
	  ) PRIMARY INDEX (id)`)
	ct := s.(*sqlast.CreateTableStmt)
	if !ct.Set || len(ct.Columns) != 4 || len(ct.PrimaryIndex) != 1 {
		t.Fatalf("create table = %+v", ct)
	}
	if !ct.Columns[1].CaseInsensitive {
		t.Error("NOT CASESPECIFIC lost")
	}
	if ct.Columns[3].Type.Name != "PERIOD(DATE)" {
		t.Errorf("period type = %+v", ct.Columns[3].Type)
	}
	if !fs.Has(feature.SetTable) {
		t.Error("SetTable feature not recorded")
	}

	s, fs = parseTD(t, "CREATE GLOBAL TEMPORARY TABLE gtt (a INT) ON COMMIT PRESERVE ROWS")
	ct = s.(*sqlast.CreateTableStmt)
	if !ct.GlobalTemporary || !ct.OnCommitPreserve {
		t.Fatalf("gtt = %+v", ct)
	}
	if !fs.Has(feature.GlobalTempTable) {
		t.Error("GlobalTempTable feature not recorded")
	}

	s, _ = parseTD(t, "CREATE TABLE ctas AS (SEL a FROM t) WITH DATA")
	ct = s.(*sqlast.CreateTableStmt)
	if ct.AsQuery == nil || !ct.WithData {
		t.Fatalf("ctas = %+v", ct)
	}
}

func TestGroupingSets(t *testing.T) {
	s, fs := parseTD(t, "SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP(a, b)")
	core := selectCore(t, s)
	if len(core.GroupingSets) != 3 { // (a,b), (a), ()
		t.Fatalf("rollup sets = %v", core.GroupingSets)
	}
	if !fs.Has(feature.GroupingSets) {
		t.Error("GroupingSets not recorded")
	}
	s, _ = parseTD(t, "SELECT a, b, SUM(c) FROM t GROUP BY CUBE(a, b)")
	core = selectCore(t, s)
	if len(core.GroupingSets) != 4 {
		t.Fatalf("cube sets = %v", core.GroupingSets)
	}
	s, _ = parseTD(t, "SELECT a, b, SUM(c) FROM t GROUP BY GROUPING SETS ((a), (a, b), ())")
	core = selectCore(t, s)
	if len(core.GroupingSets) != 3 || len(core.GroupingSets[2]) != 0 {
		t.Fatalf("grouping sets = %v", core.GroupingSets)
	}
}

func TestHelpAndCollect(t *testing.T) {
	s, fs := parseTD(t, "HELP SESSION")
	if s.(*sqlast.HelpStmt).What != "SESSION" || !fs.Has(feature.HelpSession) {
		t.Error("HELP SESSION mis-parsed")
	}
	s, fs = parseTD(t, "HELP TABLE emp")
	h := s.(*sqlast.HelpStmt)
	if h.What != "TABLE" || h.Name != "emp" || !fs.Has(feature.HelpTable) {
		t.Error("HELP TABLE mis-parsed")
	}
	s, fs = parseTD(t, "COLLECT STATISTICS ON emp COLUMN (id, name)")
	c := s.(*sqlast.CollectStatsStmt)
	if c.Table != "emp" || len(c.Columns) != 2 || !fs.Has(feature.CollectStats) {
		t.Error("COLLECT STATISTICS mis-parsed")
	}
}

func TestBtEt(t *testing.T) {
	s, fs := parseTD(t, "BT")
	if s.(*sqlast.TxnStmt).Kind != "BEGIN" || !fs.Has(feature.BtEt) {
		t.Error("BT mis-parsed")
	}
	s, _ = parseTD(t, "ET")
	if s.(*sqlast.TxnStmt).Kind != "COMMIT" {
		t.Error("ET mis-parsed")
	}
}

func TestMultiStatementScript(t *testing.T) {
	stmts, err := Parse("SEL 1; SEL 2; DEL FROM t ALL;", Teradata, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	if !stmts[2].(*sqlast.DeleteStmt).All {
		t.Error("DELETE ALL flag lost")
	}
}

func TestTeradataBuiltinRewrites(t *testing.T) {
	s, fs := parseTD(t, "SEL ZEROIFNULL(a), NULLIFZERO(b), INDEX(name, 'x'), ADD_MONTHS(d, 3), a MOD 7 FROM t")
	core := selectCore(t, s)
	if fc := core.Items[0].Expr.(*sqlast.FuncCall); fc.Name != "COALESCE" || len(fc.Args) != 2 {
		t.Errorf("ZEROIFNULL -> %+v", fc)
	}
	if fc := core.Items[1].Expr.(*sqlast.FuncCall); fc.Name != "NULLIF" {
		t.Errorf("NULLIFZERO -> %+v", fc)
	}
	if fc := core.Items[2].Expr.(*sqlast.FuncCall); fc.Name != "POSITION" {
		t.Errorf("INDEX -> %+v", fc)
	}
	for _, want := range []feature.ID{feature.ZeroIfNull, feature.NullIfZero, feature.IndexFunc, feature.AddMonths, feature.ModOperator} {
		if !fs.Has(want) {
			t.Errorf("feature %s not recorded", feature.Lookup(want).Name)
		}
	}
}

func TestTopClause(t *testing.T) {
	s, _ := parseTD(t, "SEL TOP 10 WITH TIES a FROM t ORDER BY a")
	core := selectCore(t, s)
	if core.Top == nil || core.Top.N != 10 || !core.Top.WithTies {
		t.Fatalf("top = %+v", core.Top)
	}
}

func TestDerivedTableColumnAliases(t *testing.T) {
	s, _ := parseTD(t, "SELECT x FROM (SELECT a FROM t) AS d (x)")
	core := selectCore(t, s)
	dt := core.From[0].(*sqlast.DerivedTable)
	if dt.Alias != "d" || len(dt.ColAliases) != 1 || dt.ColAliases[0] != "x" {
		t.Fatalf("derived = %+v", dt)
	}
	if _, err := Parse("SELECT x FROM (SELECT a FROM t)", Teradata, nil); err == nil {
		t.Error("derived table without alias accepted")
	}
}

func TestSubqueriesInExpressions(t *testing.T) {
	s, _ := parseTD(t, "SELECT (SELECT MAX(a) FROM u) AS m FROM t WHERE a = ANY (SELECT b FROM v)")
	core := selectCore(t, s)
	if _, ok := core.Items[0].Expr.(*sqlast.Subquery); !ok {
		t.Fatalf("scalar subquery = %T", core.Items[0].Expr)
	}
	q, ok := core.Where.(*sqlast.QuantifiedCmp)
	if !ok || len(q.Left) != 1 {
		t.Fatalf("where = %#v", core.Where)
	}
}

func TestDateLiteralsAndIntervals(t *testing.T) {
	s, _ := parseTD(t, "SELECT DATE '2014-01-01', TIMESTAMP '2014-01-01 10:00:00', d + INTERVAL '3' DAY FROM t")
	core := selectCore(t, s)
	c := core.Items[0].Expr.(*sqlast.Const)
	if c.Val.K != types.KindDate {
		t.Errorf("date literal kind = %v", c.Val.K)
	}
	bin := core.Items[2].Expr.(*sqlast.BinExpr)
	if _, ok := bin.R.(*sqlast.IntervalExpr); !ok {
		t.Errorf("interval = %#v", bin.R)
	}
}

func TestBareDateKeywordTeradata(t *testing.T) {
	s, _ := parseTD(t, "SELECT DATE FROM t")
	core := selectCore(t, s)
	fc, ok := core.Items[0].Expr.(*sqlast.FuncCall)
	if !ok || fc.Name != "CURRENT_DATE" {
		t.Fatalf("bare DATE = %#v", core.Items[0].Expr)
	}
}

func TestParamParsing(t *testing.T) {
	e, err := ParseExprString(":mon + 1", Teradata)
	if err != nil {
		t.Fatal(err)
	}
	bin := e.(*sqlast.BinExpr)
	if p, ok := bin.L.(*sqlast.Param); !ok || p.Name != "mon" {
		t.Fatalf("param = %#v", bin.L)
	}
}

func TestViewCapturesSQL(t *testing.T) {
	s, _ := parseTD(t, "CREATE VIEW v (a) AS SELECT x FROM t WHERE x > 1")
	v := s.(*sqlast.CreateViewStmt)
	if v.SQL != "SELECT x FROM t WHERE x > 1" {
		t.Errorf("view SQL = %q", v.SQL)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a a b FROM t",
		"FROBNICATE x",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t ORDER BY a NULLS",
		"INSERT INTO t (a, b)",
		"SELECT CASE END FROM t",
		"SELECT a FROM t WHERE a IN ()",
	}
	for _, sql := range bad {
		if _, err := Parse(sql, Teradata, nil); err == nil {
			t.Errorf("accepted invalid SQL: %q", sql)
		}
	}
}

func TestErrorsIncludeLineInfo(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t\nWHERE", Teradata, nil)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestSetOperationPrecedence(t *testing.T) {
	s, _ := parseTD(t, "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v")
	so := s.(*sqlast.SelectStmt).Query.Body.(*sqlast.SetOpBody)
	if so.Op != sqlast.SetUnion {
		t.Fatalf("top op = %v", so.Op)
	}
	if inner, ok := so.R.(*sqlast.SetOpBody); !ok || inner.Op != sqlast.SetIntersect {
		t.Fatalf("INTERSECT did not bind tighter: %#v", so.R)
	}
}

func TestMinusIsExcept(t *testing.T) {
	s, _ := parseTD(t, "SELECT a FROM t MINUS SELECT b FROM u")
	so := s.(*sqlast.SelectStmt).Query.Body.(*sqlast.SetOpBody)
	if so.Op != sqlast.SetExcept {
		t.Fatalf("MINUS op = %v", so.Op)
	}
}

func TestWalkExprAndContainsWindow(t *testing.T) {
	e, err := ParseExprString("SUM(a) OVER (PARTITION BY b) + 1", Teradata)
	if err != nil {
		t.Fatal(err)
	}
	if !sqlast.ContainsWindowFunc(e) {
		t.Error("window function not detected")
	}
	e2, _ := ParseExprString("a + b * 2", Teradata)
	if sqlast.ContainsWindowFunc(e2) {
		t.Error("false window detection")
	}
	n := 0
	sqlast.WalkExpr(e2, func(sqlast.Expr) bool { n++; return true })
	if n != 5 { // (+), a, (*), b, 2
		t.Errorf("walked %d nodes", n)
	}
}