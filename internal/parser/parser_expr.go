package parser

import (
	"strings"

	"hyperq/internal/feature"
	"hyperq/internal/sqlast"
	"hyperq/internal/types"
)

// Expression grammar, lowest to highest precedence:
//
//	OR > AND > NOT > comparison/IN/LIKE/BETWEEN/IS > additive(+,-,||)
//	> multiplicative(*,/,MOD) > unary(-,+) > primary

func (p *Parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = p.newBinExpr(sqlast.BinOr, l, r)
	}
	return l, nil
}

func (p *Parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = p.newBinExpr(sqlast.BinAnd, l, r)
	}
	return l, nil
}

func (p *Parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKW("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: sqlast.UnaryNot, X: x}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]sqlast.BinOp{
	"=": sqlast.BinEQ, "<>": sqlast.BinNE, "!=": sqlast.BinNE,
	"<": sqlast.BinLT, "<=": sqlast.BinLE, ">": sqlast.BinGT, ">=": sqlast.BinGE,
}

func (p *Parser) parseComparison() (sqlast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates.
	for {
		if p.cur().kind == tokOp {
			if op, ok := compOps[p.cur().text]; ok {
				p.i++
				// Quantified subquery?
				if kw := p.peekKW(); kw == "ANY" || kw == "ALL" || kw == "SOME" {
					quant := sqlast.QuantAny
					if kw == "ALL" {
						quant = sqlast.QuantAll
					}
					p.i++
					if err := p.expectOp("("); err != nil {
						return nil, err
					}
					q, err := p.parseQueryExpr()
					if err != nil {
						return nil, err
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					left := tupleItems(l)
					if len(left) > 1 {
						p.rec.Record(feature.VectorSubquery)
					}
					l = &sqlast.QuantifiedCmp{Op: op, Quant: quant, Left: left, Query: q}
					continue
				}
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = p.newBinExpr(op, l, r)
				continue
			}
		}
		kw := p.peekKW()
		not := false
		if kw == "NOT" {
			switch p.peekKWAt(1) {
			case "IN", "LIKE", "BETWEEN":
				p.i++
				not = true
				kw = p.peekKW()
			default:
				return l, nil
			}
		}
		switch kw {
		case "IS":
			p.i++
			isNot := p.acceptKW("NOT")
			if err := p.expectKW("NULL"); err != nil {
				return nil, err
			}
			op := sqlast.UnaryIsNull
			if isNot {
				op = sqlast.UnaryIsNotNull
			}
			l = &sqlast.UnaryExpr{Op: op, X: l}
		case "IN":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			in := &sqlast.InExpr{Not: not, Left: tupleItems(l)}
			if len(in.Left) > 1 {
				p.rec.Record(feature.VectorSubquery)
			}
			if kw := p.peekKW(); kw == "SELECT" || kw == "SEL" || kw == "WITH" {
				q, err := p.parseQueryExpr()
				if err != nil {
					return nil, err
				}
				in.Query = q
			} else {
				list, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				in.List = list
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = in
		case "LIKE":
			p.i++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := sqlast.BinLike
			if not {
				op = sqlast.BinNotLike
			}
			l = p.newBinExpr(op, l, r)
		case "BETWEEN":
			p.i++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKW("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			// Desugar to (l >= lo AND l <= hi), negated if NOT BETWEEN.
			rng := &sqlast.BinExpr{
				Op: sqlast.BinAnd,
				L:  p.newBinExpr(sqlast.BinGE, l, lo),
				R:  p.newBinExpr(sqlast.BinLE, l, hi),
			}
			if not {
				l = &sqlast.UnaryExpr{Op: sqlast.UnaryNot, X: rng}
			} else {
				l = rng
			}
		default:
			return l, nil
		}
	}
}

// tupleItems flattens a parenthesized row constructor into its items.
func tupleItems(e sqlast.Expr) []sqlast.Expr {
	if t, ok := e.(*sqlast.Tuple); ok {
		return t.Items
	}
	return []sqlast.Expr{e}
}

func (p *Parser) parseAdditive() (sqlast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinOp
		switch {
		case p.acceptOp("+"):
			op = sqlast.BinAdd
		case p.acceptOp("-"):
			op = sqlast.BinSub
		case p.acceptOp("||"):
			op = sqlast.BinConcat
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = p.newBinExpr(op, l, r)
	}
}

func (p *Parser) parseMultiplicative() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op sqlast.BinOp
		switch {
		case p.acceptOp("*"):
			op = sqlast.BinMul
		case p.acceptOp("/"):
			op = sqlast.BinDiv
		case p.acceptOp("%"):
			op = sqlast.BinMod
		case p.peekKW() == "MOD":
			if p.dialect == Teradata {
				p.rec.Record(feature.ModOperator)
			}
			p.i++
			op = sqlast.BinMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = p.newBinExpr(op, l, r)
	}
}

func (p *Parser) parseUnary() (sqlast.Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: sqlast.UnaryNeg, X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (sqlast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		d, err := numberDatum(t.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return p.newConst(sqlast.Const{Val: d}), nil
	case tokString:
		p.i++
		return p.newConst(sqlast.Const{Val: types.NewString(t.text)}), nil
	case tokParam:
		p.i++
		if t.text == "" {
			return &sqlast.Param{Pos: p.countPositionalParams()}, nil
		}
		return &sqlast.Param{Name: t.text}, nil
	case tokQuotedIdent:
		return p.parseIdentChain()
	case tokOp:
		if t.text == "(" {
			return p.parseParenPrimary()
		}
	case tokIdent:
		return p.parseKeywordPrimary()
	}
	return nil, p.errorf("expected expression")
}

// countPositionalParams assigns 1-based positions in appearance order.
func (p *Parser) countPositionalParams() int {
	n := 0
	for j := 0; j <= p.i-1; j++ {
		if p.toks[j].kind == tokParam && p.toks[j].text == "" {
			n++
		}
	}
	return n
}

func (p *Parser) parseParenPrimary() (sqlast.Expr, error) {
	// "(" already current.
	if kw := p.peekKWAt(1); kw == "SELECT" || kw == "SEL" || kw == "WITH" {
		p.i++
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.Subquery{Query: q}, nil
	}
	p.i++
	items, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &sqlast.Tuple{Items: items}, nil
}

// parseKeywordPrimary handles identifiers that are keywords introducing a
// special form, then falls back to plain identifier / function call parsing.
func (p *Parser) parseKeywordPrimary() (sqlast.Expr, error) {
	switch p.peekKW() {
	case "NULL":
		p.i++
		return p.newConst(sqlast.Const{Val: types.NewNull(types.KindNull)}), nil
	case "TRUE":
		p.i++
		return p.newConst(sqlast.Const{Val: types.NewBool(true)}), nil
	case "FALSE":
		p.i++
		return p.newConst(sqlast.Const{Val: types.NewBool(false)}), nil
	case "DATE":
		p.i++
		if p.cur().kind == tokString {
			d, err := types.ParseDateLiteral(p.cur().text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			p.i++
			return p.newConst(sqlast.Const{Val: d}), nil
		}
		// Teradata bare DATE means the current date.
		if p.dialect != Teradata {
			return nil, p.errorf("expected date literal after DATE")
		}
		return &sqlast.FuncCall{Name: "CURRENT_DATE"}, nil
	case "TIME":
		if p.toks[p.i+1].kind == tokString {
			p.i++
			d, err := types.ParseTimeLiteral(p.cur().text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			p.i++
			return p.newConst(sqlast.Const{Val: d}), nil
		}
	case "TIMESTAMP":
		if p.toks[p.i+1].kind == tokString {
			p.i++
			d, err := types.ParseTimestampLiteral(p.cur().text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			p.i++
			return p.newConst(sqlast.Const{Val: d}), nil
		}
	case "INTERVAL":
		p.i++
		val, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		unit := p.peekKW()
		switch unit {
		case "DAY", "HOUR", "MINUTE", "SECOND", "MONTH", "YEAR":
			p.i++
		default:
			return nil, p.errorf("expected interval unit")
		}
		return &sqlast.IntervalExpr{Value: val, Unit: unit}, nil
	case "CASE":
		return p.parseCase()
	case "CAST":
		return p.parseCast()
	case "EXTRACT":
		return p.parseExtract()
	case "EXISTS":
		p.i++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExistsExpr{Query: q}, nil
	case "DATEADD":
		return p.parseDateAdd()
	case "SUBSTRING":
		return p.parseSubstring()
	case "POSITION":
		return p.parsePosition()
	case "TRIM":
		return p.parseTrim()
	case "CURRENT_DATE", "CURRENT_TIMESTAMP", "CURRENT_TIME", "USER", "SESSION_USER":
		name := p.peekKW()
		p.i++
		return &sqlast.FuncCall{Name: name}, nil
	}
	return p.parseIdentChain()
}

func (p *Parser) parseCase() (sqlast.Expr, error) {
	p.i++ // CASE
	c := &sqlast.CaseExpr{}
	if p.peekKW() != "WHEN" {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKW("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKW("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKW("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKW("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (sqlast.Expr, error) {
	p.i++ // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKW("AS"); err != nil {
		return nil, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CastExpr{X: x, To: tn}, nil
}

// parseTypeName reads NAME [ ( n [, m] ) ], plus PERIOD(DATE|TIMESTAMP) and
// DOUBLE PRECISION.
func (p *Parser) parseTypeName() (sqlast.TypeName, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return sqlast.TypeName{}, p.errorf("expected type name")
	}
	name := t.up
	p.i++
	if name == "DOUBLE" && p.acceptKW("PRECISION") {
		return sqlast.TypeName{Name: "DOUBLE"}, nil
	}
	if name == "PERIOD" {
		if err := p.expectOp("("); err != nil {
			return sqlast.TypeName{}, err
		}
		elem := p.peekKW()
		if elem != "DATE" && elem != "TIMESTAMP" {
			return sqlast.TypeName{}, p.errorf("expected DATE or TIMESTAMP in PERIOD")
		}
		p.i++
		if err := p.expectOp(")"); err != nil {
			return sqlast.TypeName{}, err
		}
		return sqlast.TypeName{Name: "PERIOD(" + elem + ")"}, nil
	}
	tn := sqlast.TypeName{Name: name}
	if p.cur().kind == tokOp && p.cur().text == "(" {
		p.i++
		for {
			n := p.cur()
			if n.kind != tokNumber {
				return sqlast.TypeName{}, p.errorf("expected number in type arguments")
			}
			d, err := numberDatum(n.text)
			if err != nil {
				return sqlast.TypeName{}, p.errorf("%v", err)
			}
			tn.Args = append(tn.Args, int(d.I))
			p.i++
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return sqlast.TypeName{}, err
		}
	}
	return tn, nil
}

func (p *Parser) parseExtract() (sqlast.Expr, error) {
	p.i++ // EXTRACT
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	field := p.peekKW()
	if _, ok := types.ParseExtractField(field); !ok {
		return nil, p.errorf("invalid EXTRACT field")
	}
	p.i++
	if err := p.expectKW("FROM"); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.ExtractExpr{Field: field, X: x}, nil
}

// parseSubstring accepts both SUBSTRING(x FROM a [FOR b]) and
// SUBSTRING(x, a [, b]), normalizing to the canonical SUBSTR call.
func (p *Parser) parseSubstring() (sqlast.Expr, error) {
	p.i++ // SUBSTRING
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	args := []sqlast.Expr{x}
	if p.acceptKW("FROM") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.acceptKW("FOR") {
			b, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, b)
		}
	} else {
		for p.acceptOp(",") {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.FuncCall{Name: "SUBSTR", Args: args}, nil
}

// parseDateAdd parses DATEADD(unit, n, d) with a bare unit keyword,
// normalizing the unit to a string constant argument.
func (p *Parser) parseDateAdd() (sqlast.Expr, error) {
	p.i++ // DATEADD
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	unit := p.peekKW()
	switch unit {
	case "DAY", "MONTH", "YEAR":
		p.i++
	default:
		return nil, p.errorf("expected DAY, MONTH or YEAR unit in DATEADD")
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(","); err != nil {
		return nil, err
	}
	d, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.FuncCall{Name: "DATEADD", Args: []sqlast.Expr{
		p.newConst(sqlast.Const{Val: types.NewString(unit)}), n, d,
	}}, nil
}

// parsePosition accepts both POSITION(a IN b) and POSITION(a, b),
// normalizing to the canonical two-argument form.
func (p *Parser) parsePosition() (sqlast.Expr, error) {
	p.i++
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	a, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if !p.acceptOp(",") {
		if err := p.expectKW("IN"); err != nil {
			return nil, err
		}
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.FuncCall{Name: "POSITION", Args: []sqlast.Expr{a, b}}, nil
}

func (p *Parser) parseTrim() (sqlast.Expr, error) {
	p.i++
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	// TRIM([LEADING|TRAILING|BOTH] [FROM] x) — only simple TRIM(x) and
	// TRIM(spec FROM x) forms.
	name := "TRIM"
	switch p.peekKW() {
	case "LEADING":
		name = "LTRIM"
		p.i++
		if err := p.expectKW("FROM"); err != nil {
			return nil, err
		}
	case "TRAILING":
		name = "RTRIM"
		p.i++
		if err := p.expectKW("FROM"); err != nil {
			return nil, err
		}
	case "BOTH":
		p.i++
		if err := p.expectKW("FROM"); err != nil {
			return nil, err
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.FuncCall{Name: name, Args: []sqlast.Expr{x}}, nil
}

// aggregateNames are functions eligible for DISTINCT and window use.
var aggregateNames = map[string]bool{
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
}

// rankLike functions admit the Teradata RANK(expr DESC) order-as-argument
// form.
var rankLike = map[string]bool{"RANK": true, "ROW_NUMBER": true, "DENSE_RANK": true}

// parseIdentChain parses ident[.ident...], a function call, or a window
// function.
func (p *Parser) parseIdentChain() (sqlast.Expr, error) {
	var parts []string
	firstUp := "" // interned uppercase of the first part when it is a bare ident
	for {
		t := p.cur()
		switch t.kind {
		case tokIdent:
			if len(parts) == 0 {
				if reservedWords[t.up] {
					return nil, p.errorf("unexpected keyword")
				}
				firstUp = t.up
			}
			parts = append(parts, t.text)
		case tokQuotedIdent:
			parts = append(parts, t.text)
		default:
			return nil, p.errorf("expected identifier")
		}
		p.i++
		if !(p.cur().kind == tokOp && p.cur().text == "." &&
			(p.toks[p.i+1].kind == tokIdent || p.toks[p.i+1].kind == tokQuotedIdent)) {
			break
		}
		p.i++
	}
	if len(parts) == 1 && p.cur().kind == tokOp && p.cur().text == "(" {
		name := firstUp
		if name == "" {
			name = strings.ToUpper(parts[0])
		}
		return p.parseFuncCall(name)
	}
	return p.newIdent(parts), nil
}

func (p *Parser) parseFuncCall(name string) (sqlast.Expr, error) {
	p.i++ // "("
	fc := &sqlast.FuncCall{Name: name}

	// Teradata order-as-argument window form: RANK(expr [ASC|DESC], ...).
	if p.dialect == Teradata && rankLike[name] {
		if td, ok, err := p.tryTdRank(name); err != nil {
			return nil, err
		} else if ok {
			return td, nil
		}
	}
	if p.acceptOp(")") {
		return p.normalizeFunc(fc)
	}
	if p.acceptOp("*") {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		fc.Star = true
		return p.normalizeFunc(fc)
	}
	if p.acceptKW("DISTINCT") {
		fc.Distinct = true
	}
	args, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	fc.Args = args
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return p.normalizeFunc(fc)
}

// tryTdRank attempts the Teradata RANK(expr [ASC|DESC]) form. It backtracks
// when the argument list is not followed by an order direction (i.e. it is
// the ANSI zero/one-argument form).
func (p *Parser) tryTdRank(name string) (sqlast.Expr, bool, error) {
	save := p.i
	if p.cur().kind == tokOp && p.cur().text == ")" {
		return nil, false, nil
	}
	var order []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			p.i = save
			return nil, false, nil
		}
		item := sqlast.OrderItem{Expr: e}
		switch {
		case p.acceptKW("DESC"):
			item.Desc = true
		case p.acceptKW("ASC"):
		default:
			// Without an explicit direction this is not the vendor form.
			p.i = save
			return nil, false, nil
		}
		order = append(order, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		p.i = save
		return nil, false, nil
	}
	p.rec.Record(feature.TdRank)
	return &sqlast.WindowFunc{
		Func:   sqlast.FuncCall{Name: name},
		Over:   sqlast.WindowSpec{OrderBy: order},
		TdForm: true,
	}, true, nil
}

// normalizeFunc applies parse-time Translation rewrites for vendor builtins
// and attaches a window specification when OVER follows.
func (p *Parser) normalizeFunc(fc *sqlast.FuncCall) (sqlast.Expr, error) {
	switch fc.Name {
	case "ZEROIFNULL":
		if len(fc.Args) != 1 {
			return nil, p.errorf("ZEROIFNULL takes one argument")
		}
		p.rec.Record(feature.ZeroIfNull)
		fc = &sqlast.FuncCall{Name: "COALESCE", Args: []sqlast.Expr{
			fc.Args[0], p.newConst(sqlast.Const{Val: types.NewInt(0)}),
		}}
	case "NULLIFZERO":
		if len(fc.Args) != 1 {
			return nil, p.errorf("NULLIFZERO takes one argument")
		}
		p.rec.Record(feature.NullIfZero)
		fc = &sqlast.FuncCall{Name: "NULLIF", Args: []sqlast.Expr{
			fc.Args[0], p.newConst(sqlast.Const{Val: types.NewInt(0)}),
		}}
	case "CHARS", "CHARACTERS":
		if p.dialect != Teradata {
			return nil, p.errorf("%s is not ANSI SQL", fc.Name)
		}
		p.rec.Record(feature.CharsFunc)
		fc = &sqlast.FuncCall{Name: "CHAR_LENGTH", Args: fc.Args}
	case "INDEX":
		if p.dialect == Teradata {
			p.rec.Record(feature.IndexFunc)
			if len(fc.Args) != 2 {
				return nil, p.errorf("INDEX takes two arguments")
			}
			// INDEX(s, sub) -> POSITION(sub, s)
			fc = &sqlast.FuncCall{Name: "POSITION", Args: []sqlast.Expr{fc.Args[1], fc.Args[0]}}
		}
	case "ADD_MONTHS":
		p.rec.Record(feature.AddMonths)
	}
	// Window specification.
	if p.peekKW() == "OVER" {
		p.i++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		spec := sqlast.WindowSpec{}
		if p.acceptKW("PARTITION") {
			if err := p.expectKW("BY"); err != nil {
				return nil, err
			}
			exprs, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			spec.PartitionBy = exprs
		}
		if p.peekKW() == "ORDER" {
			ob, err := p.parseOrderBy()
			if err != nil {
				return nil, err
			}
			spec.OrderBy = ob
		}
		if p.acceptKW("ROWS") {
			if err := p.expectKW("UNBOUNDED"); err != nil {
				return nil, err
			}
			if err := p.expectKW("PRECEDING"); err != nil {
				return nil, err
			}
			spec.RowsUnboundedPreceding = true
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.WindowFunc{Func: *fc, Over: spec}, nil
	}
	return fc, nil
}
