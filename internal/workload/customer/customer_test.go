package customer

import (
	"math"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/odbc"

	"hyperq/internal/hyperq"
)

func TestSpecShapesMatchTable1(t *testing.T) {
	w1, w2 := Workload1(), Workload2()
	if w1.Distinct != 3778 || w1.Total != 39731 {
		t.Errorf("workload 1 sizes = %d/%d", w1.Total, w1.Distinct)
	}
	if w2.Distinct != 10446 || w2.Total != 192753 {
		t.Errorf("workload 2 sizes = %d/%d", w2.Total, w2.Distinct)
	}
	// Figure 8a presence counts: 5/7/3 and 2/6/3 of 9.
	if len(w1.Translation.Features) != 5 || len(w1.Transformation.Features) != 7 || len(w1.Emulation.Features) != 3 {
		t.Error("workload 1 feature counts wrong")
	}
	if len(w2.Translation.Features) != 2 || len(w2.Transformation.Features) != 6 || len(w2.Emulation.Features) != 3 {
		t.Error("workload 2 feature counts wrong")
	}
}

func TestGenerateDeterministicAndComplete(t *testing.T) {
	spec := Workload1()
	q1 := Generate(spec)
	q2 := Generate(spec)
	if len(q1) != spec.Distinct {
		t.Fatalf("distinct = %d", len(q1))
	}
	for i := range q1 {
		if q1[i].SQL != q2[i].SQL || q1[i].Repeats != q2[i].Repeats {
			t.Fatal("generation not deterministic")
		}
	}
	if TotalOf(q1) != spec.Total {
		t.Fatalf("total = %d, want %d", TotalOf(q1), spec.Total)
	}
	for _, q := range q1 {
		if q.Repeats < 1 {
			t.Fatal("query with zero repeats")
		}
		if q.SQL == "" {
			t.Fatal("empty query")
		}
	}
}

func TestEveryPresentFeatureAppears(t *testing.T) {
	for _, spec := range []Spec{Workload1(), Workload2()} {
		qs := Generate(spec)
		seen := map[feature.ID]bool{}
		for _, q := range qs {
			if q.Class >= 0 {
				seen[q.Feature] = true
			}
		}
		for _, cs := range spec.classes() {
			for _, fw := range cs.Features {
				if !seen[fw.ID] {
					t.Errorf("%s: feature %s never generated", spec.Name, feature.Lookup(fw.ID).Name)
				}
			}
		}
	}
}

// replay runs a (down-scaled) workload through the gateway and returns the
// recovered statistics — the §7.1 experiment in miniature.
func replay(t *testing.T, spec Spec) *feature.Stats {
	t.Helper()
	eng := engine.New(dialect.CloudA())
	be := eng.NewSession()
	for _, ddl := range SchemaDDL {
		if _, err := be.ExecSQL(ddl); err != nil {
			t.Fatalf("schema: %v", err)
		}
	}
	g, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("study")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, setup := range GatewaySetup {
		if _, err := s.Run(setup); err != nil {
			t.Fatalf("gateway setup %q: %v", setup, err)
		}
	}
	stats := feature.NewStats()
	g.SetStats(stats)
	for _, q := range Generate(spec) {
		if _, err := s.Run(q.SQL); err != nil {
			t.Fatalf("%s: query %q: %v", spec.Name, q.SQL, err)
		}
	}
	return stats
}

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// The instrumented rewrite engine must recover the Figure 8 statistics from
// the generated workload.
func TestReplayRecoversFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload replay in short mode")
	}
	type expect struct {
		spec     Spec
		presence [3]float64 // Figure 8a
		queries  [3]float64 // Figure 8b
	}
	cases := []expect{
		{Workload1(), [3]float64{55.6, 77.8, 33.3}, [3]float64{1.4, 33.6, 0.2}},
		{Workload2(), [3]float64{22.2, 66.7, 33.3}, [3]float64{0.2, 4.0, 79.1}},
	}
	for _, c := range cases {
		stats := replay(t, c.spec)
		if stats.Queries() != c.spec.Distinct {
			t.Fatalf("%s: observed %d queries, want %d", c.spec.Name, stats.Queries(), c.spec.Distinct)
		}
		pres := stats.ClassPresencePct()
		qpct := stats.ClassQueryPct()
		for i, cl := range feature.Classes {
			if !within(pres[cl], c.presence[i], 0.2) {
				t.Errorf("%s %s presence = %.1f%%, want %.1f%%", c.spec.Name, cl, pres[cl], c.presence[i])
			}
			if !within(qpct[cl], c.queries[i], 0.6) {
				t.Errorf("%s %s query pct = %.1f%%, want %.1f%%", c.spec.Name, cl, qpct[cl], c.queries[i])
			}
		}
	}
}

// A fast smoke variant used in short mode: a scaled-down spec.
func TestReplaySmallSmoke(t *testing.T) {
	spec := Workload1()
	spec.Distinct = 200
	spec.Total = 1500
	stats := replay(t, spec)
	if stats.Queries() != 200 {
		t.Fatalf("queries = %d", stats.Queries())
	}
	if !stats.Present().Has(feature.Qualify) {
		t.Error("qualify missing from scaled workload")
	}
}
