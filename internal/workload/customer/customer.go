// Package customer synthesizes the two real customer workloads of the
// paper's §7.1 study (Table 1: a Health customer with 39,731 queries of
// which 3,778 are distinct, and a Telco customer with 192,753 / 10,446).
//
// The real workloads are proprietary; the paper characterizes them through
// feature statistics only. This generator is parameterized by exactly those
// statistics — which of the 27 tracked features each workload contains
// (Figure 8a) and what fraction of distinct queries each rewrite class
// affects (Figure 8b) — and emits executable query text. The experiment then
// replays the queries through the actual rewrite engine and must *recover*
// the statistics from the instrumentation, exercising the identical code
// path the paper instrumented.
package customer

import (
	"fmt"
	"math/rand"

	"hyperq/internal/feature"
)

// FeatureWeight is one feature with its share within a rewrite class.
type FeatureWeight struct {
	ID     feature.ID
	Weight float64
}

// ClassSpec parameterizes one rewrite class for a workload.
type ClassSpec struct {
	// Features present in the workload (Figure 8a numerator).
	Features []FeatureWeight
	// QueryPct is the fraction (0..1) of distinct queries affected
	// (Figure 8b).
	QueryPct float64
}

// Spec describes one customer workload.
type Spec struct {
	Name     string
	Sector   string
	Distinct int
	Total    int

	Translation    ClassSpec
	Transformation ClassSpec
	Emulation      ClassSpec

	seed int64
}

// Workload1 is Customer 1 (Health): 39,731 total queries, 3,778 distinct.
// Figure 8a: 55.6% / 77.8% / 33.3% of tracked features present; Figure 8b:
// 1.4% / 33.6% / 0.2% of distinct queries affected.
func Workload1() Spec {
	return Spec{
		Name:     "Workload 1",
		Sector:   "Health",
		Distinct: 3778,
		Total:    39731,
		Translation: ClassSpec{ // 5 of 9 features present
			Features: weights(feature.SelAbbrev, feature.CharsFunc, feature.ZeroIfNull,
				feature.NullIfZero, feature.AddMonths),
			QueryPct: 0.014,
		},
		Transformation: ClassSpec{ // 7 of 9
			Features: weights(feature.Qualify, feature.TdRank, feature.ImplicitJoin,
				feature.NamedExprRef, feature.OrdinalGroupBy, feature.DateIntCompare,
				feature.DateArith),
			QueryPct: 0.336,
		},
		Emulation: ClassSpec{ // 3 of 9
			Features: weights(feature.Macro, feature.HelpSession, feature.DmlOnView),
			QueryPct: 0.002,
		},
		seed: 1001,
	}
}

// Workload2 is Customer 2 (Telco): 192,753 total queries, 10,446 distinct.
// Figure 8a: 22.2% / 66.7% / 33.3%; Figure 8b: 0.2% / 4.0% / 79.1%. The
// emulation share is dominated by macro calls — the paper attributes it to
// the customer wrapping "a large portion of their business logic in macros".
func Workload2() Spec {
	return Spec{
		Name:     "Workload 2",
		Sector:   "Telco",
		Distinct: 10446,
		Total:    192753,
		Translation: ClassSpec{ // 2 of 9
			Features: weights(feature.SelAbbrev, feature.BtEt),
			QueryPct: 0.002,
		},
		Transformation: ClassSpec{ // 6 of 9
			Features: weights(feature.Qualify, feature.NamedExprRef, feature.OrdinalGroupBy,
				feature.DateIntCompare, feature.DateArith, feature.VectorSubquery),
			QueryPct: 0.040,
		},
		Emulation: ClassSpec{ // 3 of 9; macros dominate
			Features: []FeatureWeight{
				{feature.Macro, 0.90},
				{feature.HelpTable, 0.05},
				{feature.MultiStatement, 0.05},
			},
			QueryPct: 0.791,
		},
		seed: 2002,
	}
}

func weights(ids ...feature.ID) []FeatureWeight {
	out := make([]FeatureWeight, len(ids))
	w := 1.0 / float64(len(ids))
	for i, id := range ids {
		out[i] = FeatureWeight{ID: id, Weight: w}
	}
	return out
}

// Query is one distinct query with its repetition count in the total stream.
type Query struct {
	SQL string
	// Repeats is how many times the query appears in the full workload.
	Repeats int
	// Class is the rewrite class the query was generated for (-1 = plain).
	Class int
	// Feature is the tracked feature embedded (valid when Class >= 0).
	Feature feature.ID
}

// SchemaDDL creates the customer schema on the backend engine (ANSI
// dialect).
var SchemaDDL = []string{
	`CREATE TABLE cust_txn (
	   txn_id   INTEGER NOT NULL,
	   acct     INTEGER NOT NULL,
	   amount   DECIMAL(12,2),
	   txn_date DATE NOT NULL,
	   region   INTEGER,
	   note     VARCHAR(50))`,
	`CREATE TABLE accts (
	   acct   INTEGER NOT NULL,
	   name   VARCHAR(30) NOT NULL,
	   opened DATE NOT NULL,
	   region INTEGER)`,
	`INSERT INTO accts VALUES
	   (1, 'acme',   DATE '2010-04-01', 1),
	   (2, 'globex', DATE '2012-09-15', 2),
	   (3, 'initech',DATE '2015-01-20', 1),
	   (4, 'umbra',  DATE '2018-06-30', 3)`,
	`INSERT INTO cust_txn VALUES
	   (1, 1, 120.50, DATE '2014-02-01', 1, 'wire transfer x'),
	   (2, 1, 80.00,  DATE '2014-03-05', 1, 'card payment'),
	   (3, 2, 560.25, DATE '2014-07-19', 2, 'invoice 9912'),
	   (4, 3, NULL,   DATE '2015-02-28', 1, 'pending review'),
	   (5, 4, 13.37,  DATE '2016-11-11', 3, 'micro txn'),
	   (6, 2, 240.00, DATE '2017-05-23', 2, 'renewal')`,
}

// GatewaySetup is run through the gateway (Teradata dialect) before the
// measured replay: it provisions the objects the emulation-class queries
// depend on.
var GatewaySetup = []string{
	// The macro body is deliberately plain ANSI: the §7.1 study attributes a
	// macro call to the emulation class only, so the body must not introduce
	// features of other classes into the call's instrumentation.
	`CREATE MACRO m_report (lim INTEGER) AS (
	   SELECT acct, SUM(amount) AS total FROM cust_txn
	   WHERE acct <= :lim GROUP BY acct;)`,
	`CREATE VIEW v_upd AS SELECT txn_id, acct, amount FROM cust_txn`,
	`CREATE SET TABLE dup_guard (a INTEGER, b INTEGER)`,
}

// classes indexes the three rewrite classes of a Spec.
func (s *Spec) classes() []ClassSpec {
	return []ClassSpec{s.Translation, s.Transformation, s.Emulation}
}

// Generate emits the workload's distinct queries deterministically.
func Generate(spec Spec) []Query {
	rng := rand.New(rand.NewSource(spec.seed))
	queries := make([]Query, spec.Distinct)
	for i := range queries {
		queries[i] = Query{Class: -1}
	}
	// Assign class memberships over disjoint index ranges (the class
	// percentages sum below 1 for both workloads).
	next := 0
	for ci, cs := range spec.classes() {
		count := int(float64(spec.Distinct)*cs.QueryPct + 0.5)
		if count < len(cs.Features) {
			count = len(cs.Features) // every present feature appears at least once
		}
		for k := 0; k < count && next < len(queries); k, next = k+1, next+1 {
			queries[next].Class = ci
			queries[next].Feature = pickFeature(cs.Features, k, rng)
		}
	}
	// Shuffle membership across the index space so repetition weights are
	// uncorrelated with class.
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	// Render SQL and distribute total counts (Zipf-flavored repetition).
	weights := make([]float64, len(queries))
	var wsum float64
	for i := range queries {
		queries[i].SQL = renderQuery(&queries[i], i, rng)
		weights[i] = 1.0 / float64(i+1)
		wsum += weights[i]
	}
	remaining := spec.Total
	for i := range queries {
		n := int(float64(spec.Total) * weights[i] / wsum)
		if n < 1 {
			n = 1
		}
		queries[i].Repeats = n
		remaining -= n
	}
	// Distribute the rounding remainder over the head of the distribution.
	for i := 0; remaining > 0; i = (i + 1) % len(queries) {
		queries[i].Repeats++
		remaining--
	}
	for i := 0; remaining < 0 && i < len(queries); i++ {
		if queries[i].Repeats > 1 {
			queries[i].Repeats--
			remaining++
		}
	}
	return queries
}

// pickFeature selects a feature by weight; the first len(Features) picks are
// a round-robin so every present feature is guaranteed to appear.
func pickFeature(fw []FeatureWeight, k int, rng *rand.Rand) feature.ID {
	if k < len(fw) {
		return fw[k].ID
	}
	r := rng.Float64()
	acc := 0.0
	for _, f := range fw {
		acc += f.Weight
		if r < acc {
			return f.ID
		}
	}
	return fw[len(fw)-1].ID
}

// renderQuery emits the SQL text embedding the query's tracked feature. The
// parameter i varies literals so queries are textually distinct.
func renderQuery(q *Query, i int, rng *rand.Rand) string {
	k := 1 + i%97
	if q.Class < 0 {
		// Plain query: standard SQL only, no tracked features.
		switch i % 4 {
		case 0:
			return fmt.Sprintf("SELECT acct, amount FROM cust_txn WHERE amount > %d ORDER BY acct", k)
		case 1:
			return fmt.Sprintf("SELECT region, COUNT(*) FROM cust_txn WHERE txn_id <> %d GROUP BY region", k)
		case 2:
			return fmt.Sprintf("SELECT t.acct, a.name FROM cust_txn t JOIN accts a ON t.acct = a.acct WHERE t.txn_id > %d", k)
		default:
			return fmt.Sprintf("SELECT MAX(amount) FROM cust_txn WHERE acct IN (SELECT acct FROM accts WHERE region = %d)", 1+i%3)
		}
	}
	switch q.Feature {
	// --- translation class -------------------------------------------------
	case feature.SelAbbrev:
		return fmt.Sprintf("SEL acct FROM cust_txn WHERE txn_id > %d", k)
	case feature.BtEt:
		return "BT"
	case feature.CharsFunc:
		return fmt.Sprintf("SEL acct FROM cust_txn WHERE CHARS(note) > %d", k%20)
	case feature.ZeroIfNull:
		return fmt.Sprintf("SELECT ZEROIFNULL(amount) FROM cust_txn WHERE txn_id = %d", k)
	case feature.NullIfZero:
		return fmt.Sprintf("SELECT NULLIFZERO(region) FROM cust_txn WHERE txn_id = %d", k)
	case feature.IndexFunc:
		return fmt.Sprintf("SEL acct FROM cust_txn WHERE INDEX(note, 'x') > %d", k%3)
	case feature.AddMonths:
		return fmt.Sprintf("SELECT ADD_MONTHS(txn_date, %d) FROM cust_txn", 1+k%11)
	case feature.ModOperator:
		return fmt.Sprintf("SEL acct FROM cust_txn WHERE acct MOD %d = 0", 2+k%5)
	case feature.CollectStats:
		return "COLLECT STATISTICS ON cust_txn COLUMN (acct)"
	// --- transformation class ----------------------------------------------
	case feature.Qualify:
		return fmt.Sprintf("SELECT acct, amount FROM cust_txn QUALIFY RANK() OVER (ORDER BY amount DESC) <= %d", 1+k%9)
	case feature.TdRank:
		return fmt.Sprintf("SELECT acct, amount FROM cust_txn QUALIFY RANK(amount DESC) <= %d", 1+k%9)
	case feature.ImplicitJoin:
		return fmt.Sprintf("SELECT cust_txn.acct FROM cust_txn WHERE accts.acct = cust_txn.acct AND accts.region = %d", 1+k%3)
	case feature.NamedExprRef:
		return fmt.Sprintf("SELECT amount * 2 AS dbl FROM cust_txn WHERE dbl > %d", k)
	case feature.OrdinalGroupBy:
		return fmt.Sprintf("SELECT region, SUM(amount) FROM cust_txn WHERE txn_id <> %d GROUP BY 1", k)
	case feature.GroupingSets:
		return "SELECT region, SUM(amount) FROM cust_txn GROUP BY ROLLUP(region)"
	case feature.DateIntCompare:
		return fmt.Sprintf("SELECT acct FROM cust_txn WHERE txn_date > %d", 1140101+k)
	case feature.DateArith:
		return fmt.Sprintf("SELECT txn_date + %d FROM cust_txn", 1+k%30)
	case feature.VectorSubquery:
		return "SELECT txn_id FROM cust_txn WHERE (acct, region) IN (SELECT acct, region FROM accts)"
	// --- emulation class ---------------------------------------------------
	case feature.Macro:
		return fmt.Sprintf("EXEC m_report(%d)", 1+k%10)
	case feature.HelpSession:
		return "HELP SESSION"
	case feature.HelpTable:
		if i%2 == 0 {
			return "HELP TABLE cust_txn"
		}
		return "HELP TABLE accts"
	case feature.DmlOnView:
		return fmt.Sprintf("UPDATE v_upd SET amount = amount WHERE txn_id = %d", k)
	case feature.SetTable:
		return fmt.Sprintf("INSERT INTO dup_guard (a, b) VALUES (%d, %d)", k, k)
	case feature.MultiStatement:
		return fmt.Sprintf("SELECT %d; SELECT COUNT(*) FROM cust_txn;", k)
	case feature.RecursiveQuery:
		return `WITH RECURSIVE r (acct) AS (
		  SELECT acct FROM accts WHERE region = 1
		  UNION ALL
		  SELECT accts.acct FROM accts, r WHERE accts.acct = r.acct + 100
		) SELECT COUNT(*) FROM r`
	case feature.Merge:
		return fmt.Sprintf(`MERGE INTO accts USING (SELECT %d AS acct FROM accts WHERE acct = 1) s
		  ON accts.acct = s.acct WHEN MATCHED THEN UPDATE SET region = region`, k%4+1)
	}
	_ = rng
	return "SELECT 1"
}

// TotalOf sums the repetition counts (must equal Spec.Total).
func TotalOf(qs []Query) int {
	n := 0
	for _, q := range qs {
		n += q.Repeats
	}
	return n
}
