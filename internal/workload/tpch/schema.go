// Package tpch provides the TPC-H workload used by the paper's performance
// experiments (§7.2–7.3): the eight-table schema, a deterministic data
// generator with a scale-factor knob, and the 22 benchmark queries written
// in the source (Teradata) dialect so they exercise the full translation
// pipeline.
package tpch

import (
	"fmt"

	"hyperq/internal/engine"
)

// DDL is the schema in the canonical column order.
var DDL = []string{
	`CREATE TABLE region (
	   r_regionkey INTEGER NOT NULL,
	   r_name      CHAR(25) NOT NULL,
	   r_comment   VARCHAR(152))`,
	`CREATE TABLE nation (
	   n_nationkey INTEGER NOT NULL,
	   n_name      CHAR(25) NOT NULL,
	   n_regionkey INTEGER NOT NULL,
	   n_comment   VARCHAR(152))`,
	`CREATE TABLE supplier (
	   s_suppkey   INTEGER NOT NULL,
	   s_name      CHAR(25) NOT NULL,
	   s_address   VARCHAR(40) NOT NULL,
	   s_nationkey INTEGER NOT NULL,
	   s_phone     CHAR(15) NOT NULL,
	   s_acctbal   DECIMAL(15,2) NOT NULL,
	   s_comment   VARCHAR(101) NOT NULL)`,
	`CREATE TABLE customer (
	   c_custkey    INTEGER NOT NULL,
	   c_name       VARCHAR(25) NOT NULL,
	   c_address    VARCHAR(40) NOT NULL,
	   c_nationkey  INTEGER NOT NULL,
	   c_phone      CHAR(15) NOT NULL,
	   c_acctbal    DECIMAL(15,2) NOT NULL,
	   c_mktsegment CHAR(10) NOT NULL,
	   c_comment    VARCHAR(117) NOT NULL)`,
	`CREATE TABLE part (
	   p_partkey     INTEGER NOT NULL,
	   p_name        VARCHAR(55) NOT NULL,
	   p_mfgr        CHAR(25) NOT NULL,
	   p_brand       CHAR(10) NOT NULL,
	   p_type        VARCHAR(25) NOT NULL,
	   p_size        INTEGER NOT NULL,
	   p_container   CHAR(10) NOT NULL,
	   p_retailprice DECIMAL(15,2) NOT NULL,
	   p_comment     VARCHAR(23) NOT NULL)`,
	`CREATE TABLE partsupp (
	   ps_partkey    INTEGER NOT NULL,
	   ps_suppkey    INTEGER NOT NULL,
	   ps_availqty   INTEGER NOT NULL,
	   ps_supplycost DECIMAL(15,2) NOT NULL,
	   ps_comment    VARCHAR(199) NOT NULL)`,
	`CREATE TABLE orders (
	   o_orderkey      INTEGER NOT NULL,
	   o_custkey       INTEGER NOT NULL,
	   o_orderstatus   CHAR(1) NOT NULL,
	   o_totalprice    DECIMAL(15,2) NOT NULL,
	   o_orderdate     DATE NOT NULL,
	   o_orderpriority CHAR(15) NOT NULL,
	   o_clerk         CHAR(15) NOT NULL,
	   o_shippriority  INTEGER NOT NULL,
	   o_comment       VARCHAR(79) NOT NULL)`,
	`CREATE TABLE lineitem (
	   l_orderkey      INTEGER NOT NULL,
	   l_partkey       INTEGER NOT NULL,
	   l_suppkey       INTEGER NOT NULL,
	   l_linenumber    INTEGER NOT NULL,
	   l_quantity      DECIMAL(15,2) NOT NULL,
	   l_extendedprice DECIMAL(15,2) NOT NULL,
	   l_discount      DECIMAL(15,2) NOT NULL,
	   l_tax           DECIMAL(15,2) NOT NULL,
	   l_returnflag    CHAR(1) NOT NULL,
	   l_linestatus    CHAR(1) NOT NULL,
	   l_shipdate      DATE NOT NULL,
	   l_commitdate    DATE NOT NULL,
	   l_receiptdate   DATE NOT NULL,
	   l_shipinstruct  CHAR(25) NOT NULL,
	   l_shipmode      CHAR(10) NOT NULL,
	   l_comment       VARCHAR(44) NOT NULL)`,
}

// TableNames lists the schema tables in dependency order.
var TableNames = []string{
	"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
}

// CreateSchema runs the DDL on an engine session.
func CreateSchema(s *engine.Session) error {
	for _, ddl := range DDL {
		if _, err := s.ExecSQL(ddl); err != nil {
			return fmt.Errorf("tpch: schema: %w", err)
		}
	}
	return nil
}

// Load generates and bulk-loads data at the given scale factor: SF 1.0
// corresponds to the standard 6M-row lineitem; the in-memory substrate is
// typically driven at SF 0.01–0.1.
func Load(s *engine.Session, sf float64) error {
	g := newGen(sf)
	for _, tbl := range TableNames {
		rows := g.table(tbl)
		if err := s.InsertRows(tbl, rows); err != nil {
			return fmt.Errorf("tpch: load %s: %w", tbl, err)
		}
	}
	return nil
}

// SetupEngine creates the schema and loads data in one step.
func SetupEngine(s *engine.Session, sf float64) error {
	if err := CreateSchema(s); err != nil {
		return err
	}
	return Load(s, sf)
}
