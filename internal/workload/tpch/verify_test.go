package tpch

import (
	"strings"
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"
	"hyperq/internal/types"

	"hyperq/internal/hyperq"
)

// Cross-check the full pipeline against an independent Go computation over
// the raw generated rows: Q6 (filter + sum) and Q1's count column.
func TestQ6AgainstIndependentComputation(t *testing.T) {
	const sf = 0.002
	// Independent computation straight from the generator (tables must be
	// generated in load order so the deterministic PRNG state matches).
	lines := generatedLineitem(sf)
	lo := types.EncodeDate(1994, 1, 1)
	hi := types.EncodeDate(1995, 1, 1)
	var expected int64 // scaled at 4 decimals (price*discount scales 2+2)
	for _, l := range lines {
		ship := l[10].I
		disc := l[6]
		qty := l[4]
		if ship >= lo && ship < hi &&
			disc.I >= 5 && disc.I <= 7 && // 0.05..0.07 at scale 2
			qty.I < 2400 { // 24 at scale 2
			expected += l[5].DecimalScaled(2) * disc.DecimalScaled(2)
		}
	}

	// Through the full gateway pipeline.
	eng := engine.New(dialect.CloudA())
	if err := SetupEngine(eng.NewSession(), sf); err != nil {
		t.Fatal(err)
	}
	gw, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := gw.NewLocalSession("verify")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(Queries[6])
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].Rows[0][0]
	if got.Null && expected == 0 {
		return
	}
	if got.DecimalScaled(4) != expected {
		t.Fatalf("Q6 revenue = %s (scaled %d), independent computation %d",
			got, got.DecimalScaled(4), expected)
	}
}

func TestQ1CountsAgainstIndependentComputation(t *testing.T) {
	const sf = 0.002
	lines := generatedLineitem(sf)
	cutoff := types.AddDays(types.NewDate(1998, 12, 1), -90)
	expected := map[string]int64{}
	for _, l := range lines {
		if l[10].I <= cutoff.I {
			key := strings.TrimSpace(l[8].S) + "|" + strings.TrimSpace(l[9].S)
			expected[key]++
		}
	}

	eng := engine.New(dialect.CloudB())
	if err := SetupEngine(eng.NewSession(), sf); err != nil {
		t.Fatal(err)
	}
	gw, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudB(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := gw.NewLocalSession("verify")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(Queries[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rows) != len(expected) {
		t.Fatalf("Q1 groups = %d, independent %d", len(res[0].Rows), len(expected))
	}
	for _, row := range res[0].Rows {
		key := strings.TrimSpace(row[0].S) + "|" + strings.TrimSpace(row[1].S)
		if row[9].I != expected[key] {
			t.Fatalf("group %s count = %d, independent %d", key, row[9].I, expected[key])
		}
	}
}

// Cross-target consistency: the same Teradata request must return identical
// data through the gateway regardless of which cloud target executes it —
// the correctness requirement §3.1 calls "basic, non-negotiable".
func TestCrossTargetConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-target sweep in short mode")
	}
	queries := []string{
		Queries[1], Queries[3], Queries[5], Queries[6], Queries[10],
		Queries[12], Queries[14], Queries[19], Queries[22],
		VendorVariants[0], VendorVariants[3], VendorVariants[4],
	}
	var reference []string
	for ti, target := range dialect.CloudTargets() {
		eng := engine.New(target)
		if err := SetupEngine(eng.NewSession(), 0.001); err != nil {
			t.Fatal(err)
		}
		gw, err := hyperq.New(hyperq.Config{
			Target:  target,
			Driver:  &odbc.LocalDriver{Engine: eng},
			Catalog: eng.Catalog().Clone(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := gw.NewLocalSession("consistency")
		if err != nil {
			t.Fatal(err)
		}
		var rendered []string
		for qi, q := range queries {
			res, err := s.Run(q)
			if err != nil {
				t.Fatalf("target %s query %d: %v", target.Name, qi, err)
			}
			var sb strings.Builder
			for _, fr := range res {
				for _, row := range fr.Rows {
					for _, d := range row {
						sb.WriteString(d.String())
						sb.WriteByte('|')
					}
					sb.WriteByte('\n')
				}
			}
			rendered = append(rendered, sb.String())
		}
		s.Close()
		if ti == 0 {
			reference = rendered
			continue
		}
		for qi := range queries {
			if rendered[qi] != reference[qi] {
				t.Errorf("target %s disagrees with %s on query %d:\n%s\nvs\n%s",
					target.Name, dialect.CloudTargets()[0].Name, qi,
					clip(rendered[qi]), clip(reference[qi]))
			}
		}
	}
}

// generatedLineitem replays the generator in load order and returns the
// lineitem rows the loader would have inserted.
func generatedLineitem(sf float64) [][]types.Datum {
	g := newGen(sf)
	var lines [][]types.Datum
	for _, tbl := range TableNames {
		rows := g.table(tbl)
		if tbl == "lineitem" {
			lines = rows
		}
	}
	return lines
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
