package tpch

import (
	"fmt"
	"math/rand"

	"hyperq/internal/types"
)

// gen is the deterministic data generator. Row counts follow the TPC-H
// ratios; value distributions are simplified but keep the correlations the
// queries depend on (ship/commit/receipt date ordering, returnflag vs
// shipdate, price ~ quantity).
type gen struct {
	sf  float64
	rng *rand.Rand

	suppliers int
	customers int
	parts     int
	orders    int

	// ordersCache keeps the generated orders so lineitem rows derive from
	// the same order keys and dates that were loaded.
	ordersCache [][]types.Datum
}

const genSeed = 19920401

func newGen(sf float64) *gen {
	g := &gen{sf: sf, rng: rand.New(rand.NewSource(genSeed))}
	g.suppliers = maxInt(10, int(10000*sf))
	g.customers = maxInt(30, int(150000*sf))
	g.parts = maxInt(40, int(200000*sf))
	g.orders = maxInt(150, int(1500000*sf))
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
var typeAdjs = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeMats = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeMetals = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var nameParts = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
	"blue", "blush", "brown", "burlywood", "chartreuse", "chiffon", "chocolate", "coral",
	"cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
	"honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
}

func (g *gen) str(words []string) string { return words[g.rng.Intn(len(words))] }

func (g *gen) decimal(lo, hi float64) types.Datum {
	v := lo + g.rng.Float64()*(hi-lo)
	return types.NewDecimal(int64(v*100), 2)
}

// dateIn returns a date between 1992-01-01 and 1998-08-02 shifted by delta
// days.
func (g *gen) dateIn(delta int) types.Datum {
	base := types.DateToEpochDays(types.EncodeDate(1992, 1, 1))
	span := int64(types.DateToEpochDays(types.EncodeDate(1998, 8, 2)) - base)
	d := base + g.rng.Int63n(span) + int64(delta)
	return types.NewDateEnc(types.EpochDaysToDate(d))
}

func comment(g *gen, n int) types.Datum {
	out := ""
	for len(out) < n {
		if out != "" {
			out += " "
		}
		out += g.str(nameParts)
	}
	if len(out) > n {
		out = out[:n]
	}
	return types.NewString(out)
}

// table generates the full contents of one table.
func (g *gen) table(name string) [][]types.Datum {
	switch name {
	case "region":
		return g.regionRows()
	case "nation":
		return g.nationRows()
	case "supplier":
		return g.supplierRows()
	case "customer":
		return g.customerRows()
	case "part":
		return g.partRows()
	case "partsupp":
		return g.partsuppRows()
	case "orders":
		return g.cachedOrders()
	case "lineitem":
		return g.lineitemRows()
	}
	panic("tpch: unknown table " + name)
}

func (g *gen) regionRows() [][]types.Datum {
	out := make([][]types.Datum, len(regions))
	for i, r := range regions {
		out[i] = []types.Datum{types.NewInt(int64(i)), types.NewChar(r), comment(g, 30)}
	}
	return out
}

func (g *gen) nationRows() [][]types.Datum {
	out := make([][]types.Datum, len(nations))
	for i, n := range nations {
		out[i] = []types.Datum{
			types.NewInt(int64(i)), types.NewChar(n.name), types.NewInt(int64(n.region)), comment(g, 40),
		}
	}
	return out
}

func (g *gen) supplierRows() [][]types.Datum {
	out := make([][]types.Datum, g.suppliers)
	for i := 0; i < g.suppliers; i++ {
		k := int64(i + 1)
		bal := g.decimal(-999.99, 9999.99)
		cmt := comment(g, 40)
		// ~5% of suppliers carry the Q16/Q21 "Customer Complaints" marker.
		if g.rng.Intn(20) == 0 {
			cmt = types.NewString("Customer Complaints " + cmt.S)
		}
		out[i] = []types.Datum{
			types.NewInt(k),
			types.NewChar(fmt.Sprintf("Supplier#%09d", k)),
			types.NewString(fmt.Sprintf("addr %d %s", k, g.str(nameParts))),
			types.NewInt(int64(g.rng.Intn(len(nations)))),
			types.NewChar(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rng.Intn(25), g.rng.Intn(1000), g.rng.Intn(1000), g.rng.Intn(10000))),
			bal,
			cmt,
		}
	}
	return out
}

func (g *gen) customerRows() [][]types.Datum {
	out := make([][]types.Datum, g.customers)
	for i := 0; i < g.customers; i++ {
		k := int64(i + 1)
		nation := g.rng.Intn(len(nations))
		out[i] = []types.Datum{
			types.NewInt(k),
			types.NewString(fmt.Sprintf("Customer#%09d", k)),
			types.NewString(fmt.Sprintf("addr %d %s", k, g.str(nameParts))),
			types.NewInt(int64(nation)),
			types.NewChar(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nation, g.rng.Intn(1000), g.rng.Intn(1000), g.rng.Intn(10000))),
			g.decimal(-999.99, 9999.99),
			types.NewChar(g.str(segments)),
			comment(g, 60),
		}
	}
	return out
}

func (g *gen) partRows() [][]types.Datum {
	out := make([][]types.Datum, g.parts)
	for i := 0; i < g.parts; i++ {
		k := int64(i + 1)
		ptype := g.str(typeAdjs) + " " + g.str(typeMats) + " " + g.str(typeMetals)
		out[i] = []types.Datum{
			types.NewInt(k),
			types.NewString(g.str(nameParts) + " " + g.str(nameParts) + " " + g.str(nameParts)),
			types.NewChar(fmt.Sprintf("Manufacturer#%d", 1+g.rng.Intn(5))),
			types.NewChar(fmt.Sprintf("Brand#%d%d", 1+g.rng.Intn(5), 1+g.rng.Intn(5))),
			types.NewString(ptype),
			types.NewInt(int64(1 + g.rng.Intn(50))),
			types.NewChar(g.str(containers)),
			g.decimal(900, 2000),
			comment(g, 14),
		}
	}
	return out
}

func (g *gen) partsuppRows() [][]types.Datum {
	// 4 suppliers per part, as in the standard.
	out := make([][]types.Datum, 0, g.parts*4)
	for p := 1; p <= g.parts; p++ {
		for j := 0; j < 4; j++ {
			s := (p+j*(g.suppliers/4+1))%g.suppliers + 1
			out = append(out, []types.Datum{
				types.NewInt(int64(p)),
				types.NewInt(int64(s)),
				types.NewInt(int64(1 + g.rng.Intn(9999))),
				g.decimal(1, 1000),
				comment(g, 50),
			})
		}
	}
	return out
}

func (g *gen) orderRows() [][]types.Datum {
	out := make([][]types.Datum, g.orders)
	for i := 0; i < g.orders; i++ {
		k := int64(i + 1)
		date := g.dateIn(0)
		status := "O"
		if cut, _ := types.Compare(date, types.NewDate(1995, 6, 17)); cut < 0 {
			status = "F"
		}
		out[i] = []types.Datum{
			types.NewInt(k),
			types.NewInt(int64(1 + g.rng.Intn(g.customers))),
			types.NewChar(status),
			g.decimal(1000, 400000),
			date,
			types.NewChar(g.str(priorities)),
			types.NewChar(fmt.Sprintf("Clerk#%09d", 1+g.rng.Intn(1000))),
			types.NewInt(0),
			comment(g, 40),
		}
	}
	return out
}

func (g *gen) cachedOrders() [][]types.Datum {
	if g.ordersCache == nil {
		g.ordersCache = g.orderRows()
	}
	return g.ordersCache
}

func (g *gen) lineitemRows() [][]types.Datum {
	// Derive line items from the same generated orders that were loaded so
	// order keys and dates stay consistent across the two tables.
	orders := g.cachedOrders()
	out := make([][]types.Datum, 0, g.orders*4)
	for _, o := range orders {
		okey := o[0].I
		odate := o[4]
		lines := 1 + g.rng.Intn(7)
		for ln := 1; ln <= lines; ln++ {
			qty := 1 + g.rng.Intn(50)
			price := float64(qty) * (900 + g.rng.Float64()*1100)
			ship := types.AddDays(odate, int64(1+g.rng.Intn(121)))
			commit := types.AddDays(odate, int64(30+g.rng.Intn(60)))
			receipt := types.AddDays(ship, int64(1+g.rng.Intn(30)))
			returnflag := "N"
			if c, _ := types.Compare(receipt, types.NewDate(1995, 6, 17)); c <= 0 {
				if g.rng.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if c, _ := types.Compare(ship, types.NewDate(1995, 6, 17)); c <= 0 {
				linestatus = "F"
			}
			out = append(out, []types.Datum{
				types.NewInt(okey),
				types.NewInt(int64(1 + g.rng.Intn(g.parts))),
				types.NewInt(int64(1 + g.rng.Intn(g.suppliers))),
				types.NewInt(int64(ln)),
				types.NewDecimal(int64(qty*100), 2),
				types.NewDecimal(int64(price*100), 2),
				types.NewDecimal(int64(g.rng.Intn(11)), 2), // 0.00 - 0.10
				types.NewDecimal(int64(g.rng.Intn(9)), 2),  // 0.00 - 0.08
				types.NewChar(returnflag),
				types.NewChar(linestatus),
				ship,
				commit,
				receipt,
				types.NewChar(g.str(shipInstructs)),
				types.NewChar(g.str(shipModes)),
				comment(g, 20),
			})
		}
	}
	return out
}
