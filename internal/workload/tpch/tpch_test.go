package tpch

import (
	"testing"

	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/odbc"

	"hyperq/internal/hyperq"
)

func loadedEngine(t *testing.T, sf float64) *engine.Engine {
	t.Helper()
	eng := engine.New(dialect.CloudA())
	s := eng.NewSession()
	if err := SetupEngine(s, sf); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := newGen(0.001)
	g2 := newGen(0.001)
	r1 := g1.table("supplier")
	r2 := g2.table("supplier")
	if len(r1) != len(r2) {
		t.Fatalf("sizes differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j].String() != r2[i][j].String() {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestGeneratorScaling(t *testing.T) {
	small := newGen(0.001)
	big := newGen(0.01)
	if big.orders <= small.orders {
		t.Error("orders do not scale")
	}
	if len(small.table("region")) != 5 || len(small.table("nation")) != 25 {
		t.Error("fixed tables wrong size")
	}
}

func TestLineitemConsistentWithOrders(t *testing.T) {
	g := newGen(0.001)
	orders := g.table("orders")
	lines := g.table("lineitem")
	keys := map[int64]bool{}
	for _, o := range orders {
		keys[o[0].I] = true
	}
	for _, l := range lines {
		if !keys[l[0].I] {
			t.Fatalf("lineitem references missing order %d", l[0].I)
		}
		// shipdate >= orderdate is implied by construction; spot check
		// receipt >= ship.
		if l[12].I < l[10].I {
			t.Fatalf("receipt before ship: %v vs %v", l[12], l[10])
		}
	}
}

func TestSetupEngineLoads(t *testing.T) {
	eng := loadedEngine(t, 0.001)
	s := eng.NewSession()
	for _, tbl := range TableNames {
		n, err := s.RowCount(tbl)
		if err != nil || n == 0 {
			t.Fatalf("table %s: %d rows, %v", tbl, n, err)
		}
	}
}

// All 22 queries and all vendor variants must run through the full gateway
// pipeline on every modeled cloud target.
func TestAll22QueriesThroughGateway(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H sweep in short mode")
	}
	for _, target := range dialect.CloudTargets() {
		eng := engine.New(target)
		if err := SetupEngine(eng.NewSession(), 0.002); err != nil {
			t.Fatal(err)
		}
		g, err := hyperq.New(hyperq.Config{
			Target:  target,
			Driver:  &odbc.LocalDriver{Engine: eng},
			Catalog: eng.Catalog().Clone(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := g.NewLocalSession("tpch")
		if err != nil {
			t.Fatal(err)
		}
		for _, qn := range QueryNumbers() {
			if _, err := s.Run(Queries[qn]); err != nil {
				t.Errorf("target %s Q%d: %v", target.Name, qn, err)
			}
		}
		for i, v := range VendorVariants {
			if _, err := s.Run(v); err != nil {
				t.Errorf("target %s variant %d: %v", target.Name, i+1, err)
			}
		}
		s.Close()
	}
}

// Q1 must produce the classic 4-group shape with plausible aggregates.
func TestQ1Shape(t *testing.T) {
	eng := loadedEngine(t, 0.002)
	g, err := hyperq.New(hyperq.Config{
		Target:  dialect.CloudA(),
		Driver:  &odbc.LocalDriver{Engine: eng},
		Catalog: eng.Catalog().Clone(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.NewLocalSession("tpch")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(Queries[1])
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	if len(rows) < 3 || len(rows) > 4 {
		t.Fatalf("Q1 groups = %d", len(rows))
	}
	for _, row := range rows {
		if row[9].I <= 0 { // count_order
			t.Errorf("empty group in Q1: %v", row)
		}
	}
}
