package hyperqbench

import (
	"fmt"
	"testing"

	"hyperq/internal/binder"
	"hyperq/internal/dialect"
	"hyperq/internal/engine"
	"hyperq/internal/feature"
	"hyperq/internal/parser"
	"hyperq/internal/serializer"
	"hyperq/internal/transform"
	"hyperq/internal/workload/customer"
)

// translatePath runs parse→bind→transform→serialize for every statement in
// sql. With a scratch it uses the optimized build (arena parse, pooled
// serializer); with nil it uses the fresh-allocation reference build the
// optimized output must match byte for byte.
func translatePath(be *engine.Session, target *dialect.Profile, sql string, sc *parser.Scratch) ([]string, error) {
	rec := &feature.Recorder{}
	sc.Reset()
	stmts, err := parser.ParseWith(sql, parser.Teradata, rec, sc)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, st := range stmts {
		bd := binder.New(be, parser.Teradata, rec)
		bound, err := bd.Bind(st)
		if err != nil {
			return nil, err
		}
		c := transform.NewContext(nil, rec, bd.MaxColumnID())
		mid, err := transform.BindingStage().Statement(bound, c)
		if err != nil {
			return nil, err
		}
		ser := serializer.New(target, rec)
		if sc == nil {
			ser.NoPool()
		}
		s, err := ser.Serialize(mid)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// TestDifferentialTranslateWorkloads replays a slice of both customer
// workloads through the translate pipeline twice — reference build vs
// arena/pooled build — for every modeled cloud target, and requires the two
// to agree exactly: byte-identical SQL-B on success, identical error text on
// failure. This is the correctness harness for the allocation work: any slab
// aliasing, stale arena state, or pooled-buffer cross-talk shows up as a
// divergence here.
func TestDifferentialTranslateWorkloads(t *testing.T) {
	var queries []string
	for _, spec := range []customer.Spec{customer.Workload1(), customer.Workload2()} {
		spec.Distinct = 400
		spec.Total = spec.Distinct * 2
		for _, q := range customer.Generate(spec) {
			queries = append(queries, q.SQL)
		}
	}
	for _, target := range dialect.CloudTargets() {
		t.Run(target.Name, func(t *testing.T) {
			eng := engine.New(target)
			be := eng.NewSession()
			for _, ddl := range customer.SchemaDDL {
				if _, err := be.ExecSQL(ddl); err != nil {
					t.Fatal(err)
				}
			}
			// One scratch for the whole run, like one session: state carried
			// across queries is exactly what the test must prove harmless.
			sc := &parser.Scratch{}
			var translated, errored int
			for _, sql := range queries {
				ref, refErr := translatePath(be, target, sql, nil)
				got, gotErr := translatePath(be, target, sql, sc)
				if (refErr == nil) != (gotErr == nil) ||
					(refErr != nil && refErr.Error() != gotErr.Error()) {
					t.Fatalf("error divergence on %q:\nref: %v\ngot: %v", sql, refErr, gotErr)
				}
				if refErr != nil {
					errored++
					continue
				}
				if fmt.Sprint(ref) != fmt.Sprint(got) {
					t.Fatalf("output divergence on %q:\nref: %q\ngot: %q", sql, ref, got)
				}
				translated++
			}
			if translated == 0 {
				t.Fatal("no queries translated — workload generation drifted")
			}
			t.Logf("%s: %d byte-identical translations, %d identical errors", target.Name, translated, errored)
		})
	}
}
